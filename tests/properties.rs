//! Property-style integration tests: protocol invariants under randomised
//! configurations. Configurations are drawn from a seeded RNG (replacing
//! the earlier proptest harness, which is unavailable offline) — every run
//! explores the same deterministic sample of the configuration space.

use evildoers::adversary::StrategySpec;
use evildoers::core::{Params, RoundSchedule};
use evildoers::rng::SimRng;
use evildoers::sim::Scenario;
use rand::{Rng, SeedableRng};

/// Draws a random strategy, mirroring the old proptest generator.
fn random_spec(rng: &mut SimRng) -> StrategySpec {
    match rng.gen_range(0u32..8) {
        0 => StrategySpec::Silent,
        1 => StrategySpec::Continuous,
        2 => StrategySpec::Random(0.05 + 0.9 * rng.gen::<f64>()),
        3 => StrategySpec::Bursty {
            burst: rng.gen_range(1u64..64),
            gap: rng.gen_range(1u64..64),
        },
        4 => StrategySpec::BlockDissemination(0.55 + 0.45 * rng.gen::<f64>()),
        5 => StrategySpec::BlockRequest(0.55 + 0.45 * rng.gen::<f64>()),
        6 => StrategySpec::Extract(rng.gen_range(1u32..8)),
        _ => StrategySpec::Spoof(0.1 + 0.9 * rng.gen::<f64>()),
    }
}

/// No configuration may violate the conservation/accounting laws.
#[test]
fn accounting_invariants_hold_for_random_configs() {
    let mut gen = SimRng::seed_from_u64(0xACC7);
    for case in 0..12u32 {
        let spec = random_spec(&mut gen);
        let seed = gen.gen_range(0u64..1_000_000);
        let budget = gen.gen_range(0u64..2_000);
        let n = 1u64 << gen.gen_range(4u32..6); // n ∈ {16, 32}
        let params = Params::builder(n).max_round_margin(2).build().unwrap();
        let o = Scenario::broadcast(params.clone())
            .adversary(spec)
            .carol_budget(budget)
            .seed(seed)
            .build()
            .unwrap()
            .run();
        let label = format!(
            "case {case}: {} seed={seed} budget={budget} n={n}",
            spec.name()
        );

        // Partition law.
        assert_eq!(
            o.informed_nodes + o.uninformed_terminated + o.unterminated_nodes,
            o.n,
            "{label}"
        );
        // Budget laws.
        assert!(o.carol_spend() <= budget, "{label}");
        assert!(o.alice_cost.total() <= params.alice_budget(), "{label}");
        let max = o.max_node_cost.unwrap_or(0);
        assert!(max <= params.node_budget(), "{label}");
        // Cost composition.
        let costs = o.broadcast.node_costs.as_ref().unwrap();
        let sum: u64 = costs.iter().map(|c| c.total()).sum();
        assert_eq!(sum, o.broadcast.node_total_cost.total(), "{label}");
        // The schedule cap bounds every run.
        let schedule = RoundSchedule::new(&params);
        assert!(o.slots <= schedule.total_slots() + 4, "{label}");
    }
}

/// Sacrifice never exceeds a third of the population for budgeted
/// adversaries at these scales (the measured ε is far below the
/// analytical renormalisation).
#[test]
fn sacrificed_fraction_stays_small() {
    let mut gen = SimRng::seed_from_u64(0x5AC);
    for case in 0..12u32 {
        let seed = gen.gen_range(0u64..1_000_000);
        let budget = gen.gen_range(0u64..1_500);
        let params = Params::builder(32).max_round_margin(3).build().unwrap();
        let o = Scenario::broadcast(params)
            .adversary(StrategySpec::Continuous)
            .carol_budget(budget)
            .seed(seed)
            .build()
            .unwrap()
            .run();
        assert!(
            (o.uninformed_terminated as f64) <= 0.34 * o.n as f64,
            "case {case}: sacrificed {} of {} (seed={seed}, budget={budget})",
            o.uninformed_terminated,
            o.n
        );
    }
}
