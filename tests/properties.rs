//! Property-based integration tests: protocol invariants under randomised
//! configurations (proptest).

use evildoers::adversary::StrategySpec;
use evildoers::core::{run_broadcast, Params, RunConfig};
use evildoers::radio::Budget;
use proptest::prelude::*;

fn strategy_spec() -> impl Strategy<Value = StrategySpec> {
    prop_oneof![
        Just(StrategySpec::Silent),
        Just(StrategySpec::Continuous),
        (0.05f64..0.95).prop_map(StrategySpec::Random),
        (1u64..64, 1u64..64).prop_map(|(burst, gap)| StrategySpec::Bursty { burst, gap }),
        (0.55f64..1.0).prop_map(StrategySpec::BlockDissemination),
        (0.55f64..1.0).prop_map(StrategySpec::BlockRequest),
        (1u32..8).prop_map(StrategySpec::Extract),
        (0.1f64..1.0).prop_map(StrategySpec::Spoof),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No configuration may violate the conservation/accounting laws.
    #[test]
    fn accounting_invariants_hold_for_random_configs(
        spec in strategy_spec(),
        seed in 0u64..1_000_000,
        budget in 0u64..2_000,
        n_exp in 4u32..6, // n ∈ {16, 32}
    ) {
        let n = 1u64 << n_exp;
        let params = Params::builder(n).max_round_margin(2).build().unwrap();
        let mut carol = spec.slot_adversary(&params, seed);
        let cfg = RunConfig::seeded(seed).carol_budget(Budget::limited(budget));
        let o = run_broadcast(&params, carol.as_mut(), &cfg);

        // Partition law.
        prop_assert_eq!(
            o.informed_nodes + o.uninformed_terminated + o.unterminated_nodes,
            o.n
        );
        // Budget laws.
        prop_assert!(o.carol_spend() <= budget);
        prop_assert!(o.alice_cost.total() <= params.alice_budget());
        let max = o.max_node_cost.unwrap_or(0);
        prop_assert!(max <= params.node_budget());
        // Cost composition.
        let costs = o.node_costs.as_ref().unwrap();
        let sum: u64 = costs.iter().map(|c| c.total()).sum();
        prop_assert_eq!(sum, o.node_total_cost.total());
        // The schedule cap bounds every run.
        let schedule = evildoers::core::RoundSchedule::new(&params);
        prop_assert!(o.slots <= schedule.total_slots() + 4);
    }

    /// Sacrifice never exceeds a third of the population for budgeted
    /// adversaries at these scales (the measured ε is far below the
    /// analytical renormalisation).
    #[test]
    fn sacrificed_fraction_stays_small(
        seed in 0u64..1_000_000,
        budget in 0u64..1_500,
    ) {
        let params = Params::builder(32).max_round_margin(3).build().unwrap();
        let mut carol = StrategySpec::Continuous.slot_adversary(&params, seed);
        let cfg = RunConfig::seeded(seed).carol_budget(Budget::limited(budget));
        let o = run_broadcast(&params, carol.as_mut(), &cfg);
        prop_assert!(
            (o.uninformed_terminated as f64) <= 0.34 * o.n as f64,
            "sacrificed {} of {}",
            o.uninformed_terminated,
            o.n
        );
    }
}
