//! Property-style tests on the channel model — the §1.1 semantics that
//! everything else rests on. Inputs are drawn from a seeded RNG
//! (replacing the earlier proptest harness, which is unavailable offline).

use evildoers::radio::{
    resolve_for_listener, resolve_for_listener_on, ChannelId, ChannelLoad, IdSet, JamDirective,
    JamPlan, ParticipantId, Payload, Reception, Spectrum,
};
use evildoers::rng::SimRng;
use rand::{Rng, SeedableRng};

fn payloads(count: usize) -> Vec<Payload> {
    (0..count).map(|i| Payload::Garbage(i as u64)).collect()
}

fn id_set(ids: &[u32]) -> IdSet {
    ids.iter().copied().map(ParticipantId::new).collect()
}

fn random_ids(rng: &mut SimRng, bound: u32, max_len: usize) -> Vec<u32> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..bound)).collect()
}

/// Silence cannot be forged: a listener hears silence iff there were
/// zero transmissions AND it was not jammed. Conversely, jamming or
/// any transmission always sounds noisy.
#[test]
fn silence_iff_quiet_and_unjammed() {
    let mut gen = SimRng::seed_from_u64(0x51CE);
    for _ in 0..128 {
        let tx_count = gen.gen_range(0usize..5);
        let listener = gen.gen_range(0u32..16);
        let targets = random_ids(&mut gen, 16, 5);
        let tx = payloads(tx_count);
        let jam = match gen.gen_range(0u8..4) {
            0 => JamDirective::None,
            1 => JamDirective::All,
            2 => JamDirective::AllExcept(id_set(&targets)),
            _ => JamDirective::Only(id_set(&targets)),
        };
        let listener = ParticipantId::new(listener);
        let reception = resolve_for_listener(listener, &tx, &jam);
        let jammed = jam.jams(listener);
        let silent = !reception.is_noisy();
        assert_eq!(silent, tx_count == 0 && !jammed);
    }
}

/// Delivery happens exactly when there is a single transmission and
/// the listener is not jammed — and the delivered frame is that
/// transmission, unaltered.
#[test]
fn delivery_iff_singleton_and_clear() {
    let mut gen = SimRng::seed_from_u64(0xDE11);
    for _ in 0..128 {
        let tx_count = gen.gen_range(0usize..5);
        let listener = gen.gen_range(0u32..16);
        let spared = random_ids(&mut gen, 16, 5);
        let tx = payloads(tx_count);
        let jam = JamDirective::AllExcept(id_set(&spared));
        let listener = ParticipantId::new(listener);
        let reception = resolve_for_listener(listener, &tx, &jam);
        let delivered = matches!(reception, evildoers::radio::Reception::Frame(_));
        assert_eq!(delivered, tx_count == 1 && !jam.jams(listener));
        if let evildoers::radio::Reception::Frame(frame) = reception {
            assert_eq!(frame, tx[0].clone());
        }
    }
}

/// n-uniform consistency: `AllExcept(S)` and `Only(S)` partition the
/// listener space exactly by membership in `S`.
#[test]
fn targeting_partitions_by_membership() {
    let mut gen = SimRng::seed_from_u64(0x9AB7);
    for _ in 0..128 {
        let ids = random_ids(&mut gen, 32, 9);
        let probe = gen.gen_range(0u32..32);
        let set = id_set(&ids);
        let except = JamDirective::AllExcept(set.clone());
        let only = JamDirective::Only(set.clone());
        let p = ParticipantId::new(probe);
        assert_eq!(except.jams(p), !set.contains(p));
        assert_eq!(only.jams(p), set.contains(p));
    }
}

fn random_directive(rng: &mut SimRng, bound: u32, max_targets: usize) -> JamDirective {
    let targets = random_ids(rng, bound, max_targets);
    match rng.gen_range(0u8..4) {
        0 => JamDirective::None,
        1 => JamDirective::All,
        2 => JamDirective::AllExcept(id_set(&targets)),
        _ => JamDirective::Only(id_set(&targets)),
    }
}

/// The §1.1 single-channel resolution semantics as they existed before
/// the multi-channel refactor, reimplemented verbatim as a reference
/// model: jammed → noise; 0 transmissions → silence; exactly 1 →
/// delivery; ≥ 2 → collision noise.
fn pre_refactor_resolve(
    listener: ParticipantId,
    transmissions: &[Payload],
    jam: &JamDirective,
) -> Reception {
    if jam.jams(listener) {
        return Reception::Noise;
    }
    match transmissions {
        [] => Reception::Silence,
        [only] => Reception::Frame(only.clone()),
        _ => Reception::Noise,
    }
}

/// C = 1 reproduces the exact pre-refactor `resolve_for_listener`
/// semantics: on random slots, the per-channel resolution path over a
/// single-channel spectrum agrees with the reference model (and with the
/// surviving single-channel function) on every input.
#[test]
fn single_channel_resolution_reproduces_pre_refactor_semantics() {
    let mut gen = SimRng::seed_from_u64(0xC0DE);
    for _ in 0..256 {
        let tx = payloads(gen.gen_range(0usize..5));
        let listener = ParticipantId::new(gen.gen_range(0u32..16));
        let directive = random_directive(&mut gen, 16, 5);

        let mut load = ChannelLoad::new(Spectrum::single());
        for payload in &tx {
            load.push(ChannelId::ZERO, payload.clone());
        }
        let plan: JamPlan = directive.clone().into();

        let reference = pre_refactor_resolve(listener, &tx, &directive);
        assert_eq!(
            resolve_for_listener_on(listener, ChannelId::ZERO, &load, &plan),
            reference,
            "multi-channel path diverged on C=1"
        );
        assert_eq!(
            resolve_for_listener(listener, &tx, &directive),
            reference,
            "single-channel function diverged from its own pre-refactor semantics"
        );
    }
}

/// Cross-channel isolation: what a listener on channel `c` hears is a
/// function of channel `c`'s traffic and directive only — rerolling all
/// traffic and jamming on every other channel never changes its
/// reception.
#[test]
fn listener_is_unaffected_by_other_channels() {
    let mut gen = SimRng::seed_from_u64(0x15_0C8A);
    for _ in 0..256 {
        let channels = gen.gen_range(2u16..8);
        let spectrum = Spectrum::new(channels);
        let listener = ParticipantId::new(gen.gen_range(0u32..16));
        let c = ChannelId::new(gen.gen_range(0..channels));

        // The listener's own channel: fixed traffic and directive.
        let own_tx = payloads(gen.gen_range(0usize..4));
        let own_directive = random_directive(&mut gen, 16, 5);

        let build = |gen: &mut SimRng| {
            let mut load = ChannelLoad::new(spectrum);
            let mut plan = JamPlan::none();
            for payload in &own_tx {
                load.push(c, payload.clone());
            }
            plan.set(c, own_directive.clone());
            // Every *other* channel gets fresh random traffic and jamming.
            for other in spectrum.channels().filter(|&ch| ch != c) {
                for i in 0..gen.gen_range(0usize..4) {
                    load.push(other, Payload::Garbage(0xFFFF + i as u64));
                }
                plan.set(other, random_directive(gen, 16, 5));
            }
            (load, plan)
        };

        let (load_a, plan_a) = build(&mut gen);
        let (load_b, plan_b) = build(&mut gen);
        let heard_a = resolve_for_listener_on(listener, c, &load_a, &plan_a);
        let heard_b = resolve_for_listener_on(listener, c, &load_b, &plan_b);
        assert_eq!(
            heard_a, heard_b,
            "reception on {c} changed when only other channels changed"
        );
        // And it equals the single-channel resolution of channel c alone.
        assert_eq!(
            heard_a,
            pre_refactor_resolve(listener, &own_tx, &own_directive)
        );
    }
}

/// IdSet behaves as a mathematical set: construction order and
/// duplicates are irrelevant; membership matches the source list.
#[test]
fn idset_is_a_set() {
    let mut gen = SimRng::seed_from_u64(0x1D5E);
    for _ in 0..128 {
        let mut ids = random_ids(&mut gen, 64, 19);
        let forward = id_set(&ids);
        ids.reverse();
        ids.extend(ids.clone()); // duplicates
        let scrambled = id_set(&ids);
        assert_eq!(forward.clone(), scrambled);
        for probe in 0u32..64 {
            assert_eq!(
                forward.contains(ParticipantId::new(probe)),
                ids.contains(&probe)
            );
        }
        assert!(forward
            .iter()
            .zip(forward.iter().skip(1))
            .all(|(a, b)| a < b));
    }
}
