//! Property-based tests on the channel model — the §1.1 semantics that
//! everything else rests on.

use evildoers::radio::{resolve_for_listener, IdSet, JamDirective, ParticipantId, Payload};
use proptest::prelude::*;

fn payloads(count: usize) -> Vec<Payload> {
    (0..count).map(|i| Payload::Garbage(i as u64)).collect()
}

fn id_set(ids: &[u32]) -> IdSet {
    ids.iter().copied().map(ParticipantId::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Silence cannot be forged: a listener hears silence iff there were
    /// zero transmissions AND it was not jammed. Conversely, jamming or
    /// any transmission always sounds noisy.
    #[test]
    fn silence_iff_quiet_and_unjammed(
        tx_count in 0usize..5,
        listener in 0u32..16,
        targets in proptest::collection::vec(0u32..16, 0..6),
        directive_kind in 0u8..4,
    ) {
        let tx = payloads(tx_count);
        let jam = match directive_kind {
            0 => JamDirective::None,
            1 => JamDirective::All,
            2 => JamDirective::AllExcept(id_set(&targets)),
            _ => JamDirective::Only(id_set(&targets)),
        };
        let listener = ParticipantId::new(listener);
        let reception = resolve_for_listener(listener, &tx, &jam);
        let jammed = jam.jams(listener);
        let silent = !reception.is_noisy();
        prop_assert_eq!(silent, tx_count == 0 && !jammed);
    }

    /// Delivery happens exactly when there is a single transmission and
    /// the listener is not jammed — and the delivered frame is that
    /// transmission, unaltered.
    #[test]
    fn delivery_iff_singleton_and_clear(
        tx_count in 0usize..5,
        listener in 0u32..16,
        spared in proptest::collection::vec(0u32..16, 0..6),
    ) {
        let tx = payloads(tx_count);
        let jam = JamDirective::AllExcept(id_set(&spared));
        let listener = ParticipantId::new(listener);
        let reception = resolve_for_listener(listener, &tx, &jam);
        let delivered = matches!(reception, evildoers::radio::Reception::Frame(_));
        prop_assert_eq!(delivered, tx_count == 1 && !jam.jams(listener));
        if let evildoers::radio::Reception::Frame(frame) = reception {
            prop_assert_eq!(frame, tx[0].clone());
        }
    }

    /// n-uniform consistency: `AllExcept(S)` and `Only(S)` partition the
    /// listener space exactly by membership in `S`.
    #[test]
    fn targeting_partitions_by_membership(
        ids in proptest::collection::vec(0u32..32, 0..10),
        probe in 0u32..32,
    ) {
        let set = id_set(&ids);
        let except = JamDirective::AllExcept(set.clone());
        let only = JamDirective::Only(set.clone());
        let p = ParticipantId::new(probe);
        prop_assert_eq!(except.jams(p), !set.contains(p));
        prop_assert_eq!(only.jams(p), set.contains(p));
    }

    /// IdSet behaves as a mathematical set: construction order and
    /// duplicates are irrelevant; membership matches the source list.
    #[test]
    fn idset_is_a_set(mut ids in proptest::collection::vec(0u32..64, 0..20)) {
        let forward = id_set(&ids);
        ids.reverse();
        ids.extend(ids.clone()); // duplicates
        let scrambled = id_set(&ids);
        prop_assert_eq!(forward.clone(), scrambled);
        for probe in 0u32..64 {
            prop_assert_eq!(
                forward.contains(ParticipantId::new(probe)),
                ids.contains(&probe)
            );
        }
        prop_assert!(forward.iter().zip(forward.iter().skip(1)).all(|(a, b)| a < b));
    }
}
