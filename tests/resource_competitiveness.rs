//! Cross-crate integration: the resource-competitive economics, end to
//! end — defenders' spend grows sublinearly in Carol's, and the naive
//! baseline demonstrates what failure looks like.

use evildoers::adversary::StrategySpec;
use evildoers::analysis::experiments::provisioned_params;
use evildoers::analysis::fit_loglog;
use evildoers::core::Params;
use evildoers::sim::{Engine, NaiveSpec, Scenario};

#[test]
fn node_cost_grows_sublinearly_in_carol_spend() {
    // Large-n fast-sim sweep in the unclamped regime (n = 2^18 puts the
    // termination floor past the probability-clamp rounds).
    let n = 1u64 << 18;
    let quiet = {
        let params = Params::builder(n).build().unwrap();
        Scenario::broadcast(params)
            .engine(Engine::Fast)
            .seed(9)
            .build()
            .unwrap()
            .run()
            .mean_node_cost()
    };
    let mut pts = Vec::new();
    for exp in [20u32, 22, 24] {
        let budget = 1u64 << exp;
        let params = provisioned_params(n, 2, budget).unwrap();
        let o = Scenario::broadcast(params)
            .engine(Engine::Fast)
            .adversary(StrategySpec::Continuous)
            .carol_budget(budget)
            .seed(9)
            .build()
            .unwrap()
            .run();
        assert!(o.informed_fraction() > 0.9);
        pts.push((
            o.carol_spend() as f64,
            (o.mean_node_cost() - quiet).max(0.1),
        ));
    }
    let fit = fit_loglog(&pts);
    assert!(
        fit.exponent < 0.65,
        "node marginal cost exponent {} should be far below linear",
        fit.exponent
    );
    // And strictly: at the largest T the defender pays a vanishing share
    // (the measured ratio here is ≈ 1/50 and still shrinking in T; the
    // clamped-probability constants keep the absolute level high at
    // practical n, as DESIGN.md discusses).
    let (t, cost) = pts[pts.len() - 1];
    assert!(
        cost < t / 20.0,
        "at T={t} a node pays {cost}, which should be ≪ T"
    );
}

#[test]
fn naive_baseline_pays_linearly_in_carol_spend() {
    let mut pts = Vec::new();
    for t in [500u64, 2_000, 8_000] {
        let o = Scenario::naive(NaiveSpec {
            n: 8,
            horizon: t + 100,
        })
        .adversary(StrategySpec::Continuous)
        .carol_budget(t)
        .seed(3)
        .build()
        .unwrap()
        .run();
        assert_eq!(o.informed_nodes, 8);
        pts.push((t as f64, o.mean_node_cost()));
    }
    let fit = fit_loglog(&pts);
    assert!(
        fit.exponent > 0.9,
        "naive receivers pay Θ(T): exponent {}",
        fit.exponent
    );
}

#[test]
fn alice_and_nodes_stay_load_balanced_under_attack() {
    let n = 1u64 << 14;
    for exp in [18u32, 22] {
        let budget = 1u64 << exp;
        let params = provisioned_params(n, 2, budget).unwrap();
        let o = Scenario::broadcast(params)
            .engine(Engine::Fast)
            .adversary(StrategySpec::Continuous)
            .carol_budget(budget)
            .seed(4)
            .build()
            .unwrap()
            .run();
        let ratio = o.alice_cost.total() as f64 / o.mean_node_cost().max(1.0);
        let polylog_bound = 40.0 * (n as f64).ln();
        assert!(
            ratio < polylog_bound && ratio > 1.0 / polylog_bound,
            "alice/node ratio {ratio} escaped the polylog band at T=2^{exp}"
        );
    }
}

#[test]
fn carol_budget_is_spent_exactly_never_exceeded() {
    let n = 1u64 << 12;
    let budget = 1u64 << 16;
    let params = provisioned_params(n, 2, budget).unwrap();
    let o = Scenario::broadcast(params)
        .engine(Engine::Fast)
        .adversary(StrategySpec::Continuous)
        .carol_budget(budget)
        .seed(8)
        .build()
        .unwrap()
        .run();
    assert!(o.carol_spend() <= budget);
    // A continuous jammer with a sub-schedule budget spends all of it.
    assert!(
        o.carol_spend() >= budget - 1,
        "spent {} of {budget}",
        o.carol_spend()
    );
}
