//! Cross-crate integration: exact replayability from a single master seed,
//! across protocols, engines, adversaries, protocol variants, and the
//! sweep service's sharded execution.
//!
//! Every exact-engine entry here exercises the **era-2** engine (SoA
//! rosters, counter-based per-node RNG, sleep-skipping wakeups) — the
//! default since the era bump. Counter-based streams are what make these
//! guarantees structural: a node's draws depend only on its leaf seed
//! and counter, never on which worker ran it or how trials were sharded.
//! The fluid tier is deterministic by construction (no RNG at all), so
//! its invariance is covered by the `rcb-sim` unit tests.

use evildoers::adversary::StrategySpec;
use evildoers::core::{Params, Variant};
use evildoers::sim::{
    Engine, EpidemicSpec, EpochHoppingSpec, HoppingSpec, KpsySpec, KsySpec, NaiveSpec, Scenario,
    ScenarioOutcome,
};

fn assert_identical(a: &ScenarioOutcome, b: &ScenarioOutcome, label: &str) {
    assert_eq!(a.seed, b.seed, "{label}");
    assert_eq!(a.slots, b.slots, "{label}");
    assert_eq!(a.informed_nodes, b.informed_nodes, "{label}");
    assert_eq!(a.uninformed_terminated, b.uninformed_terminated, "{label}");
    assert_eq!(a.alice_cost, b.alice_cost, "{label}");
    assert_eq!(
        a.broadcast.node_total_cost, b.broadcast.node_total_cost,
        "{label}"
    );
    assert_eq!(a.broadcast.carol_cost, b.broadcast.carol_cost, "{label}");
    assert_eq!(a.broadcast.node_costs, b.broadcast.node_costs, "{label}");
}

#[test]
fn exact_engine_replays_bit_for_bit() {
    let params = Params::builder(32).max_round_margin(3).build().unwrap();
    for spec in [
        StrategySpec::Continuous,
        StrategySpec::Random(0.4),
        StrategySpec::Spoof(0.8),
        StrategySpec::Extract(4),
        StrategySpec::LaggedReactive,
    ] {
        let scenario = Scenario::broadcast(params.clone())
            .adversary(spec)
            .carol_budget(1_000)
            .seed(42)
            .build()
            .unwrap();
        assert_identical(&scenario.run(), &scenario.run(), &spec.name());
    }
}

#[test]
fn fast_sim_replays_bit_for_bit() {
    let params = Params::builder(10_000).build().unwrap();
    let scenario = Scenario::broadcast(params)
        .engine(Engine::Fast)
        .adversary(StrategySpec::BlockDissemination(1.0))
        .carol_budget(100_000)
        .seed(7)
        .build()
        .unwrap();
    assert_identical(&scenario.run(), &scenario.run(), "fast/block-dissem");
}

#[test]
fn every_protocol_engine_combination_is_deterministic() {
    // Satellite guarantee of the Scenario API: same seed ⇒ identical
    // ScenarioOutcome, for every protocol × engine pairing.
    let scenarios: Vec<(&str, Scenario)> = vec![
        (
            "broadcast/exact",
            Scenario::broadcast(Params::builder(16).build().unwrap())
                .adversary(StrategySpec::Continuous)
                .carol_budget(300)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "broadcast/fast",
            Scenario::broadcast(Params::builder(4096).build().unwrap())
                .engine(Engine::Fast)
                .adversary(StrategySpec::Spoof(1.0))
                .carol_budget(10_000)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "naive/exact",
            Scenario::naive(NaiveSpec { n: 8, horizon: 400 })
                .adversary(StrategySpec::Random(0.5))
                .carol_budget(150)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "epidemic/exact",
            Scenario::epidemic(EpidemicSpec::new(8, 800))
                .adversary(StrategySpec::Bursty { burst: 16, gap: 16 })
                .carol_budget(150)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "ksy/exact",
            Scenario::ksy(KsySpec::default())
                .adversary(StrategySpec::Continuous)
                .carol_budget(5_000)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "hopping-c4/adaptive",
            Scenario::hopping(HoppingSpec::new(16, 2_000))
                .channels(4)
                .adversary(StrategySpec::Adaptive {
                    window: 8,
                    reactivity: 0.5,
                })
                .carol_budget(400)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "hopping-c4/channel-lagged",
            Scenario::hopping(HoppingSpec::new(16, 2_000))
                .channels(4)
                .adversary(StrategySpec::ChannelLagged)
                .carol_budget(400)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "epoch-hopping-c4/sweep",
            Scenario::epoch_hopping(EpochHoppingSpec::new(16, 2_000, 32))
                .channels(4)
                .adversary(StrategySpec::ChannelSweep { dwell: 32 })
                .carol_budget(400)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "epoch-hopping-c4/fast-mc",
            Scenario::epoch_hopping(EpochHoppingSpec::new(4_096, 2_000, 32))
                .engine(Engine::Fast)
                .channels(4)
                .adversary(StrategySpec::Adaptive {
                    window: 8,
                    reactivity: 0.5,
                })
                .carol_budget(400)
                .seed(11)
                .build()
                .unwrap(),
        ),
        (
            "kpsy/continuous",
            Scenario::kpsy(KpsySpec {
                n: 12,
                horizon: 2_000,
            })
            .adversary(StrategySpec::Continuous)
            .carol_budget(500)
            .seed(11)
            .build()
            .unwrap(),
        ),
    ];
    for (label, scenario) in &scenarios {
        assert_identical(&scenario.run(), &scenario.run(), label);
        // Batch execution replays the same per-trial stream.
        let batch_a = scenario.run_batch(3);
        let batch_b = scenario.run_batch(3);
        for (a, b) in batch_a.iter().zip(&batch_b) {
            assert_identical(a, b, label);
        }
    }
}

#[test]
fn shared_scratch_reuse_is_invisible_across_protocols() {
    use evildoers::sim::ScenarioScratch;
    // The typed-roster fast path reuses per-worker scratch (rosters,
    // budget vectors, engine buffers). One scratch hopping between
    // protocol families, adversaries, and channel counts must reproduce
    // fresh-scratch runs bit for bit — across C ∈ {1, 4} and every
    // exact-engine protocol family.
    let combos: Vec<(&str, Scenario)> = vec![
        (
            "broadcast/continuous",
            Scenario::broadcast(Params::builder(16).build().unwrap())
                .adversary(StrategySpec::Continuous)
                .carol_budget(300)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "broadcast/lagged-reactive",
            Scenario::broadcast(Params::builder(16).build().unwrap())
                .adversary(StrategySpec::LaggedReactive)
                .carol_budget(200)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "naive/random",
            Scenario::naive(NaiveSpec { n: 8, horizon: 300 })
                .adversary(StrategySpec::Random(0.5))
                .carol_budget(100)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "epidemic/bursty",
            Scenario::epidemic(EpidemicSpec::new(8, 600))
                .adversary(StrategySpec::Bursty { burst: 8, gap: 8 })
                .carol_budget(100)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "hopping-c1/split",
            Scenario::hopping(HoppingSpec::new(12, 1_500))
                .channels(1)
                .adversary(StrategySpec::SplitUniform)
                .carol_budget(300)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "hopping-c4/adaptive",
            Scenario::hopping(HoppingSpec::new(12, 1_500))
                .channels(4)
                .adversary(StrategySpec::Adaptive {
                    window: 8,
                    reactivity: 0.5,
                })
                .carol_budget(300)
                .seed(5)
                .build()
                .unwrap(),
        ),
        (
            "hopping-c4/sweep",
            Scenario::hopping(HoppingSpec::new(12, 1_500))
                .channels(4)
                .adversary(StrategySpec::ChannelSweep { dwell: 5 })
                .carol_budget(300)
                .seed(5)
                .build()
                .unwrap(),
        ),
    ];
    let mut scratch = ScenarioScratch::new();
    for pass in 0..2u64 {
        for (label, scenario) in &combos {
            let seed = 1_234 + pass;
            let reused = scenario.run_in(&mut scratch, seed);
            let fresh = scenario.run_seeded(seed);
            assert_identical(&fresh, &reused, label);
            assert_eq!(
                fresh.channel_stats, reused.channel_stats,
                "{label}: channel stats must survive scratch reuse"
            );
        }
    }
}

#[test]
fn worker_count_override_never_changes_outcomes() {
    // run_batch results are defined by derived per-trial seeds, not by
    // scheduling: any thread override (builder knob) must reproduce the
    // default-pool outcomes exactly.
    let build = |threads: Option<usize>| {
        let mut b = Scenario::hopping(HoppingSpec::new(16, 2_000))
            .channels(4)
            .adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            })
            .carol_budget(400)
            .seed(11);
        if let Some(workers) = threads {
            b = b.threads(workers);
        }
        b.build().unwrap()
    };
    let reference = build(None).run_batch(5);
    for threads in [1usize, 2, 5] {
        let overridden = build(Some(threads)).run_batch(5);
        assert_eq!(overridden.len(), reference.len());
        for (a, b) in overridden.iter().zip(&reference) {
            assert_identical(a, b, &format!("threads={threads}"));
        }
    }
}

#[test]
fn sweep_sharding_is_invisible_at_any_worker_count_and_shard_size() {
    use evildoers::sweep::{
        CellStats, Metric, ResultCache, ScenarioSpec, StopRule, SweepConfig, SweepService,
        SweepSpec, TrialMetrics,
    };
    // The sweep service's acceptance bar: per-cell aggregates must be
    // byte-identical to a sequential `run_batch` pass over the same
    // seeds, no matter how the trials were sharded across workers. A
    // zero half-width target on a noisy metric never triggers early
    // stopping, so every configuration runs exactly max_trials.
    let trials: u32 = 13; // deliberately not a multiple of any shard size
    let cells = vec![
        ScenarioSpec::hopping(HoppingSpec::new(12, 1_500))
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(300)
            .seed(21),
        ScenarioSpec::hopping(HoppingSpec::new(12, 1_500))
            .channels(2)
            .adversary(StrategySpec::ChannelLagged)
            .carol_budget(300)
            .seed(22),
    ];
    let rule = StopRule::new(Metric::NodeTotalCost, 0.0).trials(trials, trials, trials);

    // Sequential reference: run_batch outcomes folded in trial order.
    let reference: Vec<CellStats> = cells
        .iter()
        .map(|cell| {
            let mut stats = CellStats::new();
            for outcome in cell.build().unwrap().run_batch(trials) {
                stats.push(&TrialMetrics::from_outcome(&outcome));
            }
            stats
        })
        .collect();

    for workers in [1usize, 2, 5] {
        for shard_size in [1u32, 3, 16] {
            let service = SweepService::new(
                SweepConfig {
                    workers: Some(workers),
                    shard_size,
                },
                ResultCache::in_memory(),
            );
            let report = service
                .submit(&SweepSpec::new(cells.clone(), rule))
                .unwrap();
            for (cell, expected) in report.cells.iter().zip(&reference) {
                assert_eq!(cell.trials, u64::from(trials));
                assert_eq!(
                    &cell.stats,
                    expected,
                    "workers={workers} shard={shard_size}: sweep aggregate must be \
                     byte-identical to the sequential pass for {}",
                    cell.spec.label()
                );
            }
        }
    }
}

#[test]
fn epoch_hopping_and_kpsy_batches_are_worker_count_invariant() {
    // The PR-8 rosters join the same scheduling-invariance bar: batch
    // outcomes are defined by derived per-trial seeds, not by how the
    // worker pool interleaved them — for the era-2 epoch-hopping SoA
    // driver and for the slot-level KPSY roster alike.
    type ScenarioBuild = Box<dyn Fn(Option<usize>) -> Scenario>;
    let builds: Vec<(&str, ScenarioBuild)> = vec![
        (
            "epoch-hopping-c4",
            Box::new(|threads| {
                let mut b = Scenario::epoch_hopping(EpochHoppingSpec::new(16, 2_000, 32))
                    .channels(4)
                    .adversary(StrategySpec::ChannelSweep { dwell: 32 })
                    .carol_budget(400)
                    .seed(17);
                if let Some(workers) = threads {
                    b = b.threads(workers);
                }
                b.build().unwrap()
            }),
        ),
        (
            "kpsy",
            Box::new(|threads| {
                let mut b = Scenario::kpsy(KpsySpec {
                    n: 12,
                    horizon: 2_000,
                })
                .adversary(StrategySpec::Continuous)
                .carol_budget(500)
                .seed(17);
                if let Some(workers) = threads {
                    b = b.threads(workers);
                }
                b.build().unwrap()
            }),
        ),
    ];
    for (label, build) in &builds {
        let reference = build(None).run_batch(5);
        for threads in [1usize, 2, 5] {
            let overridden = build(Some(threads)).run_batch(5);
            assert_eq!(overridden.len(), reference.len());
            for (a, b) in overridden.iter().zip(&reference) {
                assert_identical(a, b, &format!("{label} threads={threads}"));
            }
        }
    }
}

#[test]
fn era2_broadcast_batches_are_worker_count_invariant() {
    // The sleep-skipping broadcast engine processes nodes in wake order,
    // not roster order; this must stay invisible to batch scheduling.
    let build = |threads: Option<usize>| {
        let mut b = Scenario::broadcast(Params::builder(64).max_round_margin(3).build().unwrap())
            .adversary(StrategySpec::Spoof(0.8))
            .carol_budget(1_500)
            .seed(23);
        if let Some(workers) = threads {
            b = b.threads(workers);
        }
        b.build().unwrap()
    };
    let reference = build(None).run_batch(4);
    for threads in [1usize, 3] {
        let overridden = build(Some(threads)).run_batch(4);
        for (a, b) in overridden.iter().zip(&reference) {
            assert_identical(a, b, &format!("era2 broadcast threads={threads}"));
        }
    }
}

#[test]
fn different_seeds_actually_differ() {
    let params = Params::builder(32).build().unwrap();
    let outcomes: Vec<_> = (0..4)
        .map(|seed| {
            Scenario::broadcast(params.clone())
                .seed(seed)
                .build()
                .unwrap()
                .run()
        })
        .collect();
    let all_same_costs = outcomes
        .windows(2)
        .all(|w| w[0].broadcast.node_total_cost == w[1].broadcast.node_total_cost);
    assert!(!all_same_costs, "distinct seeds should perturb the runs");
}

#[test]
fn figure_one_and_figure_two_variants_both_run() {
    for variant in [Variant::K2Paper, Variant::GeneralK] {
        let params = Params::builder(32).variant(variant).build().unwrap();
        let o = Scenario::broadcast(params).seed(11).build().unwrap().run();
        assert!(
            o.informed_fraction() > 0.9,
            "{variant:?} quiet delivery failed"
        );
        assert!(o.completed(), "{variant:?} must terminate cleanly");
    }
}

#[test]
fn k3_protocol_with_two_propagation_steps_delivers() {
    let params = Params::builder(32).k(3).build().unwrap();
    assert_eq!(params.propagation_steps(), 2);
    let o = Scenario::broadcast(params).seed(13).build().unwrap().run();
    assert!(o.informed_fraction() > 0.9);
    assert!(o.completed());
}
