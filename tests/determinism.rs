//! Cross-crate integration: exact replayability from a single master seed,
//! across engines, adversaries, and protocol variants.

use evildoers::adversary::StrategySpec;
use evildoers::core::fast::{run_fast, FastConfig};
use evildoers::core::{run_broadcast, Params, RunConfig, Variant};
use evildoers::radio::Budget;

#[test]
fn exact_engine_replays_bit_for_bit() {
    let params = Params::builder(32).max_round_margin(3).build().unwrap();
    for spec in [
        StrategySpec::Continuous,
        StrategySpec::Random(0.4),
        StrategySpec::Spoof(0.8),
        StrategySpec::Extract(4),
    ] {
        let run = |seed: u64| {
            let mut carol = spec.slot_adversary(&params, seed);
            let cfg = RunConfig::seeded(seed).carol_budget(Budget::limited(1_000));
            run_broadcast(&params, carol.as_mut(), &cfg)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.slots, b.slots, "{}", spec.name());
        assert_eq!(a.informed_nodes, b.informed_nodes, "{}", spec.name());
        assert_eq!(a.alice_cost, b.alice_cost, "{}", spec.name());
        assert_eq!(a.node_total_cost, b.node_total_cost, "{}", spec.name());
        assert_eq!(a.carol_cost, b.carol_cost, "{}", spec.name());
        assert_eq!(a.node_costs, b.node_costs, "{}", spec.name());
    }
}

#[test]
fn fast_sim_replays_bit_for_bit() {
    let params = Params::builder(10_000).build().unwrap();
    let run = |seed: u64| {
        let mut carol = StrategySpec::BlockDissemination(1.0).phase_adversary(&params, seed);
        run_fast(
            &params,
            carol.as_mut(),
            &FastConfig::seeded(seed).carol_budget(100_000),
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.informed_nodes, b.informed_nodes);
    assert_eq!(a.node_total_cost, b.node_total_cost);
    assert_eq!(a.carol_cost, b.carol_cost);
    assert_eq!(a.slots, b.slots);
}

#[test]
fn different_seeds_actually_differ() {
    let params = Params::builder(32).build().unwrap();
    let run = |seed: u64| {
        run_broadcast(
            &params,
            &mut evildoers::radio::SilentAdversary,
            &RunConfig::seeded(seed),
        )
    };
    let outcomes: Vec<_> = (0..4).map(run).collect();
    let all_same_costs = outcomes
        .windows(2)
        .all(|w| w[0].node_total_cost == w[1].node_total_cost);
    assert!(!all_same_costs, "distinct seeds should perturb the runs");
}

#[test]
fn figure_one_and_figure_two_variants_both_run() {
    for variant in [Variant::K2Paper, Variant::GeneralK] {
        let params = Params::builder(32).variant(variant).build().unwrap();
        let o = run_broadcast(
            &params,
            &mut evildoers::radio::SilentAdversary,
            &RunConfig::seeded(11),
        );
        assert!(
            o.informed_fraction() > 0.9,
            "{variant:?} quiet delivery failed"
        );
        assert!(o.completed(), "{variant:?} must terminate cleanly");
    }
}

#[test]
fn k3_protocol_with_two_propagation_steps_delivers() {
    let params = Params::builder(32).k(3).build().unwrap();
    assert_eq!(params.propagation_steps(), 2);
    let o = run_broadcast(
        &params,
        &mut evildoers::radio::SilentAdversary,
        &RunConfig::seeded(13),
    );
    assert!(o.informed_fraction() > 0.9);
    assert!(o.completed());
}
