//! Structural properties of the PR-8 protocol families: the
//! epoch-structured hopping schedule (Chen & Zheng 2019) and the KPSY
//! listening defense (King–Pettie–Saia–Young 2012).
//!
//! * Channel draws happen **only** at epoch boundaries — pinned at the
//!   slot level by an observing adversary that records every listener's
//!   channel every slot.
//! * At `C = 1` the epoch schedule has nothing to draw, so epoch
//!   hopping degenerates to single-channel epidemic gossip —
//!   bit-identically on the era-2 engine, since both lower to the same
//!   `GossipSpec` shape.
//! * The adaptive jammer gets no clairvoyance: watching traffic tells
//!   it which channels *were* hot, not where the next epoch's uniform
//!   draws will land, so its damage at equal budget stays within a
//!   small constant of the oblivious split.
//! * KPSY conserves budgets across the adversary zoo: Carol never
//!   spends past her `T`, and nodes are never refused an operation.

use evildoers::adversary::{SplitJammer, StrategySpec};
use evildoers::core::{execute_epoch_hopping_soa, EpochHoppingConfig};
use evildoers::radio::{
    Adversary, AdversaryCtx, AdversaryMove, Budget, Slot, SlotObservation, Spectrum,
};
use evildoers::sim::{EpidemicSpec, EpochHoppingSpec, KpsySpec, Scenario, ScenarioOutcome};

/// Wraps a jammer and records `(slot, participant, channel)` for every
/// listener in every slot, without perturbing the inner strategy.
struct ListenerProbe {
    inner: SplitJammer,
    seen: Vec<(u64, u32, u16)>,
}

impl Adversary for ListenerProbe {
    fn plan(&mut self, slot: Slot, ctx: &AdversaryCtx) -> AdversaryMove {
        self.inner.plan(slot, ctx)
    }
    fn observe(&mut self, slot: Slot, observation: &SlotObservation<'_>) {
        for &(pid, channel) in observation.listeners {
            self.seen.push((slot.index(), pid.index(), channel.index()));
        }
        self.inner.observe(slot, observation);
    }
    fn wants_listener_identities(&self) -> bool {
        // The sleep-skipping engine leaves `listeners` empty in inert
        // slots unless an observer opts in to full materialization.
        true
    }
}

#[test]
fn channel_redraws_happen_only_at_epoch_boundaries() {
    // Blanket-jam the whole spectrum so every node stays uninformed and
    // listens every slot (`listen_p = 1`): the probe then sees each
    // node's tuned channel in every single slot of the run.
    const EPOCH_LEN: u64 = 32;
    const HORIZON: u64 = 8 * EPOCH_LEN;
    let n = 6u64;
    let config = EpochHoppingConfig {
        n,
        horizon: HORIZON,
        listen_p: 1.0,
        relay_rate: 1.0,
        epoch_len: EPOCH_LEN,
        carol_budget: Budget::unlimited(),
        trace_capacity: 0,
        seed: 3,
    };
    let spectrum = Spectrum::new(4);
    let mut probe = ListenerProbe {
        inner: SplitJammer::new(spectrum),
        seen: Vec::new(),
    };
    let (outcome, _) = execute_epoch_hopping_soa(&config, spectrum, &mut probe);
    assert_eq!(
        outcome.informed_nodes, 0,
        "a blanket jam must block every delivery"
    );

    // Every node is observed in every slot of the horizon...
    let mut per_node: Vec<Vec<(u64, u16)>> = vec![Vec::new(); n as usize + 1];
    for &(slot, pid, channel) in &probe.seen {
        per_node[pid as usize].push((slot, channel));
    }
    let mut boundary_changes = 0u32;
    for (pid, slots) in per_node.iter().enumerate() {
        if pid == 0 {
            continue; // Alice never listens
        }
        assert_eq!(
            slots.len() as u64,
            HORIZON,
            "node {pid}: listen_p = 1 and no informs ⇒ one listen per slot"
        );
        // ...and its channel is constant within each epoch window.
        for window in slots.windows(2) {
            let ((s0, c0), (s1, c1)) = (window[0], window[1]);
            assert_eq!(s1, s0 + 1);
            if s1 % EPOCH_LEN != 0 {
                assert_eq!(c1, c0, "node {pid}: channel changed mid-epoch at slot {s1}");
            } else if c1 != c0 {
                boundary_changes += 1;
            }
        }
    }
    // Sanity: under a blanket jam every node hears noise, so the
    // exclusion redraw forces a channel change at every boundary.
    assert_eq!(
        boundary_changes,
        n as u32 * (HORIZON / EPOCH_LEN - 1) as u32,
        "noise-evading nodes must hop at every epoch boundary"
    );
}

#[test]
fn single_channel_epoch_hopping_is_epidemic_gossip() {
    // With one channel there is nothing to draw at a boundary: the epoch
    // schedule lowers to exactly the epidemic `GossipSpec`, so the era-2
    // streams are bit-identical, adversary included.
    for (seed, strategy) in [
        (9u64, StrategySpec::Silent),
        (10, StrategySpec::Random(0.4)),
        (11, StrategySpec::Continuous),
    ] {
        let epoch = Scenario::epoch_hopping(EpochHoppingSpec::new(16, 2_000, 32))
            .adversary(strategy)
            .carol_budget(300)
            .seed(seed)
            .build()
            .unwrap()
            .run();
        let epidemic = Scenario::epidemic(EpidemicSpec::new(16, 2_000))
            .adversary(strategy)
            .carol_budget(300)
            .seed(seed)
            .build()
            .unwrap()
            .run();
        let label = strategy.name();
        assert_eq!(epoch.slots, epidemic.slots, "{label}");
        assert_eq!(epoch.informed_nodes, epidemic.informed_nodes, "{label}");
        assert_eq!(
            epoch.broadcast.node_costs, epidemic.broadcast.node_costs,
            "{label}: C = 1 must replay the epidemic stream bit for bit"
        );
        assert_eq!(
            epoch.broadcast.carol_cost, epidemic.broadcast.carol_cost,
            "{label}"
        );
    }
}

#[test]
fn adaptive_jammer_gains_no_clairvoyance_over_epoch_hopping() {
    // Epoch boundaries redraw uniformly (evaders aside), so observed
    // traffic predicts nothing about the next epoch's channels: at equal
    // budget the traffic-chasing jammer must stay within a small
    // constant of the oblivious split, and can never block delivery.
    let run = |strategy: StrategySpec| -> Vec<ScenarioOutcome> {
        Scenario::epoch_hopping(EpochHoppingSpec::new(24, 1_536, 32))
            .channels(4)
            .adversary(strategy)
            .carol_budget(768)
            .seed(0xC1A)
            .build()
            .unwrap()
            .run_batch(8)
    };
    let mean_cost = |outcomes: &[ScenarioOutcome]| -> f64 {
        outcomes.iter().map(|o| o.mean_node_cost()).sum::<f64>() / outcomes.len() as f64
    };
    let split = run(StrategySpec::SplitUniform);
    let adaptive = run(StrategySpec::Adaptive {
        window: 8,
        reactivity: 0.5,
    });
    for o in split.iter().chain(&adaptive) {
        assert!(
            o.informed_fraction() > 0.99,
            "delivery must never be blocked at a finite budget"
        );
    }
    let ratio = mean_cost(&adaptive) / mean_cost(&split).max(1.0);
    assert!(
        ratio <= 2.0,
        "adaptive/oblivious damage ratio {ratio:.2} exceeds the no-clairvoyance envelope"
    );
}

#[test]
fn kpsy_conserves_budgets_across_the_zoo() {
    let budget = 600u64;
    let zoo = [
        StrategySpec::Silent,
        StrategySpec::Continuous,
        StrategySpec::Random(0.5),
        StrategySpec::Bursty { burst: 32, gap: 32 },
    ];
    for strategy in zoo {
        let outcome = Scenario::kpsy(KpsySpec {
            n: 12,
            horizon: 2_000,
        })
        .adversary(strategy)
        .carol_budget(budget)
        .seed(31)
        .build()
        .unwrap()
        .run();
        let label = strategy.name();
        assert!(
            outcome.carol_spend() <= budget,
            "{label}: Carol spent {} past her budget {budget}",
            outcome.carol_spend()
        );
        assert_eq!(
            outcome.total_refusals(),
            0,
            "{label}: unlimited node budgets must never refuse an op"
        );
        assert!(
            outcome.completed(),
            "{label}: every node reaches the horizon"
        );
    }
    // And on a quiet channel the defense still delivers to everyone.
    let quiet = Scenario::kpsy(KpsySpec {
        n: 12,
        horizon: 2_000,
    })
    .seed(31)
    .build()
    .unwrap()
    .run();
    assert_eq!(quiet.informed_nodes, 12);
}
