//! Property-style tests on the round/phase schedule — the data structure
//! every participant and adversary must agree on exactly. Shapes are
//! drawn from a seeded RNG (replacing the earlier proptest harness, which
//! is unavailable offline).

use evildoers::core::{Cursor, PhaseKind, RoundSchedule};
use evildoers::rng::SimRng;
use rand::{Rng, SeedableRng};

/// Draws a `(k, start, max)` shape within the sampled bounds, skipping
/// shapes whose slot count would overflow (the old `prop_assume`).
fn random_shape(rng: &mut SimRng, start_range: bool) -> Option<(u32, u32, u32)> {
    let k = rng.gen_range(2u32..6);
    let start = if start_range {
        rng.gen_range(1u32..4)
    } else {
        1
    };
    let extra = rng.gen_range(0u32..14);
    let max = (start + extra).max(start);
    if (1.0 + 1.0 / f64::from(k)) * f64::from(max) >= 62.0 {
        return None;
    }
    Some((k, start, max))
}

/// `Cursor::advance` and `RoundSchedule::locate` are the same function
/// (one incremental, one random-access) for every shape.
#[test]
fn cursor_and_locate_agree() {
    let mut gen = SimRng::seed_from_u64(0x5C8E);
    let mut cases = 0;
    while cases < 64 {
        let Some((k, start, max)) = random_shape(&mut gen, true) else {
            continue;
        };
        cases += 1;
        let schedule = RoundSchedule::with_shape(k, start, max);
        let mut cursor = Cursor::new(schedule.clone());
        let total = schedule.total_slots().min(5_000);
        for slot in 0..total {
            let a = cursor.advance();
            let b = schedule.locate(slot);
            assert_eq!(a, b, "shape ({k},{start},{max}) slot {slot}");
        }
        // Cursor::reset rewinds to slot 0 exactly (the scratch-reuse path).
        cursor.reset();
        assert_eq!(
            cursor.advance(),
            schedule.locate(0),
            "shape ({k},{start},{max}) after reset"
        );
    }
}

/// Phase lengths are monotone in the round index and rounds partition
/// the slot axis with no gaps or overlaps.
#[test]
fn rounds_partition_the_slot_axis() {
    let mut gen = SimRng::seed_from_u64(0x9A27);
    let mut cases = 0;
    while cases < 64 {
        let Some((k, _, max)) = random_shape(&mut gen, false) else {
            continue;
        };
        if max < 2 {
            continue;
        }
        cases += 1;
        let schedule = RoundSchedule::with_shape(k, 1, max);
        let mut expected_start = 0u64;
        for i in 1..=max {
            assert_eq!(schedule.round_start(i), expected_start);
            assert_eq!(
                schedule.round_len(i),
                (u64::from(k) + 1) * schedule.phase_len(i)
            );
            if i > 1 {
                assert!(schedule.phase_len(i) > schedule.phase_len(i - 1));
            }
            expected_start += schedule.round_len(i);
        }
        assert_eq!(schedule.total_slots(), expected_start);
    }
}

/// Every round contains exactly one inform phase, k−1 propagation
/// steps in ascending order, and one request phase — in that order.
#[test]
fn phase_order_within_each_round() {
    let mut gen = SimRng::seed_from_u64(0x0ABE);
    let mut cases = 0;
    while cases < 64 {
        let Some((k, _, max)) = random_shape(&mut gen, false) else {
            continue;
        };
        cases += 1;
        let schedule = RoundSchedule::with_shape(k, 1, max);
        for i in 1..=max {
            let len = schedule.phase_len(i);
            let start = schedule.round_start(i);
            // Sample the first slot of each phase.
            let mut expected = vec![PhaseKind::Inform];
            for h in 1..k {
                expected.push(PhaseKind::Propagation { step: h });
            }
            expected.push(PhaseKind::Request);
            for (ordinal, want) in expected.iter().enumerate() {
                let pos = schedule.locate(start + ordinal as u64 * len);
                assert_eq!(pos.round, i);
                assert_eq!(&pos.phase, want);
                assert!(pos.is_phase_start());
            }
        }
    }
}

/// `locate` is total: any slot index (even far beyond the schedule)
/// maps to a valid position within bounds.
#[test]
fn locate_is_total() {
    let mut gen = SimRng::seed_from_u64(0x707A);
    let schedule = RoundSchedule::with_shape(2, 1, 12);
    for _ in 0..256 {
        let slot = gen.gen_range(0u64..u64::MAX / 4);
        let pos = schedule.locate(slot);
        assert!(pos.round >= 1 && pos.round <= 12);
        assert!(pos.offset < pos.phase_len);
    }
}
