//! Property-based tests on the round/phase schedule — the data structure
//! every participant and adversary must agree on exactly.

use evildoers::core::{Cursor, PhaseKind, RoundSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Cursor::advance` and `RoundSchedule::locate` are the same function
    /// (one incremental, one random-access) for every shape.
    #[test]
    fn cursor_and_locate_agree(
        k in 2u32..6,
        start in 1u32..4,
        extra in 0u32..8,
    ) {
        let max = start + extra;
        prop_assume!((1.0 + 1.0 / f64::from(k)) * f64::from(max) < 62.0);
        let schedule = RoundSchedule::with_shape(k, start, max);
        let mut cursor = Cursor::new(schedule.clone());
        let total = schedule.total_slots().min(5_000);
        for slot in 0..total {
            let a = cursor.advance();
            let b = schedule.locate(slot);
            prop_assert_eq!(a, b, "slot {}", slot);
        }
    }

    /// Phase lengths are monotone in the round index and rounds partition
    /// the slot axis with no gaps or overlaps.
    #[test]
    fn rounds_partition_the_slot_axis(
        k in 2u32..6,
        max in 2u32..14,
    ) {
        prop_assume!((1.0 + 1.0 / f64::from(k)) * f64::from(max) < 62.0);
        let schedule = RoundSchedule::with_shape(k, 1, max);
        let mut expected_start = 0u64;
        for i in 1..=max {
            prop_assert_eq!(schedule.round_start(i), expected_start);
            prop_assert_eq!(schedule.round_len(i), (u64::from(k) + 1) * schedule.phase_len(i));
            if i > 1 {
                prop_assert!(schedule.phase_len(i) > schedule.phase_len(i - 1));
            }
            expected_start += schedule.round_len(i);
        }
        prop_assert_eq!(schedule.total_slots(), expected_start);
    }

    /// Every round contains exactly one inform phase, k−1 propagation
    /// steps in ascending order, and one request phase — in that order.
    #[test]
    fn phase_order_within_each_round(
        k in 2u32..6,
        max in 1u32..8,
    ) {
        prop_assume!((1.0 + 1.0 / f64::from(k)) * f64::from(max) < 62.0);
        let schedule = RoundSchedule::with_shape(k, 1, max);
        for i in 1..=max {
            let len = schedule.phase_len(i);
            let start = schedule.round_start(i);
            // Sample the first slot of each phase.
            let mut expected = vec![PhaseKind::Inform];
            for h in 1..k {
                expected.push(PhaseKind::Propagation { step: h });
            }
            expected.push(PhaseKind::Request);
            for (ordinal, want) in expected.iter().enumerate() {
                let pos = schedule.locate(start + ordinal as u64 * len);
                prop_assert_eq!(pos.round, i);
                prop_assert_eq!(&pos.phase, want);
                prop_assert!(pos.is_phase_start());
            }
        }
    }

    /// `locate` is total: any slot index (even far beyond the schedule)
    /// maps to a valid position within bounds.
    #[test]
    fn locate_is_total(slot in 0u64..u64::MAX / 4) {
        let schedule = RoundSchedule::with_shape(2, 1, 12);
        let pos = schedule.locate(slot);
        prop_assert!(pos.round >= 1 && pos.round <= 12);
        prop_assert!(pos.offset < pos.phase_len);
    }
}
