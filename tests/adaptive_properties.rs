//! Adversarial properties of the adaptive multi-channel jammer
//! (Chen & Zheng 2020 model): budget conservation, reaction-lag
//! correctness (no same-slot clairvoyance), and degeneracy to the
//! single-channel lagged jammer at C = 1.

use evildoers::adversary::{AdaptiveJammer, LaggedJammer, StrategySpec};
use evildoers::radio::{
    Adversary, AdversaryCtx, AdversaryMove, ChannelId, ParticipantId, PayloadKind, Slot,
    SlotObservation, Spectrum,
};
use evildoers::rng::{SeedTree, SimRng};
use evildoers::sim::{HoppingSpec, Scenario};
use rand::Rng;

fn unlimited() -> AdversaryCtx {
    AdversaryCtx {
        budget_remaining: None,
        spent: 0,
    }
}

/// Drives an adversary through a seeded pseudo-random observation
/// sequence over `spectrum`, returning the jam plan it committed for
/// every slot. `density` controls how often channels carry traffic.
fn drive(
    adversary: &mut dyn Adversary,
    spectrum: Spectrum,
    slots: u64,
    seed: u64,
    density: f64,
) -> Vec<AdversaryMove> {
    let mut rng: SimRng = SeedTree::new(seed).stream("traffic", 0);
    let mut moves = Vec::with_capacity(slots as usize);
    for t in 0..slots {
        moves.push(adversary.plan(Slot::new(t), &unlimited()));
        let mut sends: Vec<(ParticipantId, ChannelId, PayloadKind)> = Vec::new();
        for channel in spectrum.channels() {
            if rng.gen_bool(density) {
                sends.push((
                    ParticipantId::new(channel.index() as u32),
                    channel,
                    PayloadKind::Broadcast,
                ));
            }
        }
        adversary.observe(
            Slot::new(t),
            &SlotObservation {
                correct_sends: &sends,
                listeners: &[],
                jam_executed: false,
                jammed_channels: &[],
                delivered: &[],
            },
        );
    }
    moves
}

#[test]
fn budget_conservation_adaptive_never_outspends_t() {
    // The engine charges one unit per executed jam directive; whatever
    // the adaptive jammer plans, its spend must never exceed T — across
    // channel counts, windows, and seeds.
    for &channels in &[2u16, 4, 8] {
        for &(window, reactivity) in &[(1u32, 1.0f64), (8, 0.5), (32, 0.1)] {
            let t = 700u64;
            let outcomes = Scenario::hopping(HoppingSpec::new(16, 4_000))
                .channels(channels)
                .adversary(StrategySpec::Adaptive { window, reactivity })
                .carol_budget(t)
                .seed(0xBEEF ^ u64::from(channels))
                .build()
                .unwrap()
                .run_batch(3);
            for o in &outcomes {
                assert!(
                    o.carol_spend() <= t,
                    "C={channels} w={window}: spend {} exceeds T={t}",
                    o.carol_spend()
                );
            }
        }
    }
}

#[test]
fn budget_conservation_plan_respects_remaining_units() {
    // Direct check at the planning layer: with R units left the plan
    // never names more than R channels, however hot the spectrum is.
    let spectrum = Spectrum::new(8);
    let mut carol = AdaptiveJammer::new(spectrum, 4, 0.5);
    let every_channel: Vec<(ParticipantId, ChannelId, PayloadKind)> = spectrum
        .channels()
        .map(|c| (ParticipantId::new(c.index() as u32), c, PayloadKind::Nack))
        .collect();
    carol.observe(
        Slot::ZERO,
        &SlotObservation {
            correct_sends: &every_channel,
            listeners: &[],
            jam_executed: false,
            jammed_channels: &[],
            delivered: &[],
        },
    );
    for remaining in 0..=9u64 {
        let mut probe = carol.clone();
        let ctx = AdversaryCtx {
            budget_remaining: Some(remaining),
            spent: 0,
        };
        let planned = probe.plan(Slot::new(1), &ctx).jam.active_channel_count() as u64;
        assert!(
            planned <= remaining,
            "plan names {planned} channels with only {remaining} units left"
        );
    }
}

#[test]
fn reaction_lag_plans_ignore_the_current_slot() {
    // Two jammers share an identical observation history up to slot t-1.
    // Whatever happens *in* slot t must not influence the plan for slot t:
    // the engine commits the plan before the slot resolves, and the
    // jammer's state may depend only on strictly earlier slots.
    let spectrum = Spectrum::new(4);
    let mut a = AdaptiveJammer::new(spectrum, 8, 0.5);
    let mut b = AdaptiveJammer::new(spectrum, 8, 0.5);
    let _ = drive(&mut a, spectrum, 40, 99, 0.4);
    let _ = drive(&mut b, spectrum, 40, 99, 0.4);
    // Identical history ⇒ identical next plan, regardless of what either
    // jammer is about to observe in slot 40.
    let plan_a = a.plan(Slot::new(40), &unlimited());
    let plan_b = b.plan(Slot::new(40), &unlimited());
    assert_eq!(plan_a.jam, plan_b.jam);
    // Feeding slot 40's observation only changes plans from slot 41 on.
    let burst: Vec<(ParticipantId, ChannelId, PayloadKind)> = spectrum
        .channels()
        .map(|c| (ParticipantId::new(0), c, PayloadKind::Broadcast))
        .collect();
    b.observe(
        Slot::new(40),
        &SlotObservation {
            correct_sends: &burst,
            listeners: &[],
            jam_executed: false,
            jammed_channels: &[],
            delivered: &[],
        },
    );
    assert_eq!(
        plan_a.jam,
        a.plan(Slot::new(40), &unlimited()).jam,
        "replanning the same slot without new observations is stable"
    );
    assert_eq!(
        b.plan(Slot::new(41), &unlimited())
            .jam
            .active_channel_count(),
        4,
        "slot 40's burst shows up exactly one slot later"
    );
}

#[test]
fn fresh_jammer_cannot_jam_slot_zero() {
    let mut carol = AdaptiveJammer::new(Spectrum::new(8), 8, 0.5);
    assert!(
        !carol.plan(Slot::ZERO, &unlimited()).jam.is_active(),
        "no observation history yet, so nothing to adapt to"
    );
}

#[test]
fn degeneracy_at_c1_matches_lagged_jammer_slot_for_slot() {
    // At C = 1 the adaptive jammer collapses to the single-channel
    // LaggedJammer for *every* window and reactivity: same plan in every
    // slot against the same observation sequence.
    let spectrum = Spectrum::single();
    for &(window, reactivity) in &[(1u32, 1.0f64), (4, 0.5), (17, 0.05)] {
        for seed in 0..4u64 {
            let mut adaptive = AdaptiveJammer::new(spectrum, window, reactivity);
            let mut lagged = LaggedJammer::new();
            let a = drive(&mut adaptive, spectrum, 300, seed, 0.5);
            let l = drive(&mut lagged, spectrum, 300, seed, 0.5);
            for (t, (ma, ml)) in a.iter().zip(&l).enumerate() {
                assert_eq!(
                    ma.jam, ml.jam,
                    "w={window} r={reactivity} seed={seed}: plans diverge at slot {t}"
                );
                assert!(ma.sends.is_empty() && ml.sends.is_empty());
            }
        }
    }
}

#[test]
fn degeneracy_at_c1_matches_lagged_jammer_end_to_end() {
    // Whole-scenario equality on the hopping workload at C = 1: the
    // pinned-fingerprint version of this property lives in
    // multichannel_equivalence.rs; this one asserts the equality itself
    // for several seeds.
    for seed in [3u64, 42, 2020] {
        let run = |spec: StrategySpec| {
            Scenario::hopping(HoppingSpec::new(24, 3_000))
                .channels(1)
                .adversary(spec)
                .carol_budget(500)
                .seed(seed)
                .build()
                .unwrap()
                .run()
        };
        let adaptive = run(StrategySpec::Adaptive {
            window: 1,
            reactivity: 1.0,
        });
        let lagged = run(StrategySpec::LaggedReactive);
        assert_eq!(adaptive.slots, lagged.slots, "seed {seed}");
        assert_eq!(
            adaptive.informed_nodes, lagged.informed_nodes,
            "seed {seed}"
        );
        assert_eq!(adaptive.broadcast.alice_cost, lagged.broadcast.alice_cost);
        assert_eq!(
            adaptive.broadcast.node_costs, lagged.broadcast.node_costs,
            "seed {seed}: per-node costs must be byte-identical"
        );
        assert_eq!(
            adaptive.broadcast.carol_cost, lagged.broadcast.carol_cost,
            "seed {seed}: the jammers spend identically"
        );
        assert_eq!(
            adaptive.channel_stats, lagged.channel_stats,
            "seed {seed}: per-channel accounting matches"
        );
    }
}
