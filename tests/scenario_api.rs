//! The unified `Scenario` API, exercised end to end from the umbrella
//! crate: strategy coverage, the invalid-combination matrix, batching,
//! and outcome plumbing.

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::sim::{
    Engine, EpidemicSpec, HoppingSpec, KsySpec, NaiveSpec, ProtocolKind, Scenario, ScenarioError,
};

fn params(n: u64) -> Params {
    Params::builder(n).build().unwrap()
}

#[test]
fn every_strategy_constructs_slot_and_phase_adversaries_where_defined() {
    let p = params(16);
    for spec in StrategySpec::full_roster() {
        // Slot-level always exists.
        let _slot = spec.slot_adversary(&p, 1);
        // Phase-level exists exactly when the spec claims support.
        assert_eq!(
            spec.phase_adversary(&p, 1).is_some(),
            spec.supports_phase(),
            "{}",
            spec.name()
        );
        // Names are stable (same name on repeated calls).
        assert_eq!(spec.name(), spec.name());
    }
    // Names are unique across the full roster.
    let mut names: Vec<String> = StrategySpec::full_roster()
        .iter()
        .map(StrategySpec::name)
        .collect();
    let total = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate strategy names");
}

#[test]
fn every_strategy_runs_through_the_scenario_builder_on_its_engines() {
    for spec in StrategySpec::full_roster() {
        // Channel-aware strategies need a channel-capable protocol; the
        // exact engine hosts them there (multi-channel spectrum).
        if spec.requires_channels() {
            let o = Scenario::hopping(HoppingSpec::new(16, 1_000))
                .channels(4)
                .adversary(spec)
                .carol_budget(400)
                .seed(2)
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()))
                .run();
            assert!(o.slots > 0, "{}", spec.name());
        } else {
            // Exact engine hosts every single-channel strategy.
            let o = Scenario::broadcast(params(16))
                .adversary(spec)
                .carol_budget(400)
                .seed(2)
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()))
                .run();
            assert!(o.slots > 0, "{}", spec.name());
        }

        // Fast engine hosts exactly the phase-capable ones.
        let fast = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .adversary(spec)
            .carol_budget(400)
            .seed(2)
            .build();
        match fast {
            Ok(scenario) => {
                assert!(spec.supports_phase(), "{}", spec.name());
                assert!(scenario.run().slots > 0, "{}", spec.name());
            }
            Err(err) => {
                assert!(!spec.supports_phase(), "{}: {err}", spec.name());
                assert!(matches!(
                    err,
                    ScenarioError::SlotOnlyStrategy { .. }
                        | ScenarioError::ChannelStrategyUnsupported { .. }
                ));
            }
        }

        // The fast multi-channel engine hosts exactly the phase-mc
        // capable ones (the channel-aware family + silent/continuous).
        let fast_mc = Scenario::hopping(HoppingSpec::new(256, 1_000))
            .engine(Engine::Fast)
            .channels(4)
            .adversary(spec)
            .carol_budget(400)
            .seed(2)
            .build();
        match fast_mc {
            Ok(scenario) => {
                assert!(spec.supports_phase_mc(), "{}", spec.name());
                let o = scenario.run();
                assert!(o.slots > 0, "{}", spec.name());
                assert_eq!(
                    o.channel_stats.as_ref().map(Vec::len),
                    Some(4),
                    "{}: fast_mc populates per-channel tallies",
                    spec.name()
                );
            }
            Err(err) => {
                assert!(!spec.supports_phase_mc(), "{}: {err}", spec.name());
                assert!(
                    matches!(
                        err,
                        ScenarioError::SlotOnlyStrategy { .. }
                            | ScenarioError::ScheduleBoundStrategy { .. }
                    ),
                    "{}: {err}",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn invalid_combinations_are_typed_errors_not_panics() {
    // Fast engine × baseline protocol.
    let err = Scenario::naive(NaiveSpec { n: 8, horizon: 10 })
        .engine(Engine::Fast)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::UnsupportedEngine {
            protocol: ProtocolKind::Naive,
            engine: Engine::Fast,
        }
    );

    // Schedule-bound strategy × baseline protocol.
    let err = Scenario::epidemic(EpidemicSpec::new(8, 10))
        .adversary(StrategySpec::BlockAll(0.5))
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::ScheduleBoundStrategy { .. }));

    // KSY × arbitrary adversary.
    let err = Scenario::ksy(KsySpec::default())
        .adversary(StrategySpec::Bursty { burst: 4, gap: 4 })
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::UnsupportedAdversary { .. }));

    // KSY × continuous jamming without a budget.
    let err = Scenario::ksy(KsySpec::default())
        .adversary(StrategySpec::Continuous)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::BudgetRequired { .. }));

    // Tracing off the slot-recording engines: the fast simulator and the
    // closed-form KSY comparator record no slots.
    let err = Scenario::broadcast(params(4096))
        .engine(Engine::Fast)
        .trace(64)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));
    let err = Scenario::ksy(KsySpec::default())
        .adversary(StrategySpec::Continuous)
        .carol_budget(1_000)
        .trace(64)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

    // Tracing with zero capacity is a typed error, not a silent no-op.
    let err = Scenario::naive(NaiveSpec { n: 8, horizon: 10 })
        .trace(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)));

    // Tracing the phase-level multi-channel engine: no slots recorded.
    let err = Scenario::hopping(HoppingSpec::new(8, 100))
        .engine(Engine::Fast)
        .channels(2)
        .trace(64)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

    // The phase length is a fast_mc knob: zero is rejected, and so is
    // naming it on any other protocol × engine combination.
    let err = Scenario::hopping(HoppingSpec::new(8, 100))
        .engine(Engine::Fast)
        .phase_len(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)));
    let err = Scenario::hopping(HoppingSpec::new(8, 100))
        .phase_len(32) // exact engine has no phases
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    let err = Scenario::broadcast(params(4096))
        .engine(Engine::Fast)
        .phase_len(32) // ε-BROADCAST phases come from the schedule
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");

    // A zero-worker batch pool is meaningless.
    let err = Scenario::broadcast(params(16))
        .threads(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");

    // The lagged-reactive jammer lowers onto the phase-mc hopping
    // engine now; only the schedule-bound family stays slot-only there.
    let o = Scenario::hopping(HoppingSpec::new(256, 1_000))
        .engine(Engine::Fast)
        .adversary(StrategySpec::LaggedReactive)
        .carol_budget(400)
        .build()
        .unwrap()
        .run();
    assert!(o.slots > 0);
    let err = Scenario::hopping(HoppingSpec::new(8, 100))
        .engine(Engine::Fast)
        .adversary(StrategySpec::BlockAll(0.5))
        .build()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
        "{err}"
    );

    // The adaptive adversary validates its parameters...
    let err = Scenario::hopping(HoppingSpec::new(8, 100))
        .channels(4)
        .adversary(StrategySpec::Adaptive {
            window: 0,
            reactivity: 0.5,
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)));
    for reactivity in [0.0, -0.5, 1.5, f64::NAN] {
        let err = Scenario::hopping(HoppingSpec::new(8, 100))
            .channels(4)
            .adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity,
            })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidConfig(_)),
            "reactivity {reactivity} must be rejected, got {err}"
        );
    }

    // ...and, like every channel-aware strategy, cannot target a protocol
    // pinned to the single-channel model.
    for builder in [
        Scenario::broadcast(params(16)),
        Scenario::naive(NaiveSpec { n: 8, horizon: 10 }),
        Scenario::epidemic(EpidemicSpec::new(8, 10)),
    ] {
        let err = builder
            .adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::ChannelStrategyUnsupported { .. }),
            "{err}"
        );
    }

    // Out-of-range protocol config: typed error where the old entry
    // point panicked.
    let mut bad = EpidemicSpec::new(8, 10);
    bad.listen_p = 2.0;
    let err = Scenario::epidemic(bad).build().unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)));

    // Every error renders a human-readable message.
    assert!(!err.to_string().is_empty());
}

#[test]
fn epoch_hopping_and_kpsy_reject_invalid_combinations() {
    use evildoers::sim::{EpochHoppingSpec, KpsySpec};

    // A zero-length epoch never reaches a boundary to redraw at.
    let err = Scenario::epoch_hopping(EpochHoppingSpec::new(8, 100, 0))
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");

    // KPSY is a slot-level listening defense: no phase lowering exists,
    // on either fast engine shape.
    for channels in [1u16, 4] {
        let err = Scenario::kpsy(KpsySpec { n: 8, horizon: 100 })
            .engine(Engine::Fast)
            .channels(channels)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnsupportedEngine {
                protocol: ProtocolKind::Kpsy,
                engine: Engine::Fast,
            }
        );
    }

    // ...and it is pinned to the single-channel radio model.
    let err = Scenario::kpsy(KpsySpec { n: 8, horizon: 100 })
        .channels(2)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::MultiChannelUnsupported { .. }),
        "{err}"
    );
    let err = Scenario::kpsy(KpsySpec { n: 8, horizon: 100 })
        .adversary(StrategySpec::SplitUniform)
        .carol_budget(100)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::ChannelStrategyUnsupported { .. }),
        "{err}"
    );
    let err = Scenario::kpsy(KpsySpec { n: 8, horizon: 100 })
        .adversary(StrategySpec::BlockAll(0.5))
        .build()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
        "{err}"
    );

    // The lagged-reactive lowering reaches the epoch-aware fast engine
    // too; schedule-bound strategies still have no phase-mc model there.
    let o = Scenario::epoch_hopping(EpochHoppingSpec::new(256, 1_000, 32))
        .engine(Engine::Fast)
        .adversary(StrategySpec::LaggedReactive)
        .carol_budget(400)
        .build()
        .unwrap()
        .run();
    assert!(o.slots > 0);
    let err = Scenario::epoch_hopping(EpochHoppingSpec::new(8, 100, 32))
        .engine(Engine::Fast)
        .adversary(StrategySpec::BlockAll(0.5))
        .build()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
        "{err}"
    );

    // The epoch schedule *is* the phase structure on the fast engine;
    // naming the free-hopping phase_len knob alongside it is a config
    // error, on either engine.
    for engine in [Engine::Exact, Engine::Fast] {
        let err = Scenario::epoch_hopping(EpochHoppingSpec::new(8, 100, 32))
            .engine(engine)
            .phase_len(16)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    // Valid configurations still build, so the gates above are not
    // over-broad: epoch hopping on both engines, KPSY on exact.
    Scenario::epoch_hopping(EpochHoppingSpec::new(8, 100, 32))
        .channels(4)
        .build()
        .unwrap();
    Scenario::epoch_hopping(EpochHoppingSpec::new(256, 100, 32))
        .engine(Engine::Fast)
        .channels(4)
        .build()
        .unwrap();
    Scenario::kpsy(KpsySpec { n: 8, horizon: 100 })
        .build()
        .unwrap();
}

#[test]
fn outcome_carries_engine_specific_extras() {
    // Exact: stop reason, refusals, and (on request) the trace.
    let o = Scenario::broadcast(params(16))
        .trace(2048)
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(o.stop_reason.is_some());
    assert!(o.participant_refusals.is_some());
    assert!(o.trace.is_some());

    // Fast: none of the slot-level extras.
    let o = Scenario::broadcast(params(4096))
        .engine(Engine::Fast)
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(o.stop_reason.is_none());
    assert!(o.participant_refusals.is_none());
    assert!(o.trace.is_none());

    // Baselines and hopping record traces too, now that trace capacity is
    // threaded through their exact-engine runners.
    let o = Scenario::naive(NaiveSpec { n: 8, horizon: 50 })
        .trace(64)
        .seed(5)
        .build()
        .unwrap()
        .run();
    let trace = o.trace.as_ref().expect("naive records a trace on request");
    assert!(!trace.is_empty());
    assert!(o.stop_reason.is_some());
    let o = Scenario::epidemic(EpidemicSpec::new(8, 200))
        .trace(64)
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(o.trace.is_some());
    let o = Scenario::hopping(HoppingSpec::new(8, 200))
        .channels(4)
        .adversary(StrategySpec::Adaptive {
            window: 4,
            reactivity: 0.5,
        })
        .carol_budget(100)
        .trace(64)
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(o.trace.is_some());
    // Without an explicit trace() request there is no trace.
    let o = Scenario::naive(NaiveSpec { n: 8, horizon: 50 })
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert!(o.trace.is_none());

    // KSY: the raw two-player outcome rides along, consistently mapped.
    let o = Scenario::ksy(KsySpec::default())
        .adversary(StrategySpec::Continuous)
        .carol_budget(2_000)
        .seed(5)
        .build()
        .unwrap()
        .run();
    let raw = o.ksy.unwrap();
    assert_eq!(o.broadcast.alice_cost.sends, raw.sender_cost);
    assert_eq!(o.broadcast.node_total_cost.listens, raw.receiver_cost);
    assert_eq!(u64::from(raw.delivered), o.informed_nodes);
}

#[test]
fn run_batch_scales_and_matches_solo_runs() {
    let scenario = Scenario::broadcast(params(24))
        .adversary(StrategySpec::Random(0.4))
        .carol_budget(600)
        .seed(77)
        .build()
        .unwrap();
    let batch = scenario.run_batch(8);
    assert_eq!(batch.len(), 8);
    // Distinct derived seeds, each reproducible solo.
    let mut seeds: Vec<u64> = batch.iter().map(|o| o.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 8);
    let solo = scenario.run_seeded(batch[5].seed);
    assert_eq!(solo.slots, batch[5].slots);
    assert_eq!(solo.broadcast.node_costs, batch[5].broadcast.node_costs);
}
