//! Telemetry is observational — never causal.
//!
//! Every instrumented engine path (era-2 exact SoA, the fast ε-BROADCAST
//! simulator, the phase-level `fast_mc` spectrum simulator, the SoA
//! baselines, and the sweep scheduler) threads a `Collector` through its
//! hot loop. This suite pins the contract that makes that safe to ship
//! enabled-by-default machinery: attaching a recording collector changes
//! **nothing** about the outcome. Same seed, same scenario, with and
//! without telemetry ⇒ byte-identical `ScenarioOutcome`s.
//!
//! The guarantee is structural — the collector only ever *reads* engine
//! state, it never draws RNG or participates in control flow — and this
//! file is the tripwire: if an instrumentation change ever perturbs a
//! seeded stream, the era-scoped fingerprints (see
//! `multichannel_equivalence.rs`) would force an `ENGINE_ERA` bump, and
//! the pin at the bottom of this file fails loudly.

use std::sync::Arc;

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::sim::{
    Engine, EpidemicSpec, EpochHoppingSpec, HoppingSpec, NaiveSpec, Scenario, ScenarioBuilder,
    ScenarioOutcome,
};
use evildoers::sweep::ENGINE_ERA;
use evildoers::telemetry::{MetricId, RecordingCollector};

/// Renders an outcome with its (run-dependent) telemetry snapshot
/// stripped, so two runs compare on the simulation results alone.
fn rendered(outcome: &ScenarioOutcome) -> String {
    let mut bare = outcome.clone();
    bare.telemetry = None;
    format!("{bare:?}")
}

/// Runs `build` twice — plain, then with a recording collector attached —
/// and asserts the outcomes are byte-identical. Returns the collector so
/// callers can assert it actually saw traffic.
fn assert_neutral(label: &str, builder: ScenarioBuilder) -> Arc<RecordingCollector> {
    let plain = builder.clone().build().unwrap().run();
    assert!(
        plain.telemetry_snapshot().is_none(),
        "{label}: unattached run must not carry a snapshot"
    );

    let collector = Arc::new(RecordingCollector::new());
    let observed = builder.telemetry(collector.clone()).build().unwrap().run();
    assert_eq!(
        rendered(&plain),
        rendered(&observed),
        "{label}: telemetry changed the outcome"
    );
    collector
}

/// Total counter volume a collector recorded, across every metric.
fn recorded_volume(collector: &RecordingCollector) -> u64 {
    MetricId::ALL.iter().map(|&id| collector.counter(id)).sum()
}

fn params(n: u64) -> Params {
    Params::builder(n).build().unwrap()
}

#[test]
fn exact_engine_is_telemetry_neutral() {
    let collector = assert_neutral(
        "broadcast/exact",
        Scenario::broadcast(params(32))
            .adversary(StrategySpec::Continuous)
            .carol_budget(800)
            .seed(42),
    );
    assert!(
        recorded_volume(&collector) > 0,
        "exact engine recorded nothing"
    );
    assert!(collector.counter(MetricId::EngineSlots) > 0);
    assert!(collector.counter(MetricId::EngineRngDraws) > 0);
}

#[test]
fn fast_engine_is_telemetry_neutral() {
    let collector = assert_neutral(
        "broadcast/fast",
        Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .adversary(StrategySpec::BlockDissemination(1.0))
            .carol_budget(50_000)
            .seed(7),
    );
    assert!(collector.counter(MetricId::FastPhases) > 0);
}

#[test]
fn fast_mc_engine_is_telemetry_neutral() {
    let collector = assert_neutral(
        "hopping/fast_mc",
        Scenario::hopping(HoppingSpec::new(1 << 12, 4_000))
            .engine(Engine::Fast)
            .channels(4)
            .adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            })
            .carol_budget(1_000)
            .seed(9),
    );
    assert!(collector.counter(MetricId::FastPhases) > 0);
    // Requested ≥ executed: the budget clamp only ever shrinks the jam.
    assert!(
        collector.counter(MetricId::FastJamRequested)
            >= collector.counter(MetricId::FastJamExecuted)
    );
}

#[test]
fn epoch_hopping_is_telemetry_neutral_on_both_engines() {
    let exact = assert_neutral(
        "epoch-hopping/exact",
        Scenario::epoch_hopping(EpochHoppingSpec::new(16, 2_000, 64))
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(400)
            .seed(5),
    );
    assert!(recorded_volume(&exact) > 0);

    let fast = assert_neutral(
        "epoch-hopping/fast",
        Scenario::epoch_hopping(EpochHoppingSpec::new(1 << 12, 4_000, 128))
            .engine(Engine::Fast)
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(800)
            .seed(5),
    );
    assert!(fast.counter(MetricId::FastPhases) > 0);
}

#[test]
fn baselines_are_telemetry_neutral() {
    let naive = assert_neutral(
        "naive",
        Scenario::naive(NaiveSpec {
            n: 16,
            horizon: 200,
        })
        .seed(3),
    );
    assert!(recorded_volume(&naive) > 0);

    let epidemic = assert_neutral(
        "epidemic",
        Scenario::epidemic(EpidemicSpec::new(16, 2_000)).seed(3),
    );
    assert!(recorded_volume(&epidemic) > 0);
}

#[test]
fn batched_trials_are_telemetry_neutral() {
    let build = || {
        Scenario::hopping(HoppingSpec::new(16, 1_500))
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(300)
            .seed(21)
    };
    let plain = build().build().unwrap().run_batch(4);

    let collector = Arc::new(RecordingCollector::new());
    let observed = build()
        .telemetry(collector.clone())
        .build()
        .unwrap()
        .run_batch(4);

    assert_eq!(plain.len(), observed.len());
    for (i, (a, b)) in plain.iter().zip(&observed).enumerate() {
        assert_eq!(rendered(a), rendered(b), "trial {i} diverged");
    }
    // One shared collector aggregates across all workers of the batch.
    assert!(recorded_volume(&collector) > 0);
}

#[test]
fn engine_era_is_unchanged_by_instrumentation() {
    // Telemetry never draws RNG, so the seeded outcome streams are the
    // same as before the instrumentation landed — the era tag must NOT
    // have been bumped. If this fails, an instrumentation change
    // perturbed engine behaviour and needs to be made observational
    // again (or, if the perturbation was deliberate, re-pinned as a new
    // era with the full fingerprint recapture that entails).
    assert_eq!(ENGINE_ERA, "era2:exact-soa-pr7/fast-pr7/fastmc-pr7");
}
