//! Cross-crate integration: energy budgets are hard constraints — for the
//! defenders (Lemma 11's feasibility) and for Carol (the mechanism that
//! forces an unblockable round).

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::sim::{HoppingSpec, Scenario};

#[test]
fn computed_budgets_are_never_exhausted_in_normal_operation() {
    // Quiet and jammed runs with enforced budgets: zero refusals means the
    // Lemma 11 provisioning really is sufficient.
    let params = Params::builder(64).max_round_margin(3).build().unwrap();
    for (label, budget) in [("quiet", None), ("jammed", Some(2_000u64))] {
        let mut builder = Scenario::broadcast(params.clone()).seed(3);
        if let Some(b) = budget {
            builder = builder.adversary(StrategySpec::Continuous).carol_budget(b);
        }
        let outcome = builder.build().unwrap().run();
        assert_eq!(
            outcome.total_refusals(),
            0,
            "{label}: some participant hit its budget"
        );
        assert!(outcome.informed_fraction() > 0.9, "{label}");
        // Spend stays within the computed caps.
        assert!(outcome.alice_cost.total() <= params.alice_budget());
        assert!(outcome.max_node_cost.unwrap() <= params.node_budget());
    }
}

#[test]
fn starved_nodes_degrade_gracefully_not_catastrophically() {
    // Deliberately under-provision (1% of the computed budget): the engine
    // must refuse operations rather than overspend, and the run must still
    // finish without panicking.
    let params = Params::builder(32)
        .budget_scale(0.01)
        .max_round_margin(2)
        .build()
        .unwrap();
    let outcome = Scenario::broadcast(params.clone())
        .adversary(StrategySpec::Continuous)
        .carol_budget(1_000)
        .seed(4)
        .build()
        .unwrap()
        .run();
    assert!(
        outcome.total_refusals() > 0,
        "starvation must actually bite"
    );
    // Nobody overspent their (tiny) cap.
    for (i, cost) in outcome
        .broadcast
        .node_costs
        .as_ref()
        .unwrap()
        .iter()
        .enumerate()
    {
        assert!(
            cost.total() <= params.node_budget(),
            "node {i} overspent: {} > {}",
            cost.total(),
            params.node_budget()
        );
    }
}

#[test]
fn carols_pool_is_a_hard_cap_under_every_strategy() {
    let params = Params::builder(32).max_round_margin(2).build().unwrap();
    let budget = 777u64;
    for spec in StrategySpec::full_roster() {
        // Channel-aware strategies cannot target the single-channel
        // ε-BROADCAST; the cap must hold for them on the multi-channel
        // hopping protocol instead.
        let outcome = if spec.requires_channels() {
            Scenario::hopping(HoppingSpec::new(32, 4_000))
                .channels(4)
                .adversary(spec)
                .carol_budget(budget)
                .seed(5)
                .build()
                .unwrap()
                .run()
        } else {
            Scenario::broadcast(params.clone())
                .adversary(spec)
                .carol_budget(budget)
                .seed(5)
                .build()
                .unwrap()
                .run()
        };
        assert!(
            outcome.carol_spend() <= budget,
            "{}: spent {} of {budget}",
            spec.name(),
            outcome.carol_spend()
        );
    }
}

#[test]
fn unblockable_round_prediction_matches_observed_behaviour() {
    // Params::unblockable_round predicts where a continuous jammer goes
    // broke; the run must enter (at least) that round and deliver there.
    let budget = 3_000u64;
    let params = Params::builder(32).max_round_margin(6).build().unwrap();
    let predicted = params.unblockable_round(budget);
    assert!(
        predicted <= params.max_round(),
        "test setup: schedule covers it"
    );
    let outcome = Scenario::broadcast(params)
        .adversary(StrategySpec::Continuous)
        .carol_budget(budget)
        .seed(6)
        .build()
        .unwrap()
        .run();
    assert!(outcome.informed_fraction() > 0.9);
    assert!(
        outcome.rounds_entered >= predicted.saturating_sub(1),
        "delivery at round {} but Carol could block through ~{predicted}",
        outcome.rounds_entered
    );
}
