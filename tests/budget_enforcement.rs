//! Cross-crate integration: energy budgets are hard constraints — for the
//! defenders (Lemma 11's feasibility) and for Carol (the mechanism that
//! forces an unblockable round).

use evildoers::adversary::ContinuousJammer;
use evildoers::core::{run_broadcast, run_broadcast_with_report, Params, RunConfig};
use evildoers::radio::{Budget, SilentAdversary};

#[test]
fn computed_budgets_are_never_exhausted_in_normal_operation() {
    // Quiet and jammed runs with enforced budgets: zero refusals means the
    // Lemma 11 provisioning really is sufficient.
    let params = Params::builder(64).max_round_margin(3).build().unwrap();
    for (label, budget) in [("quiet", None), ("jammed", Some(2_000u64))] {
        let cfg = match budget {
            Some(b) => RunConfig::seeded(3).carol_budget(Budget::limited(b)),
            None => RunConfig::seeded(3),
        };
        let (outcome, report) = if budget.is_some() {
            run_broadcast_with_report(&params, &mut ContinuousJammer, &cfg)
        } else {
            run_broadcast_with_report(&params, &mut SilentAdversary, &cfg)
        };
        assert!(
            report.participant_refusals.iter().all(|&r| r == 0),
            "{label}: some participant hit its budget"
        );
        assert!(outcome.informed_fraction() > 0.9, "{label}");
        // Spend stays within the computed caps.
        assert!(outcome.alice_cost.total() <= params.alice_budget());
        assert!(outcome.max_node_cost.unwrap() <= params.node_budget());
    }
}

#[test]
fn starved_nodes_degrade_gracefully_not_catastrophically() {
    // Deliberately under-provision (1% of the computed budget): the engine
    // must refuse operations rather than overspend, and the run must still
    // finish without panicking.
    let params = Params::builder(32)
        .budget_scale(0.01)
        .max_round_margin(2)
        .build()
        .unwrap();
    let (outcome, report) = run_broadcast_with_report(
        &params,
        &mut ContinuousJammer,
        &RunConfig::seeded(4).carol_budget(Budget::limited(1_000)),
    );
    let refused: u64 = report.participant_refusals.iter().sum();
    assert!(refused > 0, "starvation must actually bite");
    // Nobody overspent their (tiny) cap.
    for (i, cost) in outcome.node_costs.as_ref().unwrap().iter().enumerate() {
        assert!(
            cost.total() <= params.node_budget(),
            "node {i} overspent: {} > {}",
            cost.total(),
            params.node_budget()
        );
    }
}

#[test]
fn carols_pool_is_a_hard_cap_under_every_strategy() {
    use evildoers::adversary::StrategySpec;
    let params = Params::builder(32).max_round_margin(2).build().unwrap();
    let budget = 777u64;
    for spec in StrategySpec::roster() {
        let mut carol = spec.slot_adversary(&params, 5);
        let cfg = RunConfig::seeded(5).carol_budget(Budget::limited(budget));
        let outcome = run_broadcast(&params, carol.as_mut(), &cfg);
        assert!(
            outcome.carol_spend() <= budget,
            "{}: spent {} of {budget}",
            spec.name(),
            outcome.carol_spend()
        );
    }
}

#[test]
fn unblockable_round_prediction_matches_observed_behaviour() {
    // Params::unblockable_round predicts where a continuous jammer goes
    // broke; the run must enter (at least) that round and deliver there.
    let budget = 3_000u64;
    let params = Params::builder(32).max_round_margin(6).build().unwrap();
    let predicted = params.unblockable_round(budget);
    assert!(predicted <= params.max_round(), "test setup: schedule covers it");
    let outcome = run_broadcast(
        &params,
        &mut ContinuousJammer,
        &RunConfig::seeded(6).carol_budget(Budget::limited(budget)),
    );
    assert!(outcome.informed_fraction() > 0.9);
    assert!(
        outcome.rounds_entered >= predicted.saturating_sub(1),
        "delivery at round {} but Carol could block through ~{predicted}",
        outcome.rounds_entered
    );
}
