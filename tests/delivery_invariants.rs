//! Cross-crate integration: delivery and accounting invariants of full
//! ε-BROADCAST executions on the exact engine, against every adversary.

use evildoers::adversary::StrategySpec;
use evildoers::core::{DecoyConfig, Params};
use evildoers::sim::{Scenario, ScenarioOutcome};

fn check_invariants(outcome: &ScenarioOutcome, label: &str) {
    assert_eq!(
        outcome.informed_nodes + outcome.uninformed_terminated + outcome.unterminated_nodes,
        outcome.n,
        "{label}: node states must partition the population"
    );
    let node_costs = outcome
        .broadcast
        .node_costs
        .as_ref()
        .expect("exact engine keeps per-node costs");
    assert_eq!(node_costs.len() as u64, outcome.n);
    let total: u64 = node_costs.iter().map(|c| c.total()).sum();
    assert_eq!(
        total,
        outcome.broadcast.node_total_cost.total(),
        "{label}: per-node costs must sum to the aggregate"
    );
    assert_eq!(
        outcome.broadcast.carol_cost.listens, 0,
        "{label}: Carol never pays listen charges in this model"
    );
    for (i, c) in node_costs.iter().enumerate() {
        assert_eq!(c.jams, 0, "{label}: correct node {i} cannot jam");
    }
}

#[test]
fn every_strategy_with_finite_budget_lets_the_broadcast_through() {
    let n = 32u64;
    let budget = 1_500u64;
    for spec in StrategySpec::full_roster() {
        if spec.requires_channels() {
            // Channel-aware strategies cannot target single-channel
            // ε-BROADCAST; their delivery invariants are covered by the
            // hopping-protocol tests and E11.
            continue;
        }
        let params = if spec == StrategySpec::Reactive {
            // §4.1: reactive adversaries are only covered with decoys.
            Params::builder(n)
                .max_round_margin(4)
                .decoys(DecoyConfig::recommended())
                .build()
                .unwrap()
        } else {
            Params::builder(n).max_round_margin(3).build().unwrap()
        };
        let outcome = Scenario::broadcast(params)
            .adversary(spec)
            .carol_budget(budget)
            .seed(17)
            .build()
            .unwrap()
            .run();
        check_invariants(&outcome, &spec.name());
        assert!(
            outcome.informed_fraction() > 0.9,
            "{}: informed only {}/{} (carol spent {})",
            spec.name(),
            outcome.informed_nodes,
            outcome.n,
            outcome.carol_spend()
        );
        assert!(
            outcome.carol_spend() <= budget,
            "{}: budget enforcement",
            spec.name()
        );
    }
}

#[test]
fn quiet_run_informs_everyone_and_everyone_terminates() {
    let params = Params::builder(64).build().unwrap();
    let outcome = Scenario::broadcast(params).seed(5).build().unwrap().run();
    check_invariants(&outcome, "silent");
    assert_eq!(outcome.informed_nodes, 64);
    assert_eq!(outcome.unterminated_nodes, 0);
    assert!(outcome.alice_terminated);
    assert_eq!(outcome.carol_spend(), 0);
}

#[test]
fn informed_nodes_carry_verified_message_only() {
    // A garbage-spoofing adversary cannot cause false "informed" states:
    // delivery only counts verified m. Spoof garbage into inform phases
    // with no jamming; nodes must still end informed with the true m (the
    // spoofs merely collide). This configuration (polluting_inform) is not
    // a named StrategySpec, so it exercises the lower-level scratch API a
    // custom adversary would use.
    use evildoers::core::{BroadcastSoaScratch, RunConfig};
    use evildoers::radio::Budget;

    let params = Params::builder(32).max_round_margin(3).build().unwrap();
    let schedule = evildoers::core::RoundSchedule::new(&params);
    let mut carol = evildoers::adversary::NackSpoofer::new(schedule, 0.4, 3).polluting_inform();
    let cfg = RunConfig {
        carol_budget: Budget::limited(2_000),
        enforce_correct_budgets: true,
        trace_capacity: 0,
        seed: 23,
    };
    let (outcome, _) = BroadcastSoaScratch::new().run(&params, &mut carol, &cfg);
    assert!(
        outcome.informed_fraction() > 0.9,
        "informed {}",
        outcome.informed_nodes
    );
}

#[test]
fn unlimited_continuous_jamming_blocks_everything_but_costs_forever() {
    let params = Params::builder(16).build().unwrap();
    // Unlimited carol budget is the builder default.
    let outcome = Scenario::broadcast(params)
        .adversary(StrategySpec::Continuous)
        .seed(1)
        .build()
        .unwrap()
        .run();
    check_invariants(&outcome, "unlimited-continuous");
    assert_eq!(outcome.informed_nodes, 0);
    // Nobody terminates bogusly: all-noise request phases keep everyone up.
    assert_eq!(outcome.uninformed_terminated, 0);
    assert!(!outcome.alice_terminated);
    // She paid for every slot of the schedule.
    assert_eq!(outcome.broadcast.carol_cost.jams, outcome.slots);
}
