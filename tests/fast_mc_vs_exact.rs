//! Cross-validation of the phase-level multi-channel simulator
//! (`fast_mc`): it must agree statistically with the exact slot engine —
//! same delivery, same cost scales, same budget accounting — across
//! quiet and jammed spectra at `C ∈ {1, 4}`. Both engines run through
//! the same `Scenario`, differing only in `.engine(..)`.
//!
//! Determinism fingerprints for the new engine live at the bottom
//! (slow-tests tier, like the other pinned suites).

use evildoers::adversary::StrategySpec;
use evildoers::rng::stats::RunningStats;
use evildoers::sim::{Engine, EpochHoppingSpec, HoppingSpec, Scenario};

struct Agreement {
    exact_informed: RunningStats,
    fast_informed: RunningStats,
    exact_node_cost: RunningStats,
    fast_node_cost: RunningStats,
    exact_carol: RunningStats,
    fast_carol: RunningStats,
}

fn compare(
    spec: StrategySpec,
    channels: u16,
    n: u64,
    horizon: u64,
    budget: Option<u64>,
    trials: u64,
) -> Agreement {
    let mut agg = Agreement {
        exact_informed: RunningStats::new(),
        fast_informed: RunningStats::new(),
        exact_node_cost: RunningStats::new(),
        fast_node_cost: RunningStats::new(),
        exact_carol: RunningStats::new(),
        fast_carol: RunningStats::new(),
    };
    let scenario_for = |engine: Engine| {
        let mut builder = Scenario::hopping(HoppingSpec::new(n, horizon))
            .engine(engine)
            .channels(channels)
            .adversary(spec);
        if let Some(b) = budget {
            builder = builder.carol_budget(b);
        }
        builder.build().expect("valid on both engines")
    };
    let exact = scenario_for(Engine::Exact);
    let fast = scenario_for(Engine::Fast);
    for trial in 0..trials {
        let seed = 5_000 + trial;
        let e = exact.run_seeded(seed);
        agg.exact_informed.push(e.informed_fraction());
        agg.exact_node_cost.push(e.mean_node_cost());
        agg.exact_carol.push(e.carol_spend() as f64);

        let f = fast.run_seeded(seed);
        agg.fast_informed.push(f.informed_fraction());
        agg.fast_node_cost.push(f.mean_node_cost());
        agg.fast_carol.push(f.carol_spend() as f64);
    }
    agg
}

fn assert_close(label: &str, a: f64, b: f64, rel_tol: f64, abs_tol: f64) {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1e-9);
    assert!(
        diff <= abs_tol + rel_tol * scale,
        "{label}: exact {a} vs fast {b} (diff {diff})"
    );
}

fn assert_agreement(label: &str, agg: &Agreement) {
    assert_close(
        &format!("{label}: informed fraction"),
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        &format!("{label}: mean node cost"),
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.20,
        2.0,
    );
    assert_close(
        &format!("{label}: carol spend"),
        agg.exact_carol.mean(),
        agg.fast_carol.mean(),
        0.05,
        2.0,
    );
}

#[test]
fn quiet_spectrum_agrees_at_c1() {
    let agg = compare(StrategySpec::Silent, 1, 96, 1_500, None, 5);
    assert_agreement("silent C=1", &agg);
}

#[test]
fn quiet_spectrum_agrees_at_c4() {
    let agg = compare(StrategySpec::Silent, 4, 96, 2_500, None, 5);
    assert_agreement("silent C=4", &agg);
}

#[test]
fn split_jamming_agrees_at_c1() {
    let agg = compare(StrategySpec::SplitUniform, 1, 96, 2_000, Some(1_200), 5);
    assert_agreement("split C=1", &agg);
}

#[test]
fn split_jamming_agrees_at_c4() {
    let agg = compare(StrategySpec::SplitUniform, 4, 96, 2_500, Some(2_400), 5);
    assert_agreement("split C=4", &agg);
}

#[test]
fn sweep_jamming_agrees_at_c4() {
    let agg = compare(
        StrategySpec::ChannelSweep { dwell: 8 },
        4,
        96,
        2_500,
        Some(1_500),
        5,
    );
    assert_agreement("sweep C=4", &agg);
}

#[test]
fn adaptive_jamming_agrees_at_c4() {
    let agg = compare(
        StrategySpec::Adaptive {
            window: 8,
            reactivity: 0.5,
        },
        4,
        96,
        2_500,
        Some(1_500),
        5,
    );
    // The adaptive lowering is statistical (phase-aggregated heat), so
    // the cost band is wider than for the oblivious strategies.
    assert_close(
        "adaptive C=4: informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "adaptive C=4: mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.30,
        2.0,
    );
}

/// Same cross-validation for the epoch-structured schedule: the
/// epoch-aware phase lowering (one phase per epoch, per-channel census)
/// must agree statistically with the era-2 exact engine.
fn compare_epoch(
    spec: StrategySpec,
    channels: u16,
    n: u64,
    epoch_len: u64,
    horizon: u64,
    budget: Option<u64>,
    trials: u64,
) -> Agreement {
    let mut agg = Agreement {
        exact_informed: RunningStats::new(),
        fast_informed: RunningStats::new(),
        exact_node_cost: RunningStats::new(),
        fast_node_cost: RunningStats::new(),
        exact_carol: RunningStats::new(),
        fast_carol: RunningStats::new(),
    };
    let scenario_for = |engine: Engine| {
        let mut builder = Scenario::epoch_hopping(EpochHoppingSpec::new(n, horizon, epoch_len))
            .engine(engine)
            .channels(channels)
            .adversary(spec);
        if let Some(b) = budget {
            builder = builder.carol_budget(b);
        }
        builder.build().expect("valid on both engines")
    };
    let exact = scenario_for(Engine::Exact);
    let fast = scenario_for(Engine::Fast);
    for trial in 0..trials {
        let seed = 6_000 + trial;
        let e = exact.run_seeded(seed);
        agg.exact_informed.push(e.informed_fraction());
        agg.exact_node_cost.push(e.mean_node_cost());
        agg.exact_carol.push(e.carol_spend() as f64);

        let f = fast.run_seeded(seed);
        agg.fast_informed.push(f.informed_fraction());
        agg.fast_node_cost.push(f.mean_node_cost());
        agg.fast_carol.push(f.carol_spend() as f64);
    }
    agg
}

#[test]
fn epoch_hopping_quiet_agrees_at_c1() {
    let agg = compare_epoch(StrategySpec::Silent, 1, 96, 32, 1_500, None, 5);
    assert_agreement("epoch silent C=1", &agg);
}

#[test]
fn epoch_hopping_quiet_agrees_at_c4() {
    let agg = compare_epoch(StrategySpec::Silent, 4, 96, 32, 2_500, None, 5);
    assert_agreement("epoch silent C=4", &agg);
}

#[test]
fn epoch_hopping_sweep_jamming_agrees_at_c4() {
    // The resonant dwell (= L): the configuration where the lowering's
    // evasion model has to carry the most signal.
    let agg = compare_epoch(
        StrategySpec::ChannelSweep { dwell: 32 },
        4,
        96,
        32,
        2_500,
        Some(1_500),
        5,
    );
    assert_agreement("epoch sweep C=4", &agg);
}

#[test]
fn epoch_hopping_adaptive_jamming_agrees_at_c4() {
    let agg = compare_epoch(
        StrategySpec::Adaptive {
            window: 8,
            reactivity: 0.5,
        },
        4,
        96,
        32,
        2_500,
        Some(1_500),
        5,
    );
    // As for per-slot hopping, the adaptive lowering is statistical
    // (phase-aggregated heat), so the cost band is wider.
    assert_close(
        "epoch adaptive C=4: informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "epoch adaptive C=4: mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.30,
        2.0,
    );
}

#[test]
fn fast_mc_latency_proxy_tracks_channel_count() {
    // More channels = rarer rendezvous = later full delivery. The
    // fast-engine latency proxy (rounds_entered = phase of last
    // delivery) must reproduce that ordering.
    let phase_of_full_delivery = |channels: u16| {
        Scenario::hopping(HoppingSpec::new(256, 40_000))
            .engine(Engine::Fast)
            .channels(channels)
            .seed(11)
            .build()
            .unwrap()
            .run()
            .rounds_entered
    };
    let c1 = phase_of_full_delivery(1);
    let c8 = phase_of_full_delivery(8);
    assert!(
        c8 > c1,
        "full delivery at C=8 (phase {c8}) must come later than C=1 (phase {c1})"
    );
}

#[test]
fn fast_mc_is_deterministic_by_seed_through_scenario() {
    let scenario = Scenario::hopping(HoppingSpec::new(4_096, 3_000))
        .engine(Engine::Fast)
        .channels(4)
        .adversary(StrategySpec::Adaptive {
            window: 8,
            reactivity: 0.5,
        })
        .carol_budget(2_000)
        .seed(21)
        .build()
        .unwrap();
    let a = scenario.run();
    let b = scenario.run();
    assert_eq!(a.informed_nodes, b.informed_nodes);
    assert_eq!(a.broadcast.node_total_cost, b.broadcast.node_total_cost);
    assert_eq!(a.broadcast.carol_cost, b.broadcast.carol_cost);
    assert_eq!(a.channel_stats, b.channel_stats);
    // Batch execution reproduces solo runs seed-for-seed.
    let batch = scenario.run_batch(3);
    let solo = scenario.run_seeded(batch[2].seed);
    assert_eq!(
        batch[2].broadcast.node_total_cost,
        solo.broadcast.node_total_cost
    );
    assert_eq!(batch[2].channel_stats, solo.channel_stats);
}

/// Pinned fingerprints: any change to the fast_mc engine's sampling
/// order, probability model, or budget accounting shows up here as a
/// byte-exact diff. Captured on the engine as first shipped.
#[cfg(feature = "slow-tests")]
mod fingerprints {
    use super::*;

    fn run(spec: StrategySpec, channels: u16, seed: u64) -> evildoers::sim::ScenarioOutcome {
        Scenario::hopping(HoppingSpec::new(512, 2_000))
            .engine(Engine::Fast)
            .channels(channels)
            .adversary(spec)
            .carol_budget(1_000)
            .seed(seed)
            .build()
            .unwrap()
            .run()
    }

    fn fingerprint(o: &evildoers::sim::ScenarioOutcome) -> (u64, u64, u64, u64, Vec<u64>) {
        (
            o.informed_nodes,
            o.broadcast.node_total_cost.sends,
            o.broadcast.node_total_cost.listens,
            o.carol_spend(),
            o.jam_slots_by_channel(),
        )
    }

    #[test]
    fn split_c4_fingerprint() {
        let o = run(StrategySpec::SplitUniform, 4, 77);
        assert_eq!(
            fingerprint(&o),
            (512, 1728, 66069, 1000, vec![250, 250, 250, 250]),
            "got {:?}",
            fingerprint(&o)
        );
    }

    #[test]
    fn adaptive_c4_fingerprint() {
        let o = run(
            StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            },
            4,
            77,
        );
        assert_eq!(
            fingerprint(&o),
            (512, 1958, 4017, 1000, vec![128, 250, 346, 276]),
            "got {:?}",
            fingerprint(&o)
        );
    }

    #[test]
    fn silent_c1_fingerprint() {
        let o = run(StrategySpec::Silent, 1, 77);
        assert_eq!(
            fingerprint(&o),
            (512, 1983, 1040, 0, vec![0]),
            "got {:?}",
            fingerprint(&o)
        );
    }
}
