//! Cross-validation: the phase-level fast simulator must agree
//! statistically with the exact slot engine — same delivery, same cost
//! scales — across quiet, jammed, and spoofed conditions. Both engines
//! run through the same `Scenario`, differing only in `.engine(..)`.

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::rng::stats::RunningStats;
use evildoers::sim::{Engine, Scenario};

struct Agreement {
    exact_informed: RunningStats,
    fast_informed: RunningStats,
    exact_node_cost: RunningStats,
    fast_node_cost: RunningStats,
    exact_alice: RunningStats,
    fast_alice: RunningStats,
}

fn compare(spec: StrategySpec, n: u64, budget: Option<u64>, trials: u64, margin: u32) -> Agreement {
    let params = Params::builder(n).max_round_margin(margin).build().unwrap();
    let mut agg = Agreement {
        exact_informed: RunningStats::new(),
        fast_informed: RunningStats::new(),
        exact_node_cost: RunningStats::new(),
        fast_node_cost: RunningStats::new(),
        exact_alice: RunningStats::new(),
        fast_alice: RunningStats::new(),
    };
    let scenario_for = |engine: Engine| {
        let mut builder = Scenario::broadcast(params.clone())
            .engine(engine)
            .adversary(spec);
        if let Some(b) = budget {
            builder = builder.carol_budget(b);
        }
        builder.build().expect("valid on both engines")
    };
    let exact = scenario_for(Engine::Exact);
    let fast = scenario_for(Engine::Fast);
    for trial in 0..trials {
        let seed = 1000 + trial;
        let e = exact.run_seeded(seed);
        agg.exact_informed.push(e.informed_fraction());
        agg.exact_node_cost.push(e.mean_node_cost());
        agg.exact_alice.push(e.alice_cost.total() as f64);

        let f = fast.run_seeded(seed);
        agg.fast_informed.push(f.informed_fraction());
        agg.fast_node_cost.push(f.mean_node_cost());
        agg.fast_alice.push(f.alice_cost.total() as f64);
    }
    agg
}

fn assert_close(label: &str, a: f64, b: f64, rel_tol: f64, abs_tol: f64) {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1e-9);
    assert!(
        diff <= abs_tol + rel_tol * scale,
        "{label}: exact {a} vs fast {b} (diff {diff})"
    );
}

#[test]
fn quiet_runs_agree() {
    let agg = compare(StrategySpec::Silent, 64, None, 4, 2);
    assert_close(
        "informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.02,
        0.02,
    );
    assert_close(
        "mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.25,
        2.0,
    );
    assert_close(
        "alice cost",
        agg.exact_alice.mean(),
        agg.fast_alice.mean(),
        0.25,
        10.0,
    );
}

#[test]
fn continuous_jamming_agrees() {
    let agg = compare(StrategySpec::Continuous, 64, Some(2_000), 4, 3);
    assert_close(
        "informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    // Costs under jamming include clamped full-phase listening; both
    // engines must land on the same scale.
    assert_close(
        "mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.3,
        5.0,
    );
    assert_close(
        "alice cost",
        agg.exact_alice.mean(),
        agg.fast_alice.mean(),
        0.3,
        20.0,
    );
}

#[test]
fn request_spoofing_agrees() {
    let agg = compare(StrategySpec::Spoof(1.0), 64, Some(3_000), 4, 3);
    assert_close(
        "informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "alice cost",
        agg.exact_alice.mean(),
        agg.fast_alice.mean(),
        0.35,
        20.0,
    );
}

#[test]
fn dissemination_blocking_agrees() {
    let agg = compare(StrategySpec::BlockDissemination(1.0), 64, Some(2_500), 4, 3);
    assert_close(
        "informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.3,
        5.0,
    );
}
