//! Cross-validation of the PR-10 phase lowerings: `Random`, `Bursty`,
//! and `LaggedReactive` now run on the phase-level hopping engine
//! (`fast_mc`), and the whole schedule-free zoo runs on the fluid tier.
//! The statistical suites here hold the new lowerings to the same bar
//! `tests/fast_mc_vs_exact.rs` set for the original zoo: same delivery,
//! same cost scales, same budget accounting as the exact slot engine at
//! `C ∈ {1, 4}`, with only `.engine(..)` differing.
//!
//! The fluid tier has no RNG at all, so its entries are exact rather
//! than statistical: pinned fingerprints plus determinism and
//! worker-invariance checks (every trial of a batch is the same
//! trajectory, no matter how it was scheduled).

use evildoers::adversary::StrategySpec;
use evildoers::rng::stats::RunningStats;
use evildoers::sim::{Engine, HoppingSpec, Scenario, ScenarioOutcome};

struct Agreement {
    exact_informed: RunningStats,
    fast_informed: RunningStats,
    exact_node_cost: RunningStats,
    fast_node_cost: RunningStats,
    exact_carol: RunningStats,
    fast_carol: RunningStats,
}

fn compare(
    spec: StrategySpec,
    channels: u16,
    n: u64,
    horizon: u64,
    budget: Option<u64>,
    trials: u64,
) -> Agreement {
    let mut agg = Agreement {
        exact_informed: RunningStats::new(),
        fast_informed: RunningStats::new(),
        exact_node_cost: RunningStats::new(),
        fast_node_cost: RunningStats::new(),
        exact_carol: RunningStats::new(),
        fast_carol: RunningStats::new(),
    };
    let scenario_for = |engine: Engine| {
        let mut builder = Scenario::hopping(HoppingSpec::new(n, horizon))
            .engine(engine)
            .channels(channels)
            .adversary(spec);
        if let Some(b) = budget {
            builder = builder.carol_budget(b);
        }
        builder.build().expect("valid on both engines")
    };
    let exact = scenario_for(Engine::Exact);
    let fast = scenario_for(Engine::Fast);
    for trial in 0..trials {
        let seed = 7_000 + trial;
        let e = exact.run_seeded(seed);
        agg.exact_informed.push(e.informed_fraction());
        agg.exact_node_cost.push(e.mean_node_cost());
        agg.exact_carol.push(e.carol_spend() as f64);

        let f = fast.run_seeded(seed);
        agg.fast_informed.push(f.informed_fraction());
        agg.fast_node_cost.push(f.mean_node_cost());
        agg.fast_carol.push(f.carol_spend() as f64);
    }
    agg
}

fn assert_close(label: &str, a: f64, b: f64, rel_tol: f64, abs_tol: f64) {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1e-9);
    assert!(
        diff <= abs_tol + rel_tol * scale,
        "{label}: exact {a} vs fast {b} (diff {diff})"
    );
}

fn assert_agreement(label: &str, agg: &Agreement) {
    assert_close(
        &format!("{label}: informed fraction"),
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        &format!("{label}: mean node cost"),
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.20,
        2.0,
    );
    assert_close(
        &format!("{label}: carol spend"),
        agg.exact_carol.mean(),
        agg.fast_carol.mean(),
        0.05,
        2.0,
    );
}

#[test]
fn random_jamming_agrees_at_c1() {
    let agg = compare(StrategySpec::Random(0.5), 1, 96, 2_000, Some(800), 5);
    assert_agreement("random(0.5) C=1", &agg);
}

#[test]
fn random_jamming_agrees_at_c4() {
    // Budget binds on both engines (the exact engine stops spending at
    // full delivery, so an unconstrained comparison would measure the
    // stopping time, not the lowering).
    let agg = compare(StrategySpec::Random(0.5), 4, 96, 2_500, Some(1_000), 5);
    assert_agreement("random(0.5) C=4", &agg);
}

#[test]
fn bursty_jamming_agrees_at_c1() {
    let agg = compare(
        StrategySpec::Bursty { burst: 64, gap: 64 },
        1,
        96,
        2_000,
        Some(1_200),
        5,
    );
    assert_agreement("bursty(64/64) C=1", &agg);
}

#[test]
fn bursty_jamming_agrees_at_c4() {
    // A burst length that straddles phase boundaries: the lowering's
    // exact interval accounting (not a density approximation) is what
    // keeps the carol tolerance this tight.
    let agg = compare(
        StrategySpec::Bursty { burst: 48, gap: 80 },
        4,
        96,
        2_500,
        Some(800),
        5,
    );
    assert_agreement("bursty(48/80) C=4", &agg);
}

#[test]
fn lagged_reactive_jamming_agrees_at_c1() {
    let agg = compare(StrategySpec::LaggedReactive, 1, 96, 2_000, Some(1_500), 5);
    // The lagged lowering is statistical (expected union-activity
    // pacing rather than per-slot detection), so the cost bands are
    // wider than for the oblivious lowerings — same policy as the
    // adaptive suite in fast_mc_vs_exact.
    assert_close(
        "lagged C=1: informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "lagged C=1: mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.30,
        2.0,
    );
    assert_close(
        "lagged C=1: carol spend",
        agg.exact_carol.mean(),
        agg.fast_carol.mean(),
        0.10,
        10.0,
    );
}

#[test]
fn lagged_reactive_jamming_agrees_at_c4() {
    let agg = compare(StrategySpec::LaggedReactive, 4, 96, 2_500, Some(2_000), 5);
    assert_close(
        "lagged C=4: informed fraction",
        agg.exact_informed.mean(),
        agg.fast_informed.mean(),
        0.05,
        0.05,
    );
    assert_close(
        "lagged C=4: mean node cost",
        agg.exact_node_cost.mean(),
        agg.fast_node_cost.mean(),
        0.30,
        2.0,
    );
    assert_close(
        "lagged C=4: carol spend",
        agg.exact_carol.mean(),
        agg.fast_carol.mean(),
        0.10,
        10.0,
    );
}

fn fingerprint(o: &ScenarioOutcome) -> (u64, u64, u64, u64, Vec<u64>) {
    (
        o.informed_nodes,
        o.broadcast.node_total_cost.sends,
        o.broadcast.node_total_cost.listens,
        o.carol_spend(),
        o.jam_slots_by_channel(),
    )
}

/// The fluid tier is deterministic by construction: the per-trial seed
/// feeds nothing, so every trial of a batch is the same trajectory and
/// scheduling can never show through.
#[test]
fn fluid_tier_is_deterministic_and_worker_invariant() {
    let build = |threads: Option<usize>| {
        let mut b = Scenario::hopping(HoppingSpec::new(4_096, 3_000))
            .engine(Engine::Fluid)
            .channels(4)
            .adversary(StrategySpec::Random(0.5))
            .carol_budget(2_000)
            .seed(11);
        if let Some(workers) = threads {
            b = b.threads(workers);
        }
        b.build().unwrap()
    };
    let scenario = build(None);
    let reference = scenario.run();
    assert_eq!(fingerprint(&scenario.run()), fingerprint(&reference));
    // Distinct seeds converge on the same expectation trajectory.
    assert_eq!(
        fingerprint(&scenario.run_seeded(999)),
        fingerprint(&reference)
    );
    for threads in [1usize, 2, 5] {
        let batch = build(Some(threads)).run_batch(4);
        assert_eq!(batch.len(), 4);
        for o in &batch {
            assert_eq!(
                fingerprint(o),
                fingerprint(&reference),
                "threads={threads}: fluid batch trial diverged"
            );
        }
    }
}

/// Pinned fluid-tier fingerprints. The engine has no RNG, so these are
/// plain runs (no slow-tests gate): any change to the recurrence, the
/// jam-thinning folds, or the rounding at the outcome boundary shows up
/// as an exact diff. Captured on the engine as first shipped.
#[test]
fn fluid_fingerprints_are_pinned() {
    let run = |spec: StrategySpec, channels: u16| {
        Scenario::hopping(HoppingSpec::new(512, 2_000))
            .engine(Engine::Fluid)
            .channels(channels)
            .adversary(spec)
            .carol_budget(1_000)
            .seed(77)
            .build()
            .unwrap()
            .run()
    };
    let silent = run(StrategySpec::Silent, 1);
    assert_eq!(
        fingerprint(&silent),
        (512, 1996, 1024, 0, vec![0]),
        "silent C=1: got {:?}",
        fingerprint(&silent)
    );
    let random = run(StrategySpec::Random(0.5), 4);
    assert_eq!(
        fingerprint(&random),
        (512, 1983, 4376, 1000, vec![1000, 0, 0, 0]),
        "random C=4: got {:?}",
        fingerprint(&random)
    );
    let lagged = run(StrategySpec::LaggedReactive, 4);
    assert_eq!(
        fingerprint(&lagged),
        (512, 1985, 3958, 1000, vec![1000, 0, 0, 0]),
        "lagged C=4: got {:?}",
        fingerprint(&lagged)
    );
}

/// Pinned fingerprints for the new fast_mc lowerings, mirroring the
/// fast_mc_vs_exact suite: any change to sampling order, the interval
/// accounting, or the pacing model is a byte-exact diff here. Captured
/// on the lowerings as first shipped.
#[cfg(feature = "slow-tests")]
mod fingerprints {
    use super::*;

    fn run(spec: StrategySpec, channels: u16, seed: u64) -> ScenarioOutcome {
        Scenario::hopping(HoppingSpec::new(512, 2_000))
            .engine(Engine::Fast)
            .channels(channels)
            .adversary(spec)
            .carol_budget(1_000)
            .seed(seed)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn random_c1_fingerprint() {
        let o = run(StrategySpec::Random(0.5), 1, 77);
        assert_eq!(
            fingerprint(&o),
            (512, 2004, 1946, 1000, vec![1000]),
            "got {:?}",
            fingerprint(&o)
        );
    }

    #[test]
    fn bursty_c4_fingerprint() {
        let o = run(StrategySpec::Bursty { burst: 64, gap: 64 }, 4, 77);
        assert_eq!(
            fingerprint(&o),
            (512, 1958, 5005, 1000, vec![1000, 0, 0, 0]),
            "got {:?}",
            fingerprint(&o)
        );
    }

    #[test]
    fn lagged_c4_fingerprint() {
        let o = run(StrategySpec::LaggedReactive, 4, 77);
        assert_eq!(
            fingerprint(&o),
            (512, 1939, 3978, 1000, vec![1000, 0, 0, 0]),
            "got {:?}",
            fingerprint(&o)
        );
    }
}
