//! Integration tests of the resident sweep service: early-stopping
//! correctness, precision monotonicity, and the cache's zero-trial
//! resubmission guarantee (in memory and across a disk round-trip).

use evildoers::sim::{HoppingSpec, NaiveSpec, StrategySpec};
use evildoers::sweep::{
    Metric, ResultCache, ScenarioSpec, StopRule, SweepConfig, SweepService, SweepSpec,
};

/// A noisy cell: jammed hopping broadcast — node cost varies per trial.
fn noisy_cell() -> ScenarioSpec {
    ScenarioSpec::hopping(HoppingSpec::new(12, 1_500))
        .channels(4)
        .adversary(StrategySpec::SplitUniform)
        .carol_budget(300)
        .seed(33)
}

/// A zero-variance cell under [`Metric::Slots`]: the naive baseline runs
/// a fixed horizon, so the slot count is a constant of the spec.
fn constant_cell() -> ScenarioSpec {
    ScenarioSpec::naive(NaiveSpec { n: 8, horizon: 400 }).seed(33)
}

fn submit_one(cell: ScenarioSpec, rule: StopRule) -> (u64, f64) {
    let service = SweepService::in_memory();
    let report = service
        .submit(&SweepSpec::new(vec![cell], rule))
        .expect("valid submission");
    let c = &report.cells[0];
    (c.trials, c.half_width(&rule))
}

#[test]
fn high_variance_cells_run_until_the_target_half_width() {
    // A moderately tight target on a noisy metric: the cell must run past
    // the first checkpoint, stop before the cap, and actually achieve the
    // requested precision.
    let loose = StopRule::new(Metric::NodeTotalCost, 1e9).trials(4, 4, 128);
    let (loose_trials, _) = submit_one(noisy_cell(), loose);
    assert_eq!(
        loose_trials, 4,
        "a loose target stops at the first checkpoint"
    );

    let (probe_trials, probe_hw) = submit_one(
        noisy_cell(),
        StopRule::new(Metric::NodeTotalCost, 0.0).trials(4, 4, 128),
    );
    assert_eq!(probe_trials, 128, "zero target runs to the cap");
    assert!(probe_hw > 0.0, "the cell really is noisy");

    // Target midway between achieved-at-min and achieved-at-cap: the rule
    // must stop strictly between the two, at or under the target.
    let (_, min_hw) = submit_one(
        noisy_cell(),
        StopRule::new(Metric::NodeTotalCost, 1e9).trials(4, 4, 128),
    );
    let target = (probe_hw + min_hw) / 2.0;
    let rule = StopRule::new(Metric::NodeTotalCost, target).trials(4, 4, 128);
    let (trials, achieved) = submit_one(noisy_cell(), rule);
    assert!(
        achieved <= target,
        "achieved half-width {achieved} must meet the target {target}"
    );
    assert!(
        trials > 4 && trials < 128,
        "expected a stop strictly between min and cap, got {trials}"
    );
}

#[test]
fn zero_variance_cells_stop_at_the_first_checkpoint() {
    let rule = StopRule::new(Metric::Slots, 1e-12).trials(4, 4, 256);
    let (trials, achieved) = submit_one(constant_cell(), rule);
    assert_eq!(
        trials, 4,
        "zero variance satisfies any target at min_trials"
    );
    assert_eq!(achieved, 0.0);
}

#[test]
fn stopped_trial_counts_are_monotone_in_the_precision_target() {
    // Tightening the target can only run a cell longer: the checkpoint
    // ladder is fixed, and hw ≤ tight ⇒ hw ≤ loose at the same checkpoint.
    let mut targets = [5_000.0f64, 500.0, 50.0, 5.0, 0.0];
    targets.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut last = 0u64;
    for &target in &targets {
        let rule = StopRule::new(Metric::NodeTotalCost, target).trials(4, 4, 64);
        let (trials, _) = submit_one(noisy_cell(), rule);
        assert!(
            trials >= last,
            "target {target}: {trials} trials, but a looser target needed {last}"
        );
        last = trials;
    }
}

#[test]
fn disk_cache_survives_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("rcb-sweep-service-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rule = StopRule::new(Metric::NodeTotalCost, 1e9).trials(4, 4, 16);
    let spec = SweepSpec::new(vec![noisy_cell(), constant_cell()], rule);

    let cold = {
        let service = SweepService::new(SweepConfig::default(), ResultCache::at_dir(&dir).unwrap());
        service.submit(&spec).unwrap()
    };
    assert!(cold.trials_executed() > 0);

    // A fresh service over the same directory: zero trials, same bits.
    let service = SweepService::new(SweepConfig::default(), ResultCache::at_dir(&dir).unwrap());
    let warm = service.submit(&spec).unwrap();
    assert_eq!(warm.trials_executed(), 0);
    assert_eq!(warm.progress.cache_hits, 2);
    for (a, b) in cold.cells.iter().zip(&warm.cells) {
        assert!(b.from_cache);
        assert_eq!(a.stats, b.stats, "{}", a.spec.label());
        assert_eq!(a.trials, b.trials);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tighter_rules_invalidate_loose_cache_entries() {
    // An entry finished under a loose rule is not good enough for a
    // tighter submission: the service must re-run and then cache the
    // longer statistics.
    let service = SweepService::in_memory();
    let loose = SweepSpec::new(
        vec![noisy_cell()],
        StopRule::new(Metric::NodeTotalCost, 1e9).trials(4, 4, 64),
    );
    let first = service.submit(&loose).unwrap();
    assert_eq!(first.cells[0].trials, 4);

    let tight = SweepSpec::new(
        vec![noisy_cell()],
        StopRule::new(Metric::NodeTotalCost, 0.0).trials(4, 4, 64),
    );
    let second = service.submit(&tight).unwrap();
    assert!(!second.cells[0].from_cache, "loose entry cannot satisfy");
    assert_eq!(second.cells[0].trials, 64);

    // And the refreshed entry now serves the tight rule from cache.
    let third = service.submit(&tight).unwrap();
    assert!(third.cells[0].from_cache);
    assert_eq!(third.trials_executed(), 0);
}
