//! Era-2 ↔ era-1 cross-validation oracle (requires `--features
//! era1-oracle`).
//!
//! The era-2 exact engine (SoA rosters, counter-based RNG,
//! sleep-skipping wakeups) deliberately draws different random streams
//! than the retired era-1 per-node state machines, so the two eras can
//! never be compared byte-for-byte. What the rewrite *must* preserve is
//! the distribution: same delivery, same cost scales, same termination
//! behaviour, for every protocol family and across the adversary zoo.
//! Era 1 is kept alive behind the `era1-oracle` feature precisely to act
//! as the reference distribution here — each test runs the same seeded
//! `Scenario` on both eras and compares per-metric means.
//!
//! Tolerances follow `fast_vs_exact.rs`: small trial counts, so the bars
//! are scale-agreement bars, not tight confidence intervals. The exact
//! per-slot semantics (phase boundaries, noisy-counter judging, relay
//! hand-off timing) are additionally covered by deterministic
//! cross-engine invariants in `rcb-core`'s era-2 unit tests.

#![cfg(feature = "era1-oracle")]

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::rng::stats::RunningStats;
use evildoers::sim::{EngineEra, EpidemicSpec, HoppingSpec, NaiveSpec, Scenario, ScenarioBuilder};

/// The same scenario built twice, differing only in the engine era.
struct Pair {
    era2: Scenario,
    era1: Scenario,
}

fn pair(make: impl Fn() -> ScenarioBuilder) -> Pair {
    Pair {
        era2: make().build().expect("era-2 build"),
        era1: make()
            .engine_era(EngineEra::Era1)
            .build()
            .expect("era-1 build"),
    }
}

/// Relative/absolute tolerance per compared metric.
struct Tol {
    informed: (f64, f64),
    node_cost: (f64, f64),
    alice: (f64, f64),
    slots: (f64, f64),
}

impl Tol {
    /// Scale-agreement bars for jammed / adversarial runs.
    fn jammed() -> Self {
        Tol {
            informed: (0.05, 0.05),
            node_cost: (0.3, 5.0),
            alice: (0.35, 20.0),
            slots: (0.25, 50.0),
        }
    }

    /// Tighter bars for quiet runs, where both eras terminate at the
    /// same deterministic round boundary almost surely.
    fn quiet() -> Self {
        Tol {
            informed: (0.02, 0.02),
            node_cost: (0.25, 2.0),
            alice: (0.25, 10.0),
            slots: (0.1, 10.0),
        }
    }
}

fn assert_close(label: &str, metric: &str, a: f64, b: f64, (rel, abs): (f64, f64)) {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1e-9);
    assert!(
        diff <= abs + rel * scale,
        "{label}/{metric}: era2 {a} vs era1 {b} (diff {diff})"
    );
}

/// Run `trials` paired trials (same derived seeds on both eras) and
/// assert per-metric mean agreement.
fn compare(label: &str, p: &Pair, trials: u64, tol: &Tol) {
    let mut m: [[RunningStats; 4]; 2] = Default::default();
    for trial in 0..trials {
        let seed = 1_000 + trial;
        for (era, outcome) in [(0, p.era2.run_seeded(seed)), (1, p.era1.run_seeded(seed))] {
            m[era][0].push(outcome.informed_fraction());
            m[era][1].push(outcome.mean_node_cost());
            m[era][2].push(outcome.alice_cost.total() as f64);
            m[era][3].push(outcome.slots as f64);
        }
    }
    let names = ["informed fraction", "mean node cost", "alice cost", "slots"];
    let tols = [tol.informed, tol.node_cost, tol.alice, tol.slots];
    for i in 0..4 {
        assert_close(label, names[i], m[0][i].mean(), m[1][i].mean(), tols[i]);
    }
}

fn broadcast_pair(n: u64, spec: StrategySpec, budget: Option<u64>, margin: u32) -> Pair {
    pair(move || {
        let params = Params::builder(n).max_round_margin(margin).build().unwrap();
        let mut b = Scenario::broadcast(params).adversary(spec);
        if let Some(budget) = budget {
            b = b.carol_budget(budget);
        }
        b
    })
}

#[test]
fn broadcast_quiet_agrees_at_n256() {
    let p = broadcast_pair(256, StrategySpec::Silent, None, 2);
    compare("broadcast/silent/n256", &p, 4, &Tol::quiet());
}

#[test]
fn broadcast_adversary_zoo_agrees_at_n256() {
    for (spec, budget) in [
        (StrategySpec::Continuous, 4_000),
        (StrategySpec::Random(0.5), 4_000),
        (StrategySpec::Spoof(1.0), 6_000),
        (StrategySpec::LaggedReactive, 3_000),
        (StrategySpec::Extract(8), 6_000),
    ] {
        let p = broadcast_pair(256, spec, Some(budget), 3);
        compare(
            &format!("broadcast/{}/n256", spec.name()),
            &p,
            3,
            &Tol::jammed(),
        );
    }
}

#[test]
fn broadcast_agrees_at_n1024() {
    let quiet = broadcast_pair(1 << 10, StrategySpec::Silent, None, 2);
    compare("broadcast/silent/n1024", &quiet, 3, &Tol::quiet());
    let jammed = broadcast_pair(1 << 10, StrategySpec::Continuous, Some(10_000), 3);
    compare("broadcast/continuous/n1024", &jammed, 3, &Tol::jammed());
}

#[cfg(feature = "slow-tests")]
#[test]
fn broadcast_agrees_at_n4096() {
    // The top of the E13-style grid: the sleep-skipping engine's target
    // size. Era 1 is the slow side here, so trials stay minimal.
    let p = broadcast_pair(1 << 12, StrategySpec::Silent, None, 2);
    compare("broadcast/silent/n4096", &p, 2, &Tol::quiet());
}

fn hopping_pair(n: u64, channels: u16, spec: StrategySpec, budget: u64) -> Pair {
    pair(move || {
        Scenario::hopping(HoppingSpec::new(n, 6_000))
            .channels(channels)
            .adversary(spec)
            .carol_budget(budget)
    })
}

#[test]
fn hopping_zoo_agrees_across_channel_counts() {
    for channels in [1u16, 4] {
        for spec in [
            StrategySpec::SplitUniform,
            StrategySpec::ChannelSweep { dwell: 5 },
            StrategySpec::ChannelLagged,
            StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            },
        ] {
            let p = hopping_pair(256, channels, spec, 1_500);
            compare(
                &format!("hopping-c{channels}/{}/n256", spec.name()),
                &p,
                3,
                &Tol::jammed(),
            );
        }
    }
}

#[test]
fn naive_baseline_agrees() {
    let p = pair(|| {
        Scenario::naive(NaiveSpec {
            n: 64,
            horizon: 2_000,
        })
        .adversary(StrategySpec::Random(0.5))
        .carol_budget(600)
    });
    compare("naive/random", &p, 3, &Tol::jammed());
}

#[test]
fn epidemic_baseline_agrees() {
    let p = pair(|| {
        Scenario::epidemic(EpidemicSpec::new(64, 3_000))
            .adversary(StrategySpec::Bursty { burst: 16, gap: 16 })
            .carol_budget(800)
    });
    compare("epidemic/bursty", &p, 3, &Tol::jammed());
}

#[test]
fn both_eras_replay_bit_for_bit_and_draw_distinct_streams() {
    // Era selection must not leak nondeterminism, and the era bump must
    // be real: the two engines draw different random streams, which is
    // exactly why `rcb-sweep`'s `ENGINE_ERA` had to change.
    let p = broadcast_pair(64, StrategySpec::Continuous, Some(1_500), 3);
    for (label, scenario) in [("era2", &p.era2), ("era1", &p.era1)] {
        let a = scenario.run_seeded(9);
        let b = scenario.run_seeded(9);
        assert_eq!(a.slots, b.slots, "{label} replay");
        assert_eq!(a.alice_cost, b.alice_cost, "{label} replay");
        assert_eq!(
            a.broadcast.node_total_cost, b.broadcast.node_total_cost,
            "{label} replay"
        );
    }
    let e2 = p.era2.run_seeded(9);
    let e1 = p.era1.run_seeded(9);
    assert!(
        (
            e2.slots,
            e2.alice_cost.total(),
            e2.broadcast.node_total_cost.total()
        ) != (
            e1.slots,
            e1.alice_cost.total(),
            e1.broadcast.node_total_cost.total()
        ),
        "eras should draw distinct random streams"
    );
}
