//! The `C = 1` equivalence guarantee, pinned against era-scoped
//! fingerprints.
//!
//! Every expected value in this file was captured at the introduction of
//! **engine era 2** (SoA rosters, counter-based RNG, sleep-skipping —
//! the same bump that swapped the vendored `rand` and re-keyed
//! `rcb-sweep`'s `ENGINE_ERA`). Within an era these pins are frozen: a
//! failing assertion means the seeded outcome streams drifted without an
//! era bump, which is a correctness regression, not a baseline to
//! refresh. A deliberate era bump recaptures the whole file at once.
//!
//! Era-independent *structural* invariants ride along and survive any
//! re-pinning: `channels(1)` is byte-identical to the implicit
//! single-channel default, per-channel accounting reconciles with the
//! pooled totals, and at `C = 1` the adaptive jammer degenerates to the
//! single-channel lagged jammer bit-for-bit.
//!
//! A second family of fingerprints pins the *adversary* behaviour of the
//! channel-aware strategies (`Adaptive`, `ChannelLagged`) at fixed seeds,
//! captured when the adaptive adversary subsystem was introduced: future
//! refactors of the adversary stack cannot silently change what these
//! jammers do.
//!
//! This file is part of the `slow-tests` tier (on by default; CI's fast
//! lane skips it with `--no-default-features`).

#![cfg(feature = "slow-tests")]

use evildoers::adversary::StrategySpec;
use evildoers::core::Params;
use evildoers::radio::CostBreakdown;
use evildoers::sim::{
    Engine, EpidemicSpec, HoppingSpec, KsySpec, NaiveSpec, Scenario, ScenarioOutcome,
};

/// One pre-refactor outcome fingerprint.
struct Fingerprint {
    slots: u64,
    informed: u64,
    alice: (u64, u64, u64),
    nodes: (u64, u64, u64),
    carol: (u64, u64, u64),
    max_node: Option<u64>,
    rounds: u32,
}

fn assert_fingerprint(label: &str, outcome: &ScenarioOutcome, expected: &Fingerprint) {
    let cost = |(sends, listens, jams): (u64, u64, u64)| CostBreakdown {
        sends,
        listens,
        jams,
    };
    assert_eq!(outcome.slots, expected.slots, "{label}: slots");
    assert_eq!(
        outcome.informed_nodes, expected.informed,
        "{label}: informed"
    );
    assert_eq!(
        outcome.alice_cost,
        cost(expected.alice),
        "{label}: alice cost"
    );
    assert_eq!(
        outcome.node_total_cost,
        cost(expected.nodes),
        "{label}: node cost"
    );
    assert_eq!(
        outcome.carol_cost,
        cost(expected.carol),
        "{label}: carol cost"
    );
    assert_eq!(
        outcome.max_node_cost, expected.max_node,
        "{label}: max node"
    );
    assert_eq!(outcome.rounds_entered, expected.rounds, "{label}: rounds");
}

fn params(n: u64) -> Params {
    Params::builder(n).build().unwrap()
}

#[test]
fn broadcast_exact_matches_pre_refactor_continuous() {
    let outcome = Scenario::broadcast(params(48))
        .channels(1)
        .adversary(StrategySpec::Continuous)
        .carol_budget(1_500)
        .seed(42)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "continuous",
        &outcome,
        &Fingerprint {
            slots: 6724,
            informed: 48,
            alice: (1425, 1069, 0),
            nodes: (2260, 86755, 0),
            carol: (0, 0, 1500),
            max_node: Some(1888),
            rounds: 8,
        },
    );
    // The per-channel accounting reconciles with the pooled totals.
    let stats = outcome.channel_stats.as_ref().unwrap();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].jammed_slots, 1500);
    assert_eq!(stats[0].correct_sends, 1425 + 2260);
    assert_eq!(stats[0].correct_listens, 1069 + 86755);
}

#[test]
fn broadcast_exact_matches_pre_refactor_lagged_reactive() {
    let outcome = Scenario::broadcast(params(48))
        .channels(1)
        .adversary(StrategySpec::LaggedReactive)
        .carol_budget(800)
        .seed(7)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "lagged",
        &outcome,
        &Fingerprint {
            slots: 2377,
            informed: 48,
            alice: (752, 661, 0),
            nodes: (2, 48, 0),
            carol: (0, 0, 754),
            max_node: Some(2),
            rounds: 7,
        },
    );
}

#[test]
fn broadcast_exact_matches_pre_refactor_n_uniform_extraction() {
    let outcome = Scenario::broadcast(params(48))
        .channels(1)
        .adversary(StrategySpec::Extract(5))
        .carol_budget(3_000)
        .seed(11)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "extract",
        &outcome,
        &Fingerprint {
            slots: 6724,
            informed: 48,
            alice: (1423, 1081, 0),
            nodes: (2029, 138635, 0),
            carol: (0, 0, 3000),
            max_node: Some(3309),
            rounds: 8,
        },
    );
}

#[test]
fn broadcast_exact_matches_pre_refactor_spoofing() {
    let outcome = Scenario::broadcast(params(48))
        .channels(1)
        .adversary(StrategySpec::Spoof(1.0))
        .carol_budget(2_000)
        .seed(13)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "spoof",
        &outcome,
        &Fingerprint {
            slots: 19012,
            informed: 48,
            alice: (2398, 1451, 0),
            nodes: (6, 48, 0),
            carol: (2000, 0, 0),
            max_node: Some(2),
            rounds: 8,
        },
    );
}

#[test]
fn broadcast_fast_matches_pre_refactor_random_jamming() {
    let outcome = Scenario::broadcast(params(1 << 12))
        .engine(Engine::Fast)
        .channels(1)
        .adversary(StrategySpec::Random(0.4))
        .carol_budget(5_000)
        .seed(21)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "fast-random",
        &outcome,
        &Fingerprint {
            slots: 152073,
            informed: 4096,
            alice: (21513, 4154, 0),
            nodes: (9, 57344, 0),
            carol: (0, 0, 5000),
            max_node: None,
            rounds: 10,
        },
    );
}

#[test]
fn naive_baseline_matches_pre_refactor_bursty_jamming() {
    let outcome = Scenario::naive(NaiveSpec { n: 8, horizon: 400 })
        .channels(1)
        .adversary(StrategySpec::Bursty { burst: 16, gap: 16 })
        .carol_budget(150)
        .seed(5)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "naive-bursty",
        &outcome,
        &Fingerprint {
            slots: 401,
            informed: 8,
            alice: (400, 0, 0),
            nodes: (0, 136, 0),
            carol: (0, 0, 150),
            max_node: Some(17),
            rounds: 0,
        },
    );
}

#[test]
fn epidemic_baseline_matches_pre_refactor_random_jamming() {
    let outcome = Scenario::epidemic(EpidemicSpec::new(16, 3_000))
        .channels(1)
        .adversary(StrategySpec::Random(0.5))
        .carol_budget(700)
        .seed(3)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "epidemic-random",
        &outcome,
        &Fingerprint {
            slots: 3001,
            informed: 16,
            alice: (1514, 0, 0),
            nodes: (3009, 180, 0),
            carol: (0, 0, 700),
            max_node: Some(221),
            rounds: 0,
        },
    );
}

#[test]
fn ksy_matches_pre_refactor_continuous_jamming() {
    let outcome = Scenario::ksy(KsySpec::default())
        .channels(1)
        .adversary(StrategySpec::Continuous)
        .carol_budget(9_000)
        .seed(2)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "ksy-continuous",
        &outcome,
        &Fingerprint {
            slots: 14345,
            informed: 1,
            alice: (757, 0, 0),
            nodes: (0, 703, 0),
            carol: (0, 0, 9000),
            max_node: Some(703),
            rounds: 13,
        },
    );
}

fn hopping_outcome(spec: StrategySpec, channels: u16, budget: u64, seed: u64) -> ScenarioOutcome {
    Scenario::hopping(HoppingSpec::new(24, 6_000))
        .channels(channels)
        .adversary(spec)
        .carol_budget(budget)
        .seed(seed)
        .build()
        .unwrap()
        .run()
}

#[test]
fn hopping_c4_adaptive_matches_pinned_fingerprint() {
    let outcome = hopping_outcome(
        StrategySpec::Adaptive {
            window: 8,
            reactivity: 0.5,
        },
        4,
        1_200,
        77,
    );
    assert_fingerprint(
        "hopping-adaptive-c4",
        &outcome,
        &Fingerprint {
            slots: 6001,
            informed: 24,
            alice: (3049, 0, 0),
            nodes: (6035, 131, 0),
            carol: (0, 0, 1200),
            max_node: Some(284),
            rounds: 0,
        },
    );
    assert_eq!(
        outcome.jam_slots_by_channel(),
        vec![287, 310, 284, 319],
        "the adaptive jam split over channels is pinned"
    );
}

#[test]
fn hopping_c4_channel_lagged_matches_pinned_fingerprint() {
    let outcome = hopping_outcome(StrategySpec::ChannelLagged, 4, 1_200, 77);
    assert_fingerprint(
        "hopping-lagged-c4",
        &outcome,
        &Fingerprint {
            slots: 6001,
            informed: 24,
            alice: (3049, 0, 0),
            nodes: (6030, 135, 0),
            carol: (0, 0, 1200),
            max_node: Some(284),
            rounds: 0,
        },
    );
    assert_eq!(outcome.jam_slots_by_channel(), vec![287, 307, 289, 317]);
}

#[test]
fn devirtualized_path_reproduces_pinned_fingerprints_under_scratch_reuse() {
    // The engine-hot-path overhaul (typed enum rosters on the
    // monomorphized slot loop, active-set compaction, per-worker
    // EngineScratch reuse, single-thread batch override) must be
    // invisible: repeated runs through ONE ScenarioScratch, and a
    // threads(1) run_batch, all land on the exact fingerprints pinned
    // when the adversary subsystem was introduced — across protocol ×
    // adversary × C ∈ {1, 4}.
    use evildoers::sim::ScenarioScratch;
    let adaptive_c4 = Scenario::hopping(HoppingSpec::new(24, 6_000))
        .channels(4)
        .adversary(StrategySpec::Adaptive {
            window: 8,
            reactivity: 0.5,
        })
        .carol_budget(1_200)
        .seed(77)
        .threads(1)
        .build()
        .unwrap();
    let lagged_c4 = Scenario::hopping(HoppingSpec::new(24, 6_000))
        .channels(4)
        .adversary(StrategySpec::ChannelLagged)
        .carol_budget(1_200)
        .seed(77)
        .build()
        .unwrap();
    let continuous_c1 = Scenario::broadcast(params(48))
        .channels(1)
        .adversary(StrategySpec::Continuous)
        .carol_budget(1_500)
        .seed(42)
        .build()
        .unwrap();

    let expected_adaptive = Fingerprint {
        slots: 6001,
        informed: 24,
        alice: (3049, 0, 0),
        nodes: (6035, 131, 0),
        carol: (0, 0, 1200),
        max_node: Some(284),
        rounds: 0,
    };
    let expected_lagged = Fingerprint {
        slots: 6001,
        informed: 24,
        alice: (3049, 0, 0),
        nodes: (6030, 135, 0),
        carol: (0, 0, 1200),
        max_node: Some(284),
        rounds: 0,
    };
    let expected_continuous = Fingerprint {
        slots: 6724,
        informed: 48,
        alice: (1425, 1069, 0),
        nodes: (2260, 86755, 0),
        carol: (0, 0, 1500),
        max_node: Some(1888),
        rounds: 8,
    };

    // One shared scratch, interleaving spectra and protocol families,
    // two passes: reuse must not drift.
    let mut scratch = ScenarioScratch::new();
    for pass in 0..2 {
        let label = |name: &str| format!("{name} (scratch pass {pass})");
        let outcome = adaptive_c4.run_in(&mut scratch, 77);
        assert_fingerprint(&label("adaptive-c4"), &outcome, &expected_adaptive);
        assert_eq!(outcome.jam_slots_by_channel(), vec![287, 310, 284, 319]);
        let outcome = continuous_c1.run_in(&mut scratch, 42);
        assert_fingerprint(&label("continuous-c1"), &outcome, &expected_continuous);
        let outcome = lagged_c4.run_in(&mut scratch, 77);
        assert_fingerprint(&label("lagged-c4"), &outcome, &expected_lagged);
    }

    // Single-threaded batch execution: same worker scratch across both
    // trials, same fingerprint (trial 0's derived seed differs from the
    // master-seed run, so pin via two identical scenarios instead).
    let batch = adaptive_c4.run_batch(2);
    assert_eq!(batch.len(), 2);
    for (i, outcome) in batch.iter().enumerate() {
        let reference = adaptive_c4.run_seeded(outcome.seed);
        assert_fingerprint(
            &format!("adaptive-c4 batch[{i}]"),
            outcome,
            &Fingerprint {
                slots: reference.slots,
                informed: reference.informed_nodes,
                alice: (
                    reference.alice_cost.sends,
                    reference.alice_cost.listens,
                    reference.alice_cost.jams,
                ),
                nodes: (
                    reference.node_total_cost.sends,
                    reference.node_total_cost.listens,
                    reference.node_total_cost.jams,
                ),
                carol: (
                    reference.carol_cost.sends,
                    reference.carol_cost.listens,
                    reference.carol_cost.jams,
                ),
                max_node: reference.max_node_cost,
                rounds: reference.rounds_entered,
            },
        );
        assert_eq!(
            outcome.broadcast.node_costs, reference.broadcast.node_costs,
            "batch[{i}] per-node costs must match the solo replay"
        );
    }
}

#[test]
fn hopping_c1_adaptive_is_byte_identical_to_lagged_jammer() {
    // The degeneracy acceptance bound: at C = 1 with matched seeds the
    // adaptive jammer *is* the single-channel LaggedJammer. Both runs
    // must land on this pinned fingerprint — equal to each other and to
    // the value captured when the adaptive subsystem was introduced.
    let expected = Fingerprint {
        slots: 6001,
        informed: 24,
        alice: (2967, 0, 0),
        nodes: (5990, 155, 0),
        carol: (0, 0, 600),
        max_node: Some(283),
        rounds: 0,
    };
    let adaptive = hopping_outcome(
        StrategySpec::Adaptive {
            window: 1,
            reactivity: 1.0,
        },
        1,
        600,
        31,
    );
    let lagged = hopping_outcome(StrategySpec::LaggedReactive, 1, 600, 31);
    assert_fingerprint("hopping-adaptive-c1", &adaptive, &expected);
    assert_fingerprint("hopping-lagged-c1", &lagged, &expected);
    assert_eq!(adaptive.broadcast.node_costs, lagged.broadcast.node_costs);
    assert_eq!(adaptive.jam_slots_by_channel(), vec![600]);
    assert_eq!(lagged.jam_slots_by_channel(), vec![600]);
}

#[test]
fn batched_trials_match_pre_refactor_seed_derivation() {
    let scenario = Scenario::broadcast(params(32))
        .channels(1)
        .adversary(StrategySpec::Continuous)
        .carol_budget(900)
        .seed(99)
        .build()
        .unwrap();
    let batch = scenario.run_batch(4);
    assert_fingerprint(
        "batch[3]",
        &batch[3],
        &Fingerprint {
            slots: 2377,
            informed: 32,
            alice: (663, 645, 0),
            nodes: (810, 24181, 0),
            carol: (0, 0, 900),
            max_node: Some(799),
            rounds: 7,
        },
    );
}

#[test]
fn epoch_hopping_c4_sweep_matches_pinned_fingerprint() {
    // The epoch-structured schedule under its resonant sweeper
    // (dwell = L = 32): captured when the family was introduced, on the
    // era-2 exact engine.
    use evildoers::sim::EpochHoppingSpec;
    let outcome = Scenario::epoch_hopping(EpochHoppingSpec::new(24, 6_000, 32))
        .channels(4)
        .adversary(StrategySpec::ChannelSweep { dwell: 32 })
        .carol_budget(1_200)
        .seed(77)
        .build()
        .unwrap()
        .run();
    assert_fingerprint(
        "epoch-hopping-sweep-c4",
        &outcome,
        &Fingerprint {
            slots: 6001,
            informed: 24,
            alice: (3017, 0, 0),
            nodes: (6034, 470, 0),
            carol: (0, 0, 1200),
            max_node: Some(318),
            rounds: 0,
        },
    );
    assert_eq!(
        outcome.jam_slots_by_channel(),
        vec![320, 304, 288, 288],
        "the epoch-aligned sweep burns exactly dwell slots per channel visit"
    );
}

#[test]
fn kpsy_continuous_matches_pinned_fingerprint() {
    // The KPSY listening defense under continuous jamming — the family's
    // single-channel pin (the roster rejects C > 1 at build time), in
    // the same configuration budget-conservation tests run at.
    use evildoers::sim::KpsySpec;
    let outcome = Scenario::kpsy(KpsySpec {
        n: 12,
        horizon: 2_000,
    })
    .adversary(StrategySpec::Continuous)
    .carol_budget(600)
    .seed(31)
    .build()
    .unwrap()
    .run();
    assert_fingerprint(
        "kpsy-continuous",
        &outcome,
        &Fingerprint {
            slots: 2001,
            informed: 12,
            alice: (205, 0, 0),
            nodes: (828, 1292, 0),
            carol: (0, 0, 600),
            max_node: Some(193),
            rounds: 0,
        },
    );
    assert_eq!(outcome.jam_slots_by_channel(), vec![600]);
}

#[test]
fn epoch_hopping_slow_sweep_resonates_at_dwell_equal_to_epoch_length() {
    // The headline slow-lane claim from E17, pinned as a strict seeded
    // inequality: a sweeping jammer whose dwell equals the epoch length
    // L retunes exactly when the evaders do, and the noise-exclusion
    // redraw herds them *toward* its next target. Delivery drags, and
    // since uninformed nodes pay `listen_p` per slot until informed,
    // mean node cost — the latency integral — is strictly worse at
    // dwell = L than at dwell = L/4 (part-epoch jams barely delay
    // within-epoch rendezvous) or dwell = 4L (nodes evacuate the jammed
    // channel and stay out for epochs).
    use evildoers::sim::EpochHoppingSpec;
    const L: u64 = 32;
    let mean_cost = |dwell: u64| -> f64 {
        let outcomes = Scenario::epoch_hopping(EpochHoppingSpec::new(24, 48 * L, L))
            .channels(4)
            .adversary(StrategySpec::ChannelSweep { dwell })
            .carol_budget(48 * L)
            .seed(0xE17)
            .build()
            .unwrap()
            .run_batch(16);
        outcomes.iter().map(|o| o.mean_node_cost()).sum::<f64>() / outcomes.len() as f64
    };
    let short = mean_cost(L / 4);
    let resonant = mean_cost(L);
    let long = mean_cost(4 * L);
    assert!(
        resonant > short,
        "dwell = L ({resonant:.1}) must cost strictly more than dwell = L/4 ({short:.1})"
    );
    assert!(
        resonant > long,
        "dwell = L ({resonant:.1}) must cost strictly more than dwell = 4L ({long:.1})"
    );
}
