//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its value types with
//! `#[derive(Serialize, Deserialize)]` so that experiment archiving can be
//! wired up once a real serde is available. Nothing in the workspace
//! performs actual serialisation yet, so these derives emit marker-trait
//! impls only (see `vendor/serde`): the attribute stays, the API contract
//! stays, and swapping in the real crates later is a manifest-only change.

use proc_macro::TokenStream;

/// Extracts the type name following `struct`/`enum` and its generics arity
/// being zero-or-simple; good enough for the plain value types this
/// workspace derives on (no generics are used on any serde-annotated type).
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tok) = tokens.next() {
        let text = tok.to_string();
        if text == "struct" || text == "enum" {
            return tokens.next().map(|t| t.to_string());
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// No-op `Serialize` derive: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `Deserialize` derive: emits `impl serde::Deserialize<'_> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'static>")
}
