//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — as a small, honest wall-clock harness:
//!
//! * each benchmark is warmed up briefly, then timed over enough
//!   iterations to fill a fixed measurement window;
//! * the per-iteration mean and (when a throughput is declared) the
//!   element rate are printed to stdout.
//!
//! There is no statistical analysis, outlier rejection, or plotting. The
//! numbers are comparable run-to-run on the same machine, which is what
//! the workspace's perf-baseline benches need.
//!
//! Like the real criterion, `cargo bench -- --test` runs every benchmark
//! in **test mode**: a single un-timed iteration per benchmark, enough to
//! catch bench bitrot in CI without paying for measurement windows.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark measures for (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Declared workload size, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing context passed to the closure under test.
pub struct Bencher {
    total: Duration,
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, first warming up, then iterating until the measurement
    /// window is filled. In test mode (`--test`), runs `f` exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(f());
            self.total = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warm-up: also estimates a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32);
        let batch = per_iter
            .map(|p| {
                if p.is_zero() {
                    1024
                } else {
                    (MEASURE_WINDOW.as_nanos() / p.as_nanos().max(1)).clamp(1, 1 << 24) as u64
                }
            })
            .unwrap_or(1);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = batch;
    }
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the process arguments: `--test` selects test mode (one
    /// un-timed iteration per benchmark), mirroring
    /// `cargo bench -- --test` on the real criterion.
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("{label:<50} ok (test mode: 1 iteration)");
        return;
    }
    if bencher.iters == 0 {
        println!("{label:<50} (no iterations measured)");
        return;
    }
    let per_iter = bencher.total / bencher.iters as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * bencher.iters as f64 / bencher.total.as_secs_f64();
            format!("  [{per_sec:.1} elem/s]")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * bencher.iters as f64 / bencher.total.as_secs_f64();
            format!("  [{:.1} MiB/s]", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{label:<50} {:>12}/iter  ({} iters){rate}",
        format_duration(per_iter),
        bencher.iters
    );
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n# group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, self.test_mode, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes measurement by
    /// wall-clock window, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration workload for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.test_mode, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Defines a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
