//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte container. Two
//! representations cover the workspace's needs — a zero-copy borrow of
//! `'static` data and an `Arc`-shared heap buffer — so clones never copy
//! the underlying bytes, matching the real crate's behaviour for the
//! operations used here.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Zero-copy view of static data.
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Zero-copy construction from static data.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::Static(bytes)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(v.into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::Static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_equality_and_clone_sharing() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![b'a', b'b', b'c']);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn deref_gives_slice_ops() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(&a[1..3], b"el");
    }
}
