//! Offline stand-in for `serde`.
//!
//! Provides marker [`Serialize`] / [`Deserialize`] traits and re-exports
//! the no-op derives from `serde_derive`, so workspace types keep their
//! annotations and downstream code can bound on the traits. No actual
//! serialisation is implemented — nothing in the workspace serialises yet.
//! When a real registry is available, replace the path dependencies with
//! crates.io `serde = { version = "1", features = ["derive"] }` and
//! everything keeps compiling.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

// Blanket-free impls for common std types so derived containers holding
// them remain well-formed if bounds are ever added.
macro_rules! markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
