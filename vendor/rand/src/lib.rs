//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides exactly the trait surface the workspace
//! uses — [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_bool`, and `gen_range` — with semantics compatible
//! with `rand 0.8` for those operations.
//!
//! The simulator pins its own generator (`rcb-rng`'s xoshiro256++) and
//! overrides `seed_from_u64`, but protocol decisions *do* flow through
//! this crate's conversion helpers (`gen_bool`, `gen_range`, `f64` in
//! `[0, 1)`). `gen_bool` and `f64` match `rand 0.8` bit-for-bit;
//! `gen_range` is unbiased Lemire sampling but always consumes one
//! `next_u64` per draw, whereas `rand 0.8` width-matches sub-64-bit
//! ranges (a `u32` range consumes 32 bits). **Swapping this stub for
//! crates.io `rand` therefore shifts seeded simulation streams at
//! `gen_range` call sites** — results stay statistically equivalent, but
//! previously recorded `(seed → outcome)` pairs will not replay
//! identically. Treat the swap as a stream-breaking change and re-baseline
//! archived experiment numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (infallible in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`fill_bytes`](Self::fill_bytes); never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it SplitMix64-style
    /// (the same expansion `rand 0.8` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    /// Integer types usable with [`Rng::gen_range`](super::Rng::gen_range).
    pub trait RangeInt: Copy + PartialOrd {
        fn to_u64(self) -> u64;
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl RangeInt for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize);
}

use sealed::RangeInt;

/// A half-open or inclusive integer range that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply with rejection
/// (Lemire's method — unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 0 {
        return 0;
    }
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected: resample to stay unbiased.
    }
}

impl<T: RangeInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: RangeInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand 0.8`
    /// `Standard` algorithm).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let fraction = rng.next_u32() >> 8;
        fraction as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli trial: returns `true` with probability `p`.
    ///
    /// Implemented as a 64-bit integer threshold comparison (the `rand
    /// 0.8` `Bernoulli` algorithm): exact for `p ≥ 1`, never true for
    /// `p ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or negative.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(p >= 0.0, "gen_bool requires a probability, got {p}");
        if p >= 1.0 {
            return true;
        }
        // p ∈ [0, 1): scale to a 64-bit threshold.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for the tests below.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn f64_stays_in_unit_interval_with_correct_mean() {
        let mut rng = SplitMix(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 20_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_edges_and_frequency() {
        let mut rng = SplitMix(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SplitMix(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..6);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix(4);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    fn uniform_below_is_unbiased_at_small_spans() {
        let mut rng = SplitMix(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn seed_from_u64_expansion_is_deterministic() {
        struct Raw([u8; 32]);
        impl SeedableRng for Raw {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Raw(seed)
            }
        }
        let a = Raw::seed_from_u64(7);
        let b = Raw::seed_from_u64(7);
        let c = Raw::seed_from_u64(8);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }
}
