//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides exactly the trait surface the workspace
//! uses — [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_bool`, and `gen_range` — with semantics compatible
//! with `rand 0.8` for those operations.
//!
//! The simulator pins its own generator (`rcb-rng`'s xoshiro256++) and
//! overrides `seed_from_u64`, but protocol decisions *do* flow through
//! this crate's conversion helpers (`gen_bool`, `gen_range`, `f64` in
//! `[0, 1)`). All of them match `rand 0.8.5` bit-for-bit: `gen_bool`
//! is the 64-bit integer-threshold Bernoulli, `f64` is the 53-bit
//! `Standard` conversion, and `gen_range` is the width-matched
//! `sample_single_inclusive` algorithm (a `u8`/`u16`/`u32` range
//! consumes one `next_u32`, a `u64`/`usize` range one `next_u64`, with
//! the same zone computation and widening-multiply acceptance test).
//! Swapping this stub for crates.io `rand 0.8.5` therefore preserves
//! seeded simulation streams at every call site the workspace uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (infallible in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`fill_bytes`](Self::fill_bytes); never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it SplitMix64-style
    /// (the same expansion `rand 0.8` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    use super::RngCore;

    /// Integer types usable with [`Rng::gen_range`](super::Rng::gen_range).
    ///
    /// Each type carries the `rand 0.8.5` `uniform_int_impl` width class:
    /// `u8`/`u16`/`u32` sample via a `u32` draw (one `next_u32`),
    /// `u64`/`usize` via a `u64` draw (one `next_u64`).
    pub trait RangeInt: Copy + PartialOrd {
        /// Uniform sample from `low..=high` — `rand 0.8.5`'s
        /// `sample_single_inclusive`, bit-for-bit.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// `self - 1` (callers guarantee `self > 0`): lowers a half-open
        /// upper bound onto the inclusive sampler.
        fn dec(self) -> Self;
    }

    fn draw_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }

    fn draw_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }

    macro_rules! range_int {
        ($ty:ty, $u_large:ty, $double:ty, $draw:ident) => {
            impl RangeInt for $ty {
                fn sample_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    // Width arithmetic first (so a full-width range wraps
                    // to 0), then widen to the sampling word.
                    let range = high.wrapping_sub(low).wrapping_add(1) as $u_large;
                    if range == 0 {
                        // Full-width range: any value is a valid sample.
                        return $draw(rng) as $ty;
                    }
                    let zone = if (<$ty>::MAX as u128) <= (u16::MAX as u128) {
                        // Small types: exact zone by modulus.
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        // Conservative approximation; `- 1` keeps the
                        // `lo <= zone` comparison unbiased.
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v = $draw(rng) as $u_large;
                        let m = (v as $double) * (range as $double);
                        let hi = (m >> <$u_large>::BITS) as $u_large;
                        let lo = m as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn dec(self) -> Self {
                    self - 1
                }
            }
        };
    }

    range_int!(u8, u32, u64, draw_u32);
    range_int!(u16, u32, u64, draw_u32);
    range_int!(u32, u32, u64, draw_u32);
    range_int!(u64, u64, u128, draw_u64);
    range_int!(usize, usize, u128, draw_u64);
}

use sealed::RangeInt;

/// A half-open or inclusive integer range that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: RangeInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: RangeInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand 0.8`
    /// `Standard` algorithm).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let fraction = rng.next_u32() >> 8;
        fraction as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli trial: returns `true` with probability `p`.
    ///
    /// Implemented as a 64-bit integer threshold comparison (the `rand
    /// 0.8` `Bernoulli` algorithm): exact for `p ≥ 1`, never true for
    /// `p ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or negative.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(p >= 0.0, "gen_bool requires a probability, got {p}");
        if p >= 1.0 {
            return true;
        }
        // p ∈ [0, 1): scale to a 64-bit threshold.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for the tests below.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn f64_stays_in_unit_interval_with_correct_mean() {
        let mut rng = SplitMix(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 20_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_edges_and_frequency() {
        let mut rng = SplitMix(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SplitMix(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..6);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix(4);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_range_is_unbiased_at_small_spans() {
        let mut rng = SplitMix(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "freq {freq}");
        }
    }

    /// Counts word draws so tests can assert which width a sample consumed.
    struct CountingRng {
        inner: SplitMix,
        u32_draws: u32,
        u64_draws: u32,
    }

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.u32_draws += 1;
            (self.inner.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.u64_draws += 1;
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest);
        }
    }

    #[test]
    fn gen_range_width_matches_rand_08() {
        // rand 0.8 samples sub-64-bit integer ranges from a single u32
        // draw and 64-bit ranges from a u64 draw; the stub must consume
        // the identical word stream.
        let mut rng = CountingRng {
            inner: SplitMix(6),
            u32_draws: 0,
            u64_draws: 0,
        };
        for _ in 0..100 {
            let _: u8 = rng.gen_range(0..200);
            let _: u16 = rng.gen_range(0..50_000);
            let _: u32 = rng.gen_range(0..3_000_000_000);
        }
        assert_eq!(rng.u64_draws, 0, "sub-64-bit ranges must not draw u64");
        assert!(rng.u32_draws >= 300, "one u32 per accepted sample");
        let u32_before = rng.u32_draws;
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..u64::MAX / 2);
            let _: usize = rng.gen_range(0..usize::MAX / 2);
        }
        assert_eq!(rng.u32_draws, u32_before, "64-bit ranges must not draw u32");
        assert!(rng.u64_draws >= 200, "64-bit ranges draw u64 words");
    }

    #[test]
    fn full_width_inclusive_ranges_pass_the_raw_word_through() {
        let mut a = SplitMix(9);
        let mut b = SplitMix(9);
        let x: u64 = a.gen_range(0..=u64::MAX);
        assert_eq!(x, b.next_u64());
        let mut c = SplitMix(10);
        let mut d = SplitMix(10);
        let y: u8 = c.gen_range(0..=u8::MAX);
        assert_eq!(y, (d.next_u64() >> 32) as u8);
    }

    #[test]
    fn seed_from_u64_expansion_is_deterministic() {
        struct Raw([u8; 32]);
        impl SeedableRng for Raw {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Raw(seed)
            }
        }
        let a = Raw::seed_from_u64(7);
        let b = Raw::seed_from_u64(7);
        let c = Raw::seed_from_u64(8);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }
}
