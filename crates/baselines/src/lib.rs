//! Comparison protocols for the E7 baseline experiments.
//!
//! The paper's pitch is relative: ε-BROADCAST's `Õ(T^{1/(k+1)})` beats both
//! the naive strawman of §1.1 ("a correct node continually sends m until
//! the jamming stops; this yields very poor resource competitiveness since
//! each node spends at least as much as the adversary") and the earlier
//! golden-ratio bound `O(T^{φ−1}) = O(T^{0.62})` of King–Saia–Young [23].
//! This crate implements those comparators:
//!
//! * [`NaiveBroadcast`] — always-on sender, always-listening receivers;
//!   per-device cost `Θ(T)`. Runs on the exact engine against any
//!   [`rcb_radio::Adversary`].
//! * [`EpidemicGossip`] — constant-rate relaying without backoff; receivers
//!   still pay `Θ(T)` listening through jamming.
//! * [`ksy`] — a two-player epoch protocol reproducing the *shape* of
//!   [23]: per-player cost `O(T^{φ−1})` against a continuous jammer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epidemic;
pub mod ksy;
mod naive;

pub use epidemic::{run_epidemic, EpidemicConfig};
pub use naive::{run_naive, NaiveConfig};
