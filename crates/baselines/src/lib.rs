//! Comparison protocols for the E7 baseline experiments.
//!
//! The paper's pitch is relative: ε-BROADCAST's `Õ(T^{1/(k+1)})` beats both
//! the naive strawman of §1.1 ("a correct node continually sends m until
//! the jamming stops; this yields very poor resource competitiveness since
//! each node spends at least as much as the adversary") and the earlier
//! golden-ratio bound `O(T^{φ−1}) = O(T^{0.62})` of King–Saia–Young \[23\].
//! This crate implements those comparators.
//!
//! ## Where to start
//!
//! **Run baselines through `rcb-sim`'s `Scenario` builder**, which gives
//! every protocol the same adversary vocabulary, outcome type, and
//! batching, and rejects invalid combinations with a typed error:
//!
//! ```text
//! Scenario::naive(NaiveSpec { n: 8, horizon: 1_000 })
//!     .adversary(StrategySpec::Continuous)
//!     .carol_budget(500)
//!     .build()?
//!     .run()
//! // likewise Scenario::epidemic(..) and Scenario::ksy(..)
//! ```
//!
//! ## Crate layout
//!
//! * [`execute_naive_soa`] / [`NaiveConfig`] — always-on sender,
//!   always-listening receivers; per-device cost `Θ(T)`. Runs on the
//!   exact engine against any [`rcb_radio::Adversary`].
//! * [`execute_epidemic_soa`] / [`EpidemicConfig`] — constant-rate
//!   relaying without backoff; receivers still pay `Θ(T)` listening
//!   through jamming.
//! * [`ksy`] — a two-player epoch protocol reproducing the *shape* of
//!   \[23\]: per-player cost `O(T^{φ−1})` against a continuous jammer.
//! * [`execute_kpsy`] / [`KpsyConfig`] — the `n`-player KPSY jamming
//!   defense: doubling epochs with secret `O(L^{φ−1})`-slot activity
//!   plans, run slot-by-slot on the exact engine against the whole
//!   adversary zoo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epidemic;
mod kpsy;
pub mod ksy;
mod naive;

pub use epidemic::{
    execute_epidemic_soa, execute_epidemic_soa_in, execute_epidemic_soa_with, EpidemicConfig,
    EpidemicSoaScratch,
};
pub use kpsy::{execute_kpsy, execute_kpsy_in, KpsyConfig, KpsyScratch};
pub use naive::{
    execute_naive_soa, execute_naive_soa_in, execute_naive_soa_with, NaiveConfig, NaiveSoaScratch,
};
