//! The KPSY resource-competitive jamming defense — the `n`-player,
//! engine-driven descendant of [`crate::ksy`].
//!
//! King–Pettie–Saia–Young, *Resource-Competitive Broadcast* (see
//! arXiv:1202.6456), extend the two-player golden-ratio epoch protocol
//! to a broadcast setting: time is divided into doubling epochs
//! `e = 1, 2, …` of length `L_e = 2^e`, and in epoch `e` every player
//! participates in only `R_e = ⌈L_e^{φ−1}⌉` uniformly random secret
//! slots of the epoch — Alice transmits in hers, an uninformed node
//! listens in its, and an informed node relays in its. Since the slot
//! choices are secret and uniform, a jammer must blanket a constant
//! fraction of the whole epoch (cost `Ω(L_e)`) to reliably kill every
//! send/listen coincidence, while each correct player spends only
//! `O(L_e^{φ−1})` — the resource-competitive `O(T^{0.62})` listening
//! defense.
//!
//! Unlike [`crate::ksy`]'s closed-form two-player run, this roster
//! executes **slot-by-slot on the exact engine**, so the whole adversary
//! zoo applies unchanged and outcomes carry real energy ledgers. There
//! is deliberately one implementation for both fingerprint eras: the
//! sparse secret schedules defeat the SoA engine's aggregated listener
//! settlement (each node's activity pattern is an individually drawn
//! subset, not an i.i.d. per-slot coin), so `rcb_sim::Scenario::kpsy`
//! lowers era 1 and era 2 onto this same driver and the fast engines
//! reject the protocol with a typed error.

use rcb_auth::{Authority, KeyId, Payload as MessageBytes, Signed, Verifier};
use rcb_core::{gossip_outcome, BroadcastOutcome};
use rcb_radio::{
    Action, Adversary, Budget, EngineConfig, EngineScratch, ExactEngine, NodeProtocol, Payload,
    Reception, RunReport, Slot,
};
use rcb_rng::{subset::sample_distinct, SeedTree, SimRng};

use crate::ksy::PHI;

/// Configuration for a KPSY-defense run.
#[derive(Debug, Clone)]
pub struct KpsyConfig {
    /// Number of receiver nodes.
    pub n: u64,
    /// Hard stop. Epochs double, so a horizon of `2^{e+1} − 2` runs
    /// exactly `e` whole epochs.
    pub horizon: u64,
    /// Carol's pooled budget.
    pub carol_budget: Budget,
    /// Retain at most this many slot records in the report's trace
    /// (0 disables tracing).
    pub trace_capacity: usize,
    /// Master seed.
    pub seed: u64,
}

impl KpsyConfig {
    /// A run without tracing.
    #[must_use]
    pub fn new(n: u64, horizon: u64, carol_budget: Budget, seed: u64) -> Self {
        Self {
            n,
            horizon,
            carol_budget,
            trace_capacity: 0,
            seed,
        }
    }
}

/// First slot of epoch `e` (1-based): `2^e − 2`, so epoch `e` spans
/// `[2^e − 2, 2^{e+1} − 2)` with length `L_e = 2^e`.
fn epoch_start(epoch: u32) -> u64 {
    (1u64 << epoch) - 2
}

/// The per-epoch activity quota `R_e = ⌈L_e^{φ−1}⌉`, capped at `L_e`.
fn epoch_quota(len: u64) -> u64 {
    ((len as f64).powf(PHI - 1.0).ceil() as u64).min(len)
}

/// The shared epoch clock + secret slot plan of one KPSY player.
///
/// At each epoch boundary the player draws `R_e` distinct slots of the
/// epoch from its private stream; between boundaries it walks the sorted
/// plan with a cursor.
#[derive(Debug)]
struct EpochPlan {
    /// Current epoch (0 = no epoch entered yet).
    epoch: u32,
    /// First slot past the current epoch.
    epoch_end: u64,
    /// Absolute indices of this epoch's active slots, sorted.
    slots: Vec<u64>,
    /// Cursor into `slots`.
    cursor: usize,
}

impl EpochPlan {
    fn new() -> Self {
        Self {
            epoch: 0,
            epoch_end: 0,
            slots: Vec::new(),
            cursor: 0,
        }
    }

    /// Advances the epoch clock to cover `slot`, redrawing the secret
    /// plan at each boundary crossed (`active` gates the draw: a player
    /// that will sleep the whole epoch — e.g. Alice past her horizon —
    /// must not consume stream randomness).
    fn roll_to(&mut self, slot: Slot, rng: &mut SimRng) {
        while slot.index() >= self.epoch_end {
            self.epoch += 1;
            let len = 1u64 << self.epoch;
            let start = epoch_start(self.epoch);
            self.epoch_end = start + len;
            let quota = epoch_quota(len);
            self.slots = sample_distinct(rng, len, quota);
            self.slots.sort_unstable();
            for s in &mut self.slots {
                *s += start;
            }
            self.cursor = 0;
        }
    }

    /// Whether `slot` is one of the epoch's secret active slots.
    fn is_active(&mut self, slot: Slot) -> bool {
        while self.cursor < self.slots.len() && self.slots[self.cursor] < slot.index() {
            self.cursor += 1;
        }
        self.cursor < self.slots.len() && self.slots[self.cursor] == slot.index()
    }
}

/// Alice under KPSY: transmits `m` in `R_e` secret uniform slots per
/// epoch until the horizon.
#[derive(Debug)]
struct KpsyAlice {
    signed_m: Signed,
    horizon: u64,
    plan: EpochPlan,
    done: bool,
}

impl NodeProtocol for KpsyAlice {
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        if slot.index() >= self.horizon {
            self.done = true;
            return Action::Sleep;
        }
        self.plan.roll_to(slot, rng);
        if self.plan.is_active(slot) {
            Action::Send(Payload::Broadcast(self.signed_m.clone()))
        } else {
            Action::Sleep
        }
    }
    fn on_reception(&mut self, _: Slot, _: Reception) {}
    fn has_terminated(&self) -> bool {
        self.done
    }
    fn is_informed(&self) -> bool {
        true
    }
}

/// A KPSY node: listens in `R_e` secret slots per epoch until informed;
/// from the next epoch boundary on, relays in `R_e` secret slots
/// instead. A node informed mid-epoch sleeps out the rest of that epoch
/// (the listening plan's unused tail is simply never executed — the
/// engine charges only performed actions, mirroring the receiver refund
/// of [`crate::ksy`]).
#[derive(Debug)]
struct KpsyNode {
    verifier: Verifier,
    alice_key: KeyId,
    horizon: u64,
    plan: EpochPlan,
    /// Epoch in which the node became informed (it starts relaying at
    /// the *next* boundary; `u32::MAX` = uninformed).
    informed_epoch: u32,
    message: Option<Signed>,
    done: bool,
}

impl NodeProtocol for KpsyNode {
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        if slot.index() >= self.horizon {
            self.done = true;
            return Action::Sleep;
        }
        self.plan.roll_to(slot, rng);
        if !self.plan.is_active(slot) {
            return Action::Sleep;
        }
        match &self.message {
            None => Action::Listen,
            Some(m) if self.plan.epoch > self.informed_epoch => {
                Action::Send(Payload::Broadcast(m.clone()))
            }
            // Informed mid-epoch: sit out the rest of the listening plan.
            Some(_) => Action::Sleep,
        }
    }
    fn on_reception(&mut self, _: Slot, reception: Reception) {
        if let Reception::Frame(Payload::Broadcast(signed)) = reception {
            if signed.signer() == self.alice_key && self.verifier.verify_signed(&signed) {
                self.message = Some(signed);
                self.informed_epoch = self.plan.epoch;
            }
        }
    }
    fn has_terminated(&self) -> bool {
        self.done
    }
    fn is_informed(&self) -> bool {
        self.message.is_some()
    }
}

/// One KPSY roster slot: Alice or a node.
///
/// Homogeneous roster type for the engine's monomorphized fast path.
#[derive(Debug)]
enum KpsyParticipant {
    Alice(KpsyAlice),
    Node(KpsyNode),
}

impl NodeProtocol for KpsyParticipant {
    #[inline]
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        match self {
            KpsyParticipant::Alice(a) => a.act(slot, rng),
            KpsyParticipant::Node(n) => n.act(slot, rng),
        }
    }
    #[inline]
    fn channel(&self, slot: Slot) -> rcb_radio::ChannelId {
        match self {
            KpsyParticipant::Alice(a) => a.channel(slot),
            KpsyParticipant::Node(n) => n.channel(slot),
        }
    }
    #[inline]
    fn on_budget_exhausted(&mut self, slot: Slot) {
        match self {
            KpsyParticipant::Alice(a) => a.on_budget_exhausted(slot),
            KpsyParticipant::Node(n) => n.on_budget_exhausted(slot),
        }
    }
    #[inline]
    fn on_reception(&mut self, slot: Slot, reception: Reception) {
        match self {
            KpsyParticipant::Alice(a) => a.on_reception(slot, reception),
            KpsyParticipant::Node(n) => n.on_reception(slot, reception),
        }
    }
    #[inline]
    fn has_terminated(&self) -> bool {
        match self {
            KpsyParticipant::Alice(a) => a.has_terminated(),
            KpsyParticipant::Node(n) => n.has_terminated(),
        }
    }
    #[inline]
    fn is_informed(&self) -> bool {
        match self {
            KpsyParticipant::Alice(a) => a.is_informed(),
            KpsyParticipant::Node(n) => n.is_informed(),
        }
    }
}

/// Reusable scratch for batched KPSY runs.
#[derive(Debug, Default)]
pub struct KpsyScratch {
    roster: Vec<KpsyParticipant>,
    budgets: Vec<Budget>,
    engine: EngineScratch,
}

impl KpsyScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the KPSY jamming defense on the exact engine and reports the
/// outcome plus the raw engine report.
///
/// This is the execution engine behind `rcb_sim::Scenario::kpsy` (both
/// fingerprint eras — see the module docs); prefer the `Scenario`
/// builder in application code. Batched callers should use
/// [`execute_kpsy_in`] with a per-worker [`KpsyScratch`].
///
/// # Example
///
/// ```
/// use rcb_baselines::{execute_kpsy, KpsyConfig};
/// use rcb_radio::{Budget, SilentAdversary};
///
/// let (outcome, _report) = execute_kpsy(
///     &KpsyConfig::new(8, 2_000, Budget::unlimited(), 1),
///     &mut SilentAdversary,
/// );
/// assert_eq!(outcome.informed_nodes, 8);
/// // The defense's point: node spend is sublinear in elapsed time.
/// assert!(outcome.mean_node_cost() < 2_000.0 / 4.0);
/// ```
#[must_use]
pub fn execute_kpsy(
    config: &KpsyConfig,
    adversary: &mut dyn Adversary,
) -> (BroadcastOutcome, RunReport) {
    execute_kpsy_in(config, adversary, &mut KpsyScratch::new())
}

/// Like [`execute_kpsy`], reusing caller-owned scratch allocations — the
/// batched-trials entry point.
#[must_use]
pub fn execute_kpsy_in(
    config: &KpsyConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut KpsyScratch,
) -> (BroadcastOutcome, RunReport) {
    let seeds = SeedTree::new(config.seed);
    let mut authority = Authority::new(seeds.leaf_seed("auth-domain", 0));
    let alice_key = authority.issue_key();
    let verifier = authority.verifier();
    let signed_m = alice_key.sign(&MessageBytes::from_static(b"kpsy payload m"));

    scratch.roster.clear();
    scratch.roster.reserve(config.n as usize + 1);
    scratch.roster.push(KpsyParticipant::Alice(KpsyAlice {
        signed_m,
        horizon: config.horizon,
        plan: EpochPlan::new(),
        done: false,
    }));
    for _ in 0..config.n {
        scratch.roster.push(KpsyParticipant::Node(KpsyNode {
            verifier,
            alice_key: alice_key.id(),
            horizon: config.horizon,
            plan: EpochPlan::new(),
            informed_epoch: u32::MAX,
            message: None,
            done: false,
        }));
    }
    scratch.budgets.clear();
    scratch
        .budgets
        .resize(config.n as usize + 1, Budget::unlimited());
    let engine = ExactEngine::new(EngineConfig {
        max_slots: config.horizon + 2,
        trace_capacity: config.trace_capacity,
        ..EngineConfig::default()
    });
    let report = engine.run_with_roster_typed_in(
        &mut scratch.engine,
        &mut scratch.roster,
        &scratch.budgets,
        config.carol_budget,
        adversary,
        &seeds,
    );

    let outcome = gossip_outcome(config.n, &report);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::ContinuousJammer;
    use rcb_radio::SilentAdversary;

    #[test]
    fn epoch_geometry() {
        assert_eq!(epoch_start(1), 0);
        assert_eq!(epoch_start(2), 2);
        assert_eq!(epoch_start(3), 6);
        assert_eq!(epoch_quota(2), 2);
        // L = 1024: quota = ⌈1024^0.618⌉ = 73.
        assert_eq!(epoch_quota(1024), 73);
    }

    #[test]
    fn quiet_channel_informs_everyone() {
        let (outcome, _) = execute_kpsy(
            &KpsyConfig::new(12, 4_000, Budget::unlimited(), 1),
            &mut SilentAdversary,
        );
        assert_eq!(outcome.informed_nodes, 12);
        assert!(outcome.alice_terminated);
    }

    #[test]
    fn node_cost_is_sublinear_in_elapsed_time() {
        // 2^{e+1} − 2 slots = e whole epochs; per-node cost is
        // Σ R_e = O(horizon^{φ−1}), far below horizon.
        let horizon = (1u64 << 13) - 2;
        let (outcome, _) = execute_kpsy(
            &KpsyConfig::new(6, horizon, Budget::unlimited(), 5),
            &mut SilentAdversary,
        );
        assert_eq!(outcome.informed_nodes, 6);
        let bound: u64 = (1..=12u32).map(|e| epoch_quota(1 << e)).sum();
        assert!(
            outcome.alice_cost.sends <= bound,
            "Alice within the quota: {} <= {bound}",
            outcome.alice_cost.sends
        );
        // Quota sum ≈ 334 vs horizon 8190: the φ−1 exponent in action.
        assert!((bound as f64) < (horizon as f64).powf(0.75));
    }

    #[test]
    fn survives_continuous_jamming_past_the_budget() {
        let t = 2_000u64;
        let (outcome, _) = execute_kpsy(
            &KpsyConfig::new(8, 16_000, Budget::limited(t), 7),
            &mut ContinuousJammer,
        );
        assert_eq!(outcome.carol_spend(), t, "she spends it all");
        assert_eq!(outcome.informed_nodes, 8, "delivery after she is broke");
        // Resource-competitiveness: mean node spend well below Carol's
        // (the naive baseline pays ≥ T here; KPSY's listening is
        // O(T^{φ−1}), plus a relay tail over the remaining epochs).
        assert!(
            outcome.mean_node_cost() < t as f64 / 2.0,
            "mean node cost {} vs T={t}",
            outcome.mean_node_cost()
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = KpsyConfig::new(6, 2_000, Budget::limited(500), 9);
        let (a, ra) = execute_kpsy(&cfg, &mut ContinuousJammer);
        let (b, rb) = execute_kpsy(&cfg, &mut ContinuousJammer);
        assert_eq!(a.node_costs, b.node_costs);
        assert_eq!(a.carol_cost, b.carol_cost);
        assert_eq!(ra.participant_costs, rb.participant_costs);
    }
}
