//! Epidemic gossip without backoff — a non-competitive relaying baseline.
//!
//! Informed nodes relay `m` with probability `λ/n` per slot (like the
//! propagation phase of ε-BROADCAST) but *never stop*, and uninformed
//! nodes listen with a fixed constant probability forever. Delivery is
//! fast and robust, but the energy profile has no jamming response at all:
//! every jammed slot costs the listeners in expectation, so per-node cost
//! grows linearly in `T` — the pattern "many algorithms for communication
//! in WSNs suffer" (§1.1).

use rcb_auth::{Authority, Payload as MessageBytes};
use rcb_core::{gossip_outcome, BroadcastOutcome};
use rcb_radio::{
    run_gossip_soa_with, Adversary, Budget, EngineConfig, GossipSoaScratch, GossipSpec, Payload,
    RunReport,
};
use rcb_rng::SeedTree;
use rcb_telemetry::{Collector, NoopCollector};

/// Configuration for an epidemic-gossip run.
#[derive(Debug, Clone)]
pub struct EpidemicConfig {
    /// Number of receiver nodes.
    pub n: u64,
    /// Per-slot listen probability of uninformed nodes.
    pub listen_p: f64,
    /// Relay probability is `relay_rate / n`.
    pub relay_rate: f64,
    /// Hard stop.
    pub horizon: u64,
    /// Carol's pooled budget.
    pub carol_budget: Budget,
    /// Retain at most this many slot records in the report's trace
    /// (0 disables tracing).
    pub trace_capacity: usize,
    /// Master seed.
    pub seed: u64,
}

impl EpidemicConfig {
    /// A reasonable default configuration (no tracing).
    #[must_use]
    pub fn new(n: u64, horizon: u64, carol_budget: Budget, seed: u64) -> Self {
        Self {
            n,
            listen_p: 0.5,
            relay_rate: 1.0,
            horizon,
            carol_budget,
            trace_capacity: 0,
            seed,
        }
    }
}

/// Reusable scratch for batched epidemic-gossip runs on the
/// sleep-skipping SoA engine.
#[derive(Debug, Default)]
pub struct EpidemicSoaScratch {
    budgets: Vec<Budget>,
    soa: GossipSoaScratch,
}

impl EpidemicSoaScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs epidemic gossip on the sleep-skipping SoA engine and reports a
/// [`BroadcastOutcome`] plus the raw engine report — whose
/// [`trace`](RunReport::trace) is populated when
/// [`EpidemicConfig::trace_capacity`] is nonzero, so blocked runs can be
/// post-mortemed slot by slot. Per-slot cost is proportional to the
/// events in a run, not `n`.
///
/// This is the execution engine behind `rcb_sim::Scenario::epidemic`;
/// prefer the `Scenario` builder in application code. Batched callers
/// should use [`execute_epidemic_soa_in`] with a per-worker
/// [`EpidemicSoaScratch`].
///
/// # Panics
///
/// Panics if `listen_p` is not a probability (the `Scenario` builder
/// rejects this with a typed error instead).
#[must_use]
pub fn execute_epidemic_soa(
    config: &EpidemicConfig,
    adversary: &mut dyn Adversary,
) -> (BroadcastOutcome, RunReport) {
    execute_epidemic_soa_in(config, adversary, &mut EpidemicSoaScratch::new())
}

/// Like [`execute_epidemic_soa`], reusing caller-owned scratch
/// allocations — the batched-trials entry point.
///
/// # Panics
///
/// Panics if `listen_p` is not a probability.
#[must_use]
pub fn execute_epidemic_soa_in(
    config: &EpidemicConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut EpidemicSoaScratch,
) -> (BroadcastOutcome, RunReport) {
    execute_epidemic_soa_with(config, adversary, scratch, &NoopCollector)
}

/// [`execute_epidemic_soa_in`] with a telemetry collector attached; the
/// collector receives the era-2 engine's profile flush.
///
/// # Panics
///
/// Panics if `listen_p` is not a probability.
#[must_use]
pub fn execute_epidemic_soa_with<C: Collector + ?Sized>(
    config: &EpidemicConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut EpidemicSoaScratch,
    collector: &C,
) -> (BroadcastOutcome, RunReport) {
    assert!(
        (0.0..=1.0).contains(&config.listen_p),
        "listen_p must be a probability"
    );
    let seeds = SeedTree::new(config.seed);
    let mut authority = Authority::new(seeds.leaf_seed("auth-domain", 0));
    let alice_key = authority.issue_key();
    let verifier = authority.verifier();
    let signed_m = alice_key.sign(&MessageBytes::from_static(b"gossip payload m"));
    let alice_id = alice_key.id();

    let spec = GossipSpec {
        n: config.n,
        horizon: config.horizon,
        alice_send_p: 0.5,
        listen_p: config.listen_p,
        relay_p: (config.relay_rate / config.n as f64).clamp(0.0, 1.0),
        hop_channels: false,
        terminate_on_inform: false,
        epoch_len: 0,
        payload: Payload::Broadcast(signed_m),
    };
    scratch.budgets.clear();
    scratch
        .budgets
        .resize(config.n as usize + 1, Budget::unlimited());
    let engine_config = EngineConfig {
        max_slots: config.horizon + 2,
        trace_capacity: config.trace_capacity,
        ..EngineConfig::default()
    };
    let report = run_gossip_soa_with(
        &engine_config,
        &spec,
        &scratch.budgets,
        config.carol_budget,
        adversary,
        &seeds,
        &mut |payload| {
            matches!(payload, Payload::Broadcast(signed)
                if signed.signer() == alice_id && verifier.verify_signed(signed))
        },
        &mut scratch.soa,
        collector,
    );

    let outcome = gossip_outcome(config.n, &report);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::ContinuousJammer;
    use rcb_radio::SilentAdversary;

    #[test]
    #[should_panic(expected = "listen_p must be a probability")]
    fn rejects_bad_listen_p() {
        let mut cfg = EpidemicConfig::new(4, 10, Budget::unlimited(), 0);
        cfg.listen_p = 1.5;
        let _ = execute_epidemic_soa(&cfg, &mut SilentAdversary);
    }

    #[test]
    fn era2_gossip_delivers_quickly_when_quiet() {
        let cfg = EpidemicConfig::new(32, 2_000, Budget::unlimited(), 1);
        let (outcome, report) = execute_epidemic_soa(&cfg, &mut SilentAdversary);
        assert_eq!(outcome.informed_nodes, 32);
        // Gossip never stops on its own (the run lasts to the horizon),
        // but informed nodes stop listening: per-node listen cost is far
        // below the 0.5 × horizon an uninformed node would pay.
        let mean_listens = outcome.node_total_cost.listens as f64 / 32.0;
        assert!(mean_listens < 200.0, "mean listens {mean_listens}");
        // Relaying never terminates, so the run lasts to the horizon.
        assert_eq!(report.slots_elapsed, 2_001);
    }

    #[test]
    fn era2_listener_cost_scales_with_jamming() {
        let t = 3_000u64;
        let cfg = EpidemicConfig::new(8, t + 500, Budget::limited(t), 2);
        let (outcome, _) = execute_epidemic_soa(&cfg, &mut ContinuousJammer);
        assert_eq!(outcome.informed_nodes, 8);
        let per_node = outcome.mean_node_cost();
        assert!(
            per_node > t as f64 * 0.4,
            "per-node cost {per_node} should be ≈ T/2 = {}",
            t / 2
        );
    }

    #[test]
    fn era2_runs_are_deterministic_by_seed() {
        let cfg = EpidemicConfig::new(16, 1_500, Budget::limited(400), 9);
        let (a, ra) = execute_epidemic_soa(&cfg, &mut ContinuousJammer);
        let (b, rb) = execute_epidemic_soa(&cfg, &mut ContinuousJammer);
        assert_eq!(a.node_costs, b.node_costs);
        assert_eq!(a.informed_nodes, b.informed_nodes);
        assert_eq!(ra.channel_stats, rb.channel_stats);
    }
}
