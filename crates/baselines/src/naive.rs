//! The naive always-on broadcast — §1.1's strawman.

use rcb_auth::{Authority, KeyId, Payload as MessageBytes, Signed, Verifier};
use rcb_core::{gossip_outcome, BroadcastOutcome};
use rcb_radio::{
    run_gossip_soa_with, Action, Adversary, Budget, EngineConfig, EngineScratch, ExactEngine,
    GossipSoaScratch, GossipSpec, NodeProtocol, Payload, Reception, RunReport, Slot,
};
use rcb_rng::{SeedTree, SimRng};
use rcb_telemetry::{Collector, NoopCollector};

/// Configuration for a naive-broadcast run.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Number of receiver nodes.
    pub n: u64,
    /// Alice transmits in every slot until this horizon, then terminates
    /// (she has no feedback channel; the naive protocol just runs "long
    /// enough" — pick a horizon past the adversary's budget).
    pub horizon: u64,
    /// Carol's pooled budget.
    pub carol_budget: Budget,
    /// Retain at most this many slot records in the report's trace
    /// (0 disables tracing).
    pub trace_capacity: usize,
    /// Master seed.
    pub seed: u64,
}

impl NaiveConfig {
    /// A run without tracing.
    #[must_use]
    pub fn new(n: u64, horizon: u64, carol_budget: Budget, seed: u64) -> Self {
        Self {
            n,
            horizon,
            carol_budget,
            trace_capacity: 0,
            seed,
        }
    }
}

/// Alice: transmits `m` in **every** slot until the horizon.
#[derive(Debug)]
struct NaiveAlice {
    signed_m: Signed,
    horizon: u64,
    done: bool,
}

impl NodeProtocol for NaiveAlice {
    fn act(&mut self, slot: Slot, _rng: &mut SimRng) -> Action {
        if slot.index() >= self.horizon {
            self.done = true;
            return Action::Sleep;
        }
        Action::Send(Payload::Broadcast(self.signed_m.clone()))
    }
    fn on_reception(&mut self, _: Slot, _: Reception) {}
    fn has_terminated(&self) -> bool {
        self.done
    }
    fn is_informed(&self) -> bool {
        true
    }
}

/// Receiver: listens in **every** slot until it hears a verified `m`.
#[derive(Debug)]
struct NaiveReceiver {
    verifier: Verifier,
    alice_key: KeyId,
    informed: bool,
}

impl NodeProtocol for NaiveReceiver {
    fn act(&mut self, _: Slot, _rng: &mut SimRng) -> Action {
        if self.informed {
            Action::Sleep
        } else {
            Action::Listen
        }
    }
    fn on_reception(&mut self, _: Slot, reception: Reception) {
        if let Reception::Frame(Payload::Broadcast(signed)) = reception {
            if signed.signer() == self.alice_key && self.verifier.verify_signed(&signed) {
                self.informed = true;
            }
        }
    }
    fn has_terminated(&self) -> bool {
        self.informed
    }
    fn is_informed(&self) -> bool {
        self.informed
    }
}

/// One naive-broadcast roster slot: Alice or a receiver.
///
/// Homogeneous roster type for the engine's monomorphized fast path.
#[derive(Debug)]
enum NaiveParticipant {
    Alice(NaiveAlice),
    Receiver(NaiveReceiver),
}

impl NodeProtocol for NaiveParticipant {
    #[inline]
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        match self {
            NaiveParticipant::Alice(a) => a.act(slot, rng),
            NaiveParticipant::Receiver(r) => r.act(slot, rng),
        }
    }
    #[inline]
    fn channel(&self, slot: Slot) -> rcb_radio::ChannelId {
        match self {
            NaiveParticipant::Alice(a) => a.channel(slot),
            NaiveParticipant::Receiver(r) => r.channel(slot),
        }
    }
    #[inline]
    fn on_budget_exhausted(&mut self, slot: Slot) {
        match self {
            NaiveParticipant::Alice(a) => a.on_budget_exhausted(slot),
            NaiveParticipant::Receiver(r) => r.on_budget_exhausted(slot),
        }
    }
    #[inline]
    fn on_reception(&mut self, slot: Slot, reception: Reception) {
        match self {
            NaiveParticipant::Alice(a) => a.on_reception(slot, reception),
            NaiveParticipant::Receiver(r) => r.on_reception(slot, reception),
        }
    }
    #[inline]
    fn has_terminated(&self) -> bool {
        match self {
            NaiveParticipant::Alice(a) => a.has_terminated(),
            NaiveParticipant::Receiver(r) => r.has_terminated(),
        }
    }
    #[inline]
    fn is_informed(&self) -> bool {
        match self {
            NaiveParticipant::Alice(a) => a.is_informed(),
            NaiveParticipant::Receiver(r) => r.is_informed(),
        }
    }
}

/// Reusable scratch for batched naive-broadcast runs.
#[derive(Debug, Default)]
pub struct NaiveScratch {
    roster: Vec<NaiveParticipant>,
    budgets: Vec<Budget>,
    engine: EngineScratch,
}

impl NaiveScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the naive protocol and reports a [`BroadcastOutcome`] (with
/// `rounds_entered = 0`; the naive protocol has no rounds) plus the raw
/// engine report — whose [`trace`](RunReport::trace) is populated when
/// [`NaiveConfig::trace_capacity`] is nonzero, so blocked runs can be
/// post-mortemed slot by slot.
///
/// This is the execution engine behind `rcb_sim::Scenario::naive`; prefer
/// the `Scenario` builder in application code. Batched callers should use
/// [`execute_naive_in`] with a per-worker [`NaiveScratch`].
///
/// # Example
///
/// ```
/// use rcb_baselines::{execute_naive, NaiveConfig};
/// use rcb_radio::{Budget, SilentAdversary};
///
/// let (outcome, _report) = execute_naive(
///     &NaiveConfig::new(8, 100, Budget::unlimited(), 1),
///     &mut SilentAdversary,
/// );
/// assert_eq!(outcome.informed_nodes, 8); // first slot delivers to all
/// ```
#[must_use]
pub fn execute_naive(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
) -> (BroadcastOutcome, RunReport) {
    execute_naive_in(config, adversary, &mut NaiveScratch::new())
}

/// Like [`execute_naive`], reusing caller-owned scratch allocations —
/// the batched-trials entry point.
#[must_use]
pub fn execute_naive_in(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut NaiveScratch,
) -> (BroadcastOutcome, RunReport) {
    let seeds = SeedTree::new(config.seed);
    let mut authority = Authority::new(seeds.leaf_seed("auth-domain", 0));
    let alice_key = authority.issue_key();
    let verifier = authority.verifier();
    let signed_m = alice_key.sign(&MessageBytes::from_static(b"naive payload m"));

    scratch.roster.clear();
    scratch.roster.reserve(config.n as usize + 1);
    scratch.roster.push(NaiveParticipant::Alice(NaiveAlice {
        signed_m,
        horizon: config.horizon,
        done: false,
    }));
    for _ in 0..config.n {
        scratch
            .roster
            .push(NaiveParticipant::Receiver(NaiveReceiver {
                verifier,
                alice_key: alice_key.id(),
                informed: false,
            }));
    }
    scratch.budgets.clear();
    scratch
        .budgets
        .resize(config.n as usize + 1, Budget::unlimited());
    let engine = ExactEngine::new(EngineConfig {
        max_slots: config.horizon + 2,
        trace_capacity: config.trace_capacity,
        ..EngineConfig::default()
    });
    let report = engine.run_with_roster_typed_in(
        &mut scratch.engine,
        &mut scratch.roster,
        &scratch.budgets,
        config.carol_budget,
        adversary,
        &seeds,
    );

    let outcome = gossip_outcome(config.n, &report);
    (outcome, report)
}

/// Reusable scratch for batched era-2 naive-broadcast runs.
#[derive(Debug, Default)]
pub struct NaiveSoaScratch {
    budgets: Vec<Budget>,
    soa: GossipSoaScratch,
}

impl NaiveSoaScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the naive protocol on the era-2 sleep-skipping engine.
///
/// Statistically equivalent to [`execute_naive`] (validated by the
/// `era1-oracle` cross-validation suite); the default exact path since
/// fingerprint era 2. The naive workload is fully deterministic apart
/// from Carol, so era 1 and era 2 produce identical outcomes here
/// whenever the adversary is deterministic too. Not stream-compatible
/// with era 1.
#[must_use]
pub fn execute_naive_soa(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
) -> (BroadcastOutcome, RunReport) {
    execute_naive_soa_in(config, adversary, &mut NaiveSoaScratch::new())
}

/// Like [`execute_naive_soa`], reusing caller-owned scratch allocations —
/// the batched-trials entry point.
#[must_use]
pub fn execute_naive_soa_in(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut NaiveSoaScratch,
) -> (BroadcastOutcome, RunReport) {
    execute_naive_soa_with(config, adversary, scratch, &NoopCollector)
}

/// [`execute_naive_soa_in`] with a telemetry collector attached; the
/// collector receives the era-2 engine's profile flush.
#[must_use]
pub fn execute_naive_soa_with<C: Collector + ?Sized>(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut NaiveSoaScratch,
    collector: &C,
) -> (BroadcastOutcome, RunReport) {
    let seeds = SeedTree::new(config.seed);
    let mut authority = Authority::new(seeds.leaf_seed("auth-domain", 0));
    let alice_key = authority.issue_key();
    let verifier = authority.verifier();
    let signed_m = alice_key.sign(&MessageBytes::from_static(b"naive payload m"));
    let alice_id = alice_key.id();

    let spec = GossipSpec {
        n: config.n,
        horizon: config.horizon,
        alice_send_p: 1.0,
        listen_p: 1.0,
        relay_p: 0.0,
        hop_channels: false,
        terminate_on_inform: true,
        epoch_len: 0,
        payload: Payload::Broadcast(signed_m),
    };
    scratch.budgets.clear();
    scratch
        .budgets
        .resize(config.n as usize + 1, Budget::unlimited());
    let engine_config = EngineConfig {
        max_slots: config.horizon + 2,
        trace_capacity: config.trace_capacity,
        ..EngineConfig::default()
    };
    let report = run_gossip_soa_with(
        &engine_config,
        &spec,
        &scratch.budgets,
        config.carol_budget,
        adversary,
        &seeds,
        &mut |payload| {
            matches!(payload, Payload::Broadcast(signed)
                if signed.signer() == alice_id && verifier.verify_signed(signed))
        },
        &mut scratch.soa,
        collector,
    );

    let outcome = gossip_outcome(config.n, &report);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::ContinuousJammer;
    use rcb_radio::SilentAdversary;

    #[test]
    fn instant_delivery_without_jamming() {
        let (outcome, report) = execute_naive(
            &NaiveConfig::new(16, 50, Budget::unlimited(), 1),
            &mut SilentAdversary,
        );
        assert!(report.trace.is_empty(), "tracing is off by default");
        assert_eq!(outcome.informed_nodes, 16);
        // Every receiver paid exactly one listen.
        assert_eq!(outcome.node_total_cost.listens, 16);
    }

    #[test]
    fn receiver_cost_tracks_carol_spend_linearly() {
        // The point of the baseline: per-node cost ≈ T, competitive ratio
        // ≈ 1 — "each node spends at least as much as the adversary".
        for (t, seed) in [(200u64, 2u64), (2_000, 3)] {
            let (outcome, _) = execute_naive(
                &NaiveConfig::new(4, t + 50, Budget::limited(t), seed),
                &mut ContinuousJammer,
            );
            assert_eq!(outcome.carol_spend(), t);
            assert_eq!(outcome.informed_nodes, 4, "delivery after she is broke");
            let per_node = outcome.mean_node_cost();
            assert!(
                per_node >= t as f64,
                "naive receivers listen through all T={t} jammed slots, got {per_node}"
            );
        }
    }

    #[test]
    fn alice_pays_every_slot_until_horizon_or_everyone_done() {
        let (outcome, _) = execute_naive(
            &NaiveConfig::new(2, 1_000, Budget::limited(100), 4),
            &mut ContinuousJammer,
        );
        // Delivery at slot 100 (first un-jammed slot); engine stops when
        // all terminated... Alice only terminates at the horizon, so she
        // keeps transmitting: cost equals slots elapsed.
        assert_eq!(outcome.alice_cost.sends, outcome.slots.min(1_000));
        assert!(outcome.alice_cost.sends >= 100);
    }

    #[test]
    fn era2_matches_era1_exactly_on_deterministic_runs() {
        // The naive workload has no correct-side randomness, so with a
        // deterministic adversary the two engines must agree outcome-for-
        // outcome (not just in distribution).
        for (cfg, jam) in [
            (NaiveConfig::new(16, 50, Budget::unlimited(), 1), false),
            (NaiveConfig::new(4, 250, Budget::limited(200), 2), true),
            (NaiveConfig::new(3, 40, Budget::unlimited(), 3), true),
        ] {
            let run = |era2: bool| {
                if jam {
                    let mut carol = ContinuousJammer;
                    if era2 {
                        execute_naive_soa(&cfg, &mut carol)
                    } else {
                        execute_naive(&cfg, &mut carol)
                    }
                } else if era2 {
                    execute_naive_soa(&cfg, &mut SilentAdversary)
                } else {
                    execute_naive(&cfg, &mut SilentAdversary)
                }
            };
            let (o1, r1) = run(false);
            let (o2, r2) = run(true);
            assert_eq!(o1.informed_nodes, o2.informed_nodes);
            assert_eq!(o1.alice_cost, o2.alice_cost);
            assert_eq!(o1.node_total_cost, o2.node_total_cost);
            assert_eq!(o1.carol_cost, o2.carol_cost);
            assert_eq!(o1.slots, o2.slots);
            assert_eq!(r1.stop_reason, r2.stop_reason);
            assert_eq!(r1.participant_costs, r2.participant_costs);
            assert_eq!(r1.terminated, r2.terminated);
            assert_eq!(r1.channel_stats, r2.channel_stats);
        }
    }
}
