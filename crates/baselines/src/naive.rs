//! The naive always-on broadcast — §1.1's strawman.

use rcb_auth::{Authority, Payload as MessageBytes};
use rcb_core::{gossip_outcome, BroadcastOutcome};
use rcb_radio::{
    run_gossip_soa_with, Adversary, Budget, EngineConfig, GossipSoaScratch, GossipSpec, Payload,
    RunReport,
};
use rcb_rng::SeedTree;
use rcb_telemetry::{Collector, NoopCollector};

/// Configuration for a naive-broadcast run.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Number of receiver nodes.
    pub n: u64,
    /// Alice transmits in every slot until this horizon, then terminates
    /// (she has no feedback channel; the naive protocol just runs "long
    /// enough" — pick a horizon past the adversary's budget).
    pub horizon: u64,
    /// Carol's pooled budget.
    pub carol_budget: Budget,
    /// Retain at most this many slot records in the report's trace
    /// (0 disables tracing).
    pub trace_capacity: usize,
    /// Master seed.
    pub seed: u64,
}

impl NaiveConfig {
    /// A run without tracing.
    #[must_use]
    pub fn new(n: u64, horizon: u64, carol_budget: Budget, seed: u64) -> Self {
        Self {
            n,
            horizon,
            carol_budget,
            trace_capacity: 0,
            seed,
        }
    }
}

/// Reusable scratch for batched naive-broadcast runs on the
/// sleep-skipping SoA engine.
#[derive(Debug, Default)]
pub struct NaiveSoaScratch {
    budgets: Vec<Budget>,
    soa: GossipSoaScratch,
}

impl NaiveSoaScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the naive protocol on the sleep-skipping SoA engine and reports
/// a [`BroadcastOutcome`] (with `rounds_entered = 0`; the naive protocol
/// has no rounds) plus the raw engine report — whose
/// [`trace`](RunReport::trace) is populated when
/// [`NaiveConfig::trace_capacity`] is nonzero, so blocked runs can be
/// post-mortemed slot by slot. The naive workload is fully deterministic
/// apart from Carol.
///
/// This is the execution engine behind `rcb_sim::Scenario::naive`;
/// prefer the `Scenario` builder in application code. Batched callers
/// should use [`execute_naive_soa_in`] with a per-worker
/// [`NaiveSoaScratch`].
///
/// # Example
///
/// ```
/// use rcb_baselines::{execute_naive_soa, NaiveConfig};
/// use rcb_radio::{Budget, SilentAdversary};
///
/// let (outcome, _report) = execute_naive_soa(
///     &NaiveConfig::new(8, 100, Budget::unlimited(), 1),
///     &mut SilentAdversary,
/// );
/// assert_eq!(outcome.informed_nodes, 8); // first slot delivers to all
/// ```
#[must_use]
pub fn execute_naive_soa(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
) -> (BroadcastOutcome, RunReport) {
    execute_naive_soa_in(config, adversary, &mut NaiveSoaScratch::new())
}

/// Like [`execute_naive_soa`], reusing caller-owned scratch allocations —
/// the batched-trials entry point.
#[must_use]
pub fn execute_naive_soa_in(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut NaiveSoaScratch,
) -> (BroadcastOutcome, RunReport) {
    execute_naive_soa_with(config, adversary, scratch, &NoopCollector)
}

/// [`execute_naive_soa_in`] with a telemetry collector attached; the
/// collector receives the era-2 engine's profile flush.
#[must_use]
pub fn execute_naive_soa_with<C: Collector + ?Sized>(
    config: &NaiveConfig,
    adversary: &mut dyn Adversary,
    scratch: &mut NaiveSoaScratch,
    collector: &C,
) -> (BroadcastOutcome, RunReport) {
    let seeds = SeedTree::new(config.seed);
    let mut authority = Authority::new(seeds.leaf_seed("auth-domain", 0));
    let alice_key = authority.issue_key();
    let verifier = authority.verifier();
    let signed_m = alice_key.sign(&MessageBytes::from_static(b"naive payload m"));
    let alice_id = alice_key.id();

    let spec = GossipSpec {
        n: config.n,
        horizon: config.horizon,
        alice_send_p: 1.0,
        listen_p: 1.0,
        relay_p: 0.0,
        hop_channels: false,
        terminate_on_inform: true,
        epoch_len: 0,
        payload: Payload::Broadcast(signed_m),
    };
    scratch.budgets.clear();
    scratch
        .budgets
        .resize(config.n as usize + 1, Budget::unlimited());
    let engine_config = EngineConfig {
        max_slots: config.horizon + 2,
        trace_capacity: config.trace_capacity,
        ..EngineConfig::default()
    };
    let report = run_gossip_soa_with(
        &engine_config,
        &spec,
        &scratch.budgets,
        config.carol_budget,
        adversary,
        &seeds,
        &mut |payload| {
            matches!(payload, Payload::Broadcast(signed)
                if signed.signer() == alice_id && verifier.verify_signed(signed))
        },
        &mut scratch.soa,
        collector,
    );

    let outcome = gossip_outcome(config.n, &report);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::ContinuousJammer;
    use rcb_radio::SilentAdversary;

    #[test]
    fn instant_delivery_without_jamming() {
        let (outcome, report) = execute_naive_soa(
            &NaiveConfig::new(16, 50, Budget::unlimited(), 1),
            &mut SilentAdversary,
        );
        assert!(report.trace.is_empty(), "tracing is off by default");
        assert_eq!(outcome.informed_nodes, 16);
        // Every receiver paid exactly one listen.
        assert_eq!(outcome.node_total_cost.listens, 16);
    }

    #[test]
    fn receiver_cost_tracks_carol_spend_linearly() {
        // The point of the baseline: per-node cost ≈ T, competitive ratio
        // ≈ 1 — "each node spends at least as much as the adversary".
        for (t, seed) in [(200u64, 2u64), (2_000, 3)] {
            let (outcome, _) = execute_naive_soa(
                &NaiveConfig::new(4, t + 50, Budget::limited(t), seed),
                &mut ContinuousJammer,
            );
            assert_eq!(outcome.carol_spend(), t);
            assert_eq!(outcome.informed_nodes, 4, "delivery after she is broke");
            let per_node = outcome.mean_node_cost();
            assert!(
                per_node >= t as f64,
                "naive receivers listen through all T={t} jammed slots, got {per_node}"
            );
        }
    }

    #[test]
    fn alice_pays_every_slot_until_horizon_or_everyone_done() {
        let (outcome, _) = execute_naive_soa(
            &NaiveConfig::new(2, 1_000, Budget::limited(100), 4),
            &mut ContinuousJammer,
        );
        // Delivery at slot 100 (first un-jammed slot); engine stops when
        // all terminated... Alice only terminates at the horizon, so she
        // keeps transmitting: cost equals slots elapsed.
        assert_eq!(outcome.alice_cost.sends, outcome.slots.min(1_000));
        assert!(outcome.alice_cost.sends >= 100);
    }

    #[test]
    fn deterministic_runs_are_seed_independent() {
        // The naive workload has no correct-side randomness, so with a
        // deterministic adversary the seed cannot influence the outcome —
        // every seed must reproduce the identical run.
        for cfg in [
            NaiveConfig::new(16, 50, Budget::unlimited(), 1),
            NaiveConfig::new(4, 250, Budget::limited(200), 2),
        ] {
            let (base_o, base_r) = execute_naive_soa(&cfg, &mut ContinuousJammer);
            for seed in [11u64, 99] {
                let reseeded = NaiveConfig {
                    seed,
                    ..cfg.clone()
                };
                let (o, r) = execute_naive_soa(&reseeded, &mut ContinuousJammer);
                assert_eq!(o.informed_nodes, base_o.informed_nodes, "seed {seed}");
                assert_eq!(o.alice_cost, base_o.alice_cost, "seed {seed}");
                assert_eq!(o.node_total_cost, base_o.node_total_cost, "seed {seed}");
                assert_eq!(o.carol_cost, base_o.carol_cost, "seed {seed}");
                assert_eq!(o.slots, base_o.slots, "seed {seed}");
                assert_eq!(r.stop_reason, base_r.stop_reason, "seed {seed}");
                assert_eq!(r.terminated, base_r.terminated, "seed {seed}");
                assert_eq!(r.channel_stats, base_r.channel_stats, "seed {seed}");
            }
        }
    }
}
