//! A two-player epoch protocol with the golden-ratio cost shape of
//! King–Saia–Young, *Conflict on a Communication Channel* (PODC 2011) —
//! the `O(T^{φ−1}) = O(T^{0.62})` comparator of the paper's introduction.
//!
//! ## Construction (shape-faithful reconstruction)
//!
//! Time is divided into epochs `e = 1, 2, …` of length `L_e = 2^e`. In
//! epoch `e` the sender transmits in `R_e = ⌈L_e^{φ−1}⌉` uniformly random
//! slots and the receiver listens in `R_e` uniformly random slots. The
//! expected number of send/listen coincidences is `R_e²/L_e =
//! Θ(L_e^{2φ−3}) = Θ(L_e^{0.236})`, which diverges with `e`; since the
//! players' slot choices are secret, a jammer must jam a constant fraction
//! of the *whole epoch* (cost `Ω(L_e)`) to reliably kill every
//! coincidence. With total budget `T` she blocks epochs up to `L_e ≈ T`,
//! and the players' cumulative spend is `Σ_{L_e ≤ T} L_e^{φ−1} =
//! O(T^{φ−1})`.
//!
//! This is a *reconstruction*: \[23\]'s actual protocol is Las Vegas with
//! additional machinery for unknown budgets; what experiments need from it
//! is the exponent, which this construction reproduces (see E7 and
//! `DESIGN.md` for the substitution note).

use rand::Rng;
use rcb_rng::{subset::sample_distinct, SeedTree, SimRng};
use serde::{Deserialize, Serialize};

/// The golden ratio φ.
pub const PHI: f64 = 1.618_033_988_749_895;

/// Configuration for a two-player KSY-style run.
#[derive(Debug, Clone, Copy)]
pub struct KsyConfig {
    /// Carol's jamming budget `T` (she jams the first `T` slots she is
    /// awake for — continuous jamming, the shape-relevant strategy).
    pub carol_budget: u64,
    /// Stop after this many epochs even if undelivered.
    pub max_epochs: u32,
    /// Master seed.
    pub seed: u64,
}

/// What a KSY-style run measured.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KsyOutcome {
    /// Whether the message was delivered.
    pub delivered: bool,
    /// Epoch in which delivery happened (1-based).
    pub delivery_epoch: u32,
    /// Sender's total cost (slots transmitted).
    pub sender_cost: u64,
    /// Receiver's total cost (slots listened).
    pub receiver_cost: u64,
    /// Carol's total spend.
    pub carol_spend: u64,
    /// Global slots elapsed.
    pub slots: u64,
}

/// Runs the two-player protocol against a continuous jammer with budget
/// `T`.
///
/// # Example
///
/// ```
/// use rcb_baselines::ksy::{run_ksy, KsyConfig};
/// let outcome = run_ksy(&KsyConfig { carol_budget: 1_000, max_epochs: 30, seed: 1 });
/// assert!(outcome.delivered);
/// // Per-player cost is polynomially smaller than Carol's spend.
/// assert!(outcome.receiver_cost < outcome.carol_spend);
/// ```
#[must_use]
pub fn run_ksy(config: &KsyConfig) -> KsyOutcome {
    let seeds = SeedTree::new(config.seed);
    let mut sender_rng: SimRng = seeds.stream("ksy-sender", 0);
    let mut receiver_rng: SimRng = seeds.stream("ksy-receiver", 0);

    let mut carol_remaining = config.carol_budget;
    let mut sender_cost = 0u64;
    let mut receiver_cost = 0u64;
    let mut slots = 0u64;

    for epoch in 1..=config.max_epochs {
        let len = 1u64 << epoch;
        let r = (len as f64).powf(PHI - 1.0).ceil() as u64;
        let r = r.min(len);
        // Secret slot choices.
        let mut send_slots = sample_distinct(&mut sender_rng, len, r);
        let mut listen_slots = sample_distinct(&mut receiver_rng, len, r);
        send_slots.sort_unstable();
        listen_slots.sort_unstable();
        sender_cost += r;
        receiver_cost += r;

        // Coincidence slots (two-pointer intersection).
        let mut coincidences = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < send_slots.len() && j < listen_slots.len() {
            match send_slots[i].cmp(&listen_slots[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    coincidences.push(send_slots[i]);
                    i += 1;
                    j += 1;
                }
            }
        }

        // Carol jams the epoch's slots in order while budget lasts (she
        // cannot see the players' choices, so jamming a prefix is as good
        // as any fixed set against uniform choices).
        let jammed_prefix = carol_remaining.min(len);
        carol_remaining -= jammed_prefix;

        // Delivery iff some coincidence falls outside the jammed prefix.
        // Coincidence positions are uniform; compare against the prefix.
        let delivered_at = coincidences.iter().find(|&&s| s >= jammed_prefix).copied();
        if let Some(at) = delivered_at {
            // Receiver stops listening after success; refund the unused
            // tail of its listening plan (the sender, with no feedback,
            // finishes the epoch).
            let unused = listen_slots.iter().filter(|&&s| s > at).count() as u64;
            receiver_cost -= unused;
            slots += at + 1;
            return KsyOutcome {
                delivered: true,
                delivery_epoch: epoch,
                sender_cost,
                receiver_cost,
                carol_spend: config.carol_budget - carol_remaining,
                slots,
            };
        }
        slots += len;
        let _ = receiver_rng.gen::<u64>(); // epoch separator for stream hygiene
    }

    KsyOutcome {
        delivered: false,
        delivery_epoch: config.max_epochs,
        sender_cost,
        receiver_cost,
        carol_spend: config.carol_budget - carol_remaining,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_channel_delivers_in_early_epochs() {
        let o = run_ksy(&KsyConfig {
            carol_budget: 0,
            max_epochs: 20,
            seed: 1,
        });
        assert!(o.delivered);
        assert!(o.delivery_epoch <= 8, "epoch {}", o.delivery_epoch);
        assert_eq!(o.carol_spend, 0);
    }

    #[test]
    fn jamming_delays_delivery_until_budget_exhausted() {
        let t = 100_000u64;
        let o = run_ksy(&KsyConfig {
            carol_budget: t,
            max_epochs: 40,
            seed: 2,
        });
        assert!(o.delivered);
        // Delivery requires an epoch with unjammed tail: L_e ≳ T.
        assert!(
            (1u64 << o.delivery_epoch) * 4 >= t,
            "delivered too early: epoch {} vs T {t}",
            o.delivery_epoch
        );
        assert!(o.carol_spend <= t);
    }

    #[test]
    fn player_cost_exponent_is_sublinear_phi_like() {
        // Sweep T over two decades; fit the slope of log(cost) vs log(T).
        let mut points = Vec::new();
        for (i, t) in [1_000u64, 10_000, 100_000, 1_000_000].iter().enumerate() {
            let mut acc = 0.0;
            const TRIALS: u64 = 8;
            for trial in 0..TRIALS {
                let o = run_ksy(&KsyConfig {
                    carol_budget: *t,
                    max_epochs: 40,
                    seed: 1000 * i as u64 + trial,
                });
                assert!(o.delivered);
                acc += o.receiver_cost as f64;
            }
            points.push(((*t as f64).ln(), (acc / TRIALS as f64).ln()));
        }
        // Least-squares slope.
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (0.45..0.80).contains(&slope),
            "cost exponent {slope} should be ≈ φ−1 ≈ 0.618"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = KsyConfig {
            carol_budget: 5_000,
            max_epochs: 30,
            seed: 9,
        };
        let a = run_ksy(&cfg);
        let b = run_ksy(&cfg);
        assert_eq!(a.receiver_cost, b.receiver_cost);
        assert_eq!(a.delivery_epoch, b.delivery_epoch);
    }

    #[test]
    fn undelivered_when_epoch_cap_too_small() {
        let o = run_ksy(&KsyConfig {
            carol_budget: u64::MAX / 4,
            max_epochs: 10,
            seed: 3,
        });
        assert!(!o.delivered);
    }
}
