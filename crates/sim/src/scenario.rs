//! The `Scenario` builder: one entry point for protocol × engine ×
//! adversary.

use std::fmt;
use std::sync::Arc;

use rcb_adversary::StrategySpec;
use rcb_baselines::ksy::{run_ksy, KsyConfig, KsyOutcome};
use rcb_baselines::{
    execute_epidemic_soa_with, execute_kpsy_in, execute_naive_soa_with, EpidemicConfig,
    EpidemicSoaScratch, KpsyConfig, KpsyScratch, NaiveConfig, NaiveSoaScratch,
};
use rcb_core::fast::{run_fast_with, FastConfig};
use rcb_core::fast_mc::{run_fast_mc_epoch_with, run_fast_mc_with, McConfig};
use rcb_core::fluid::{run_fluid_epoch_with, run_fluid_with, FluidConfig};
use rcb_core::{
    execute_epoch_hopping_soa_with, execute_hopping_soa_with, BroadcastOutcome,
    BroadcastSoaScratch, EngineKind, EpochHoppingConfig, EpochHoppingSoaScratch, HoppingConfig,
    HoppingSoaScratch, Params, RunConfig,
};
use rcb_radio::{Budget, CostBreakdown, Spectrum};
use rcb_telemetry::{Collector, NoopCollector};

/// The statically-dispatched default collector: a `&NOOP` coerces to
/// `&dyn Collector` whose `enabled()` is `false`, so every hook in the
/// engines short-circuits.
static NOOP: NoopCollector = NoopCollector;

/// Default phase length (slots) of the `fast_mc` phase-level hopping
/// engine; override with [`ScenarioBuilder::phase_len`]. Re-exported
/// from `rcb_core::fast_mc` so the engine and the builder cannot
/// diverge: short enough that the frozen-informed-set approximation
/// tracks the exact engine (validated in experiment E13), long enough
/// that a run costs `O(horizon / phase_len · C)` instead of
/// `O(n · horizon)`.
pub use rcb_core::fast_mc::DEFAULT_PHASE_LEN as DEFAULT_MC_PHASE_LEN;

use crate::batch::run_trials_scoped_with;
use crate::outcome::ScenarioOutcome;

/// Which simulation engine executes a scenario.
///
/// Re-exported from `rcb_core`: [`Engine::Exact`] is the slot-by-slot
/// ground truth; [`Engine::Fast`] selects the phase-level aggregated
/// simulator — `rcb_core::fast` for ε-BROADCAST, `rcb_core::fast_mc`
/// for the multi-channel hopping workload; [`Engine::Fluid`] selects
/// the deterministic mean-field tier (`rcb_core::fluid`, hopping
/// protocols only) whose cost is independent of `n`.
pub use rcb_core::EngineKind as Engine;

/// Which protocol a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// ε-BROADCAST (Gilbert & Young, PODC 2012).
    Broadcast,
    /// The §1.1 naive always-on strawman.
    Naive,
    /// Epidemic gossip without backoff.
    Epidemic,
    /// The King–Saia–Young-style two-player comparator.
    Ksy,
    /// Multi-channel epidemic-style random-hopping broadcast.
    Hopping,
    /// Epoch-structured multi-channel hopping (the Chen–Zheng schedule:
    /// channels held for `epoch_len` slots, redrawn at boundaries).
    EpochHopping,
    /// The King–Pettie–Saia–Young `n`-player resource-competitive
    /// jamming defense (doubling epochs, secret sparse activity plans).
    Kpsy,
}

impl ProtocolKind {
    /// Whether this protocol can host a multi-channel spectrum
    /// (`Scenario::channels(c)` with `c > 1`, and with it the
    /// channel-aware adversary strategies).
    #[must_use]
    pub fn supports_channels(self) -> bool {
        matches!(self, ProtocolKind::Hopping | ProtocolKind::EpochHopping)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolKind::Broadcast => "ε-broadcast",
            ProtocolKind::Naive => "naive",
            ProtocolKind::Epidemic => "epidemic",
            ProtocolKind::Ksy => "ksy",
            ProtocolKind::Hopping => "hopping",
            ProtocolKind::EpochHopping => "epoch-hopping",
            ProtocolKind::Kpsy => "kpsy",
        })
    }
}

/// Configuration for [`Scenario::naive`] (budget and seed come from the
/// builder).
#[derive(Debug, Clone, Copy)]
pub struct NaiveSpec {
    /// Number of receiver nodes.
    pub n: u64,
    /// Alice transmits every slot until this horizon, then stops.
    pub horizon: u64,
}

/// Configuration for [`Scenario::epidemic`] (budget and seed come from
/// the builder).
#[derive(Debug, Clone, Copy)]
pub struct EpidemicSpec {
    /// Number of receiver nodes.
    pub n: u64,
    /// Hard stop.
    pub horizon: u64,
    /// Per-slot listen probability of uninformed nodes.
    pub listen_p: f64,
    /// Relay probability is `relay_rate / n`.
    pub relay_rate: f64,
}

impl EpidemicSpec {
    /// The default gossip shape: `listen_p = 0.5`, `relay_rate = 1.0`.
    #[must_use]
    pub fn new(n: u64, horizon: u64) -> Self {
        Self {
            n,
            horizon,
            listen_p: 0.5,
            relay_rate: 1.0,
        }
    }
}

/// Configuration for [`Scenario::hopping`] — the multi-channel
/// epidemic-style random-hopping broadcast (budget, seed, and the
/// channel count come from the builder; see
/// [`ScenarioBuilder::channels`]).
#[derive(Debug, Clone, Copy)]
pub struct HoppingSpec {
    /// Number of receiver nodes.
    pub n: u64,
    /// Hard stop.
    pub horizon: u64,
    /// Per-slot listen probability of uninformed nodes.
    pub listen_p: f64,
    /// Relay probability is `relay_rate / n`.
    pub relay_rate: f64,
}

impl HoppingSpec {
    /// The default gossip shape: `listen_p = 0.5`, `relay_rate = 1.0`.
    #[must_use]
    pub fn new(n: u64, horizon: u64) -> Self {
        Self {
            n,
            horizon,
            listen_p: 0.5,
            relay_rate: 1.0,
        }
    }
}

/// Configuration for [`Scenario::epoch_hopping`] — the epoch-structured
/// multi-channel broadcast of Chen–Zheng (budget, seed, and channel
/// count come from the builder; see [`ScenarioBuilder::channels`]).
#[derive(Debug, Clone, Copy)]
pub struct EpochHoppingSpec {
    /// Number of receiver nodes.
    pub n: u64,
    /// Hard stop.
    pub horizon: u64,
    /// Per-slot listen probability of uninformed nodes.
    pub listen_p: f64,
    /// Relay probability is `relay_rate / n`.
    pub relay_rate: f64,
    /// Epoch length `L` in slots: every device holds its channel for `L`
    /// consecutive slots and redraws only at epoch boundaries.
    /// [`ScenarioBuilder::build`] rejects 0 with
    /// [`ScenarioError::InvalidConfig`].
    pub epoch_len: u64,
}

impl EpochHoppingSpec {
    /// The default gossip shape: `listen_p = 0.5`, `relay_rate = 1.0`.
    #[must_use]
    pub fn new(n: u64, horizon: u64, epoch_len: u64) -> Self {
        Self {
            n,
            horizon,
            listen_p: 0.5,
            relay_rate: 1.0,
            epoch_len,
        }
    }
}

/// Configuration for [`Scenario::kpsy`] — the `n`-player KPSY jamming
/// defense (budget and seed come from the builder).
#[derive(Debug, Clone, Copy)]
pub struct KpsySpec {
    /// Number of receiver nodes.
    pub n: u64,
    /// Hard stop. Epochs double, so a horizon of `2^{e+1} − 2` runs
    /// exactly `e` whole epochs.
    pub horizon: u64,
}

/// Configuration for [`Scenario::ksy`] (the jamming budget `T` comes from
/// the builder's `carol_budget`).
#[derive(Debug, Clone, Copy)]
pub struct KsySpec {
    /// Stop after this many epochs even if undelivered.
    pub max_epochs: u32,
}

impl Default for KsySpec {
    fn default() -> Self {
        Self { max_epochs: 40 }
    }
}

#[derive(Debug, Clone)]
enum ProtocolSpec {
    Broadcast(Box<Params>),
    Naive(NaiveSpec),
    Epidemic(EpidemicSpec),
    Ksy(KsySpec),
    Hopping(HoppingSpec),
    EpochHopping(EpochHoppingSpec),
    Kpsy(KpsySpec),
}

impl ProtocolSpec {
    fn kind(&self) -> ProtocolKind {
        match self {
            ProtocolSpec::Broadcast(_) => ProtocolKind::Broadcast,
            ProtocolSpec::Naive(_) => ProtocolKind::Naive,
            ProtocolSpec::Epidemic(_) => ProtocolKind::Epidemic,
            ProtocolSpec::Ksy(_) => ProtocolKind::Ksy,
            ProtocolSpec::Hopping(_) => ProtocolKind::Hopping,
            ProtocolSpec::EpochHopping(_) => ProtocolKind::EpochHopping,
            ProtocolSpec::Kpsy(_) => ProtocolKind::Kpsy,
        }
    }
}

/// A protocol × engine × adversary combination rejected at build time.
///
/// Every variant names the conflicting pieces so experiment sweeps can
/// filter combinations instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The engine cannot run this protocol (the fast simulators model
    /// ε-BROADCAST's phase structure and the hopping workload only).
    UnsupportedEngine {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The requested engine.
        engine: Engine,
    },
    /// The strategy has no phase-level model, so the fast simulator
    /// cannot host it (e.g. `StrategySpec::LaggedReactive`).
    SlotOnlyStrategy {
        /// The offending strategy's stable name.
        strategy: String,
    },
    /// The strategy is defined in terms of the ε-BROADCAST round/phase
    /// schedule, which this protocol does not have.
    ScheduleBoundStrategy {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The offending strategy's stable name.
        strategy: String,
    },
    /// The protocol's execution model cannot host this adversary at all
    /// (the two-player KSY comparator has a built-in continuous jammer).
    UnsupportedAdversary {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The offending strategy's stable name.
        strategy: String,
    },
    /// Slot tracing was requested from an engine that records no slots
    /// (the phase-level fast simulator, or the closed-form KSY
    /// comparator).
    TraceUnsupported {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The requested engine.
        engine: Engine,
    },
    /// This combination needs a finite Carol budget (a KSY run against
    /// the continuous jammer is parameterised by her budget `T`).
    BudgetRequired {
        /// The requested protocol.
        protocol: ProtocolKind,
    },
    /// A multi-channel spectrum was requested for a protocol pinned to
    /// the single-channel model.
    MultiChannelUnsupported {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The requested channel count.
        channels: u16,
    },
    /// A channel-aware strategy was paired with a protocol that cannot
    /// host a multi-channel spectrum.
    ChannelStrategyUnsupported {
        /// The requested protocol.
        protocol: ProtocolKind,
        /// The offending strategy's stable name.
        strategy: String,
    },
    /// A protocol configuration value was out of range.
    InvalidConfig(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnsupportedEngine { protocol, engine } => write!(
                f,
                "the {engine:?} engine cannot run the {protocol} protocol"
            ),
            ScenarioError::SlotOnlyStrategy { strategy } => write!(
                f,
                "strategy {strategy} is slot-only and has no phase-level model for the fast engine"
            ),
            ScenarioError::ScheduleBoundStrategy { protocol, strategy } => write!(
                f,
                "strategy {strategy} targets the ε-BROADCAST round schedule, which the \
                 {protocol} protocol does not have"
            ),
            ScenarioError::UnsupportedAdversary { protocol, strategy } => write!(
                f,
                "the {protocol} protocol cannot host the {strategy} strategy"
            ),
            ScenarioError::TraceUnsupported { protocol, engine } => write!(
                f,
                "slot tracing is unavailable for {protocol} on the {engine:?} engine; \
                 attach a collector via ScenarioBuilder::telemetry for phase-level \
                 events and metrics instead"
            ),
            ScenarioError::BudgetRequired { protocol } => {
                write!(f, "the {protocol} protocol requires a finite carol_budget")
            }
            ScenarioError::MultiChannelUnsupported { protocol, channels } => write!(
                f,
                "the {protocol} protocol is pinned to the single-channel model and cannot \
                 run on {channels} channels"
            ),
            ScenarioError::ChannelStrategyUnsupported { protocol, strategy } => write!(
                f,
                "strategy {strategy} is channel-aware, which the {protocol} protocol \
                 cannot host"
            ),
            ScenarioError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A validated, runnable scenario.
///
/// Build one with [`Scenario::broadcast`], [`Scenario::naive`],
/// [`Scenario::epidemic`], or [`Scenario::ksy`], compose engine /
/// adversary / budget / seed on the returned [`ScenarioBuilder`], and
/// execute with [`run`](Scenario::run) (one execution) or
/// [`run_batch`](Scenario::run_batch) (parallel trials with derived
/// seeds and scratch reuse).
///
/// # Example
///
/// ```
/// use rcb_adversary::StrategySpec;
/// use rcb_sim::{Engine, Scenario};
/// use rcb_core::Params;
///
/// let params = Params::builder(64).build()?;
/// let outcome = Scenario::broadcast(params)
///     .adversary(StrategySpec::Continuous)
///     .carol_budget(2_000)
///     .seed(42)
///     .build()?
///     .run();
/// assert!(outcome.informed_fraction() > 0.9); // she cannot stop the broadcast
/// assert_eq!(outcome.carol_spend(), 2_000); // and she paid for trying
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    protocol: ProtocolSpec,
    engine: Engine,
    adversary: StrategySpec,
    carol_budget: Option<u64>,
    enforce_correct_budgets: bool,
    trace_capacity: usize,
    channels: u16,
    mc_phase_len: u64,
    threads: Option<usize>,
    seed: u64,
    telemetry: Option<Arc<dyn Collector>>,
}

/// Reusable per-worker scratch for batched scenario execution.
///
/// Holds one scratch per exact-engine protocol family (roster, budget
/// vector, and the engine's [`rcb_radio::EngineScratch`] working
/// buffers); a batch worker resets them in place across its trials, so
/// steady-state trial execution performs no per-trial allocation beyond
/// the outcome itself.
#[derive(Debug, Default)]
pub struct ScenarioScratch {
    broadcast_soa: BroadcastSoaScratch,
    hopping_soa: HoppingSoaScratch,
    naive_soa: NaiveSoaScratch,
    epidemic_soa: EpidemicSoaScratch,
    epoch_hopping_soa: EpochHoppingSoaScratch,
    kpsy: KpsyScratch,
}

impl ScenarioScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scenario {
    /// Starts building an ε-BROADCAST scenario.
    #[must_use]
    pub fn broadcast(params: Params) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Broadcast(Box::new(params)))
    }

    /// Starts building a naive always-on broadcast scenario.
    #[must_use]
    pub fn naive(spec: NaiveSpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Naive(spec))
    }

    /// Starts building an epidemic-gossip scenario.
    #[must_use]
    pub fn epidemic(spec: EpidemicSpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Epidemic(spec))
    }

    /// Starts building a KSY-style two-player scenario.
    #[must_use]
    pub fn ksy(spec: KsySpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Ksy(spec))
    }

    /// Starts building a multi-channel random-hopping broadcast scenario
    /// (set the channel count with [`ScenarioBuilder::channels`]).
    #[must_use]
    pub fn hopping(spec: HoppingSpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Hopping(spec))
    }

    /// Starts building an epoch-structured hopping scenario — the
    /// Chen–Zheng schedule, where each device holds its channel for
    /// `spec.epoch_len` slots (set the channel count with
    /// [`ScenarioBuilder::channels`]).
    #[must_use]
    pub fn epoch_hopping(spec: EpochHoppingSpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::EpochHopping(spec))
    }

    /// Starts building a KPSY jamming-defense scenario: `n` players with
    /// secret `O(L^{φ−1})`-slot activity plans per doubling epoch, on
    /// the exact engine only.
    #[must_use]
    pub fn kpsy(spec: KpsySpec) -> ScenarioBuilder {
        ScenarioBuilder::new(ProtocolSpec::Kpsy(spec))
    }

    /// Which protocol this scenario runs.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol.kind()
    }

    /// Which engine executes it.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The adversary strategy.
    #[must_use]
    pub fn adversary(&self) -> StrategySpec {
        self.adversary
    }

    /// The master seed [`run`](Self::run) uses and
    /// [`run_batch`](Self::run_batch) derives per-trial seeds from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of channels this scenario runs on (1 = the single-channel
    /// model of the source paper).
    #[must_use]
    pub fn channels(&self) -> u16 {
        self.channels
    }

    /// The spectrum this scenario runs on.
    #[must_use]
    pub fn spectrum(&self) -> Spectrum {
        Spectrum::new(self.channels)
    }

    /// The ε-BROADCAST parameters, when this is a broadcast scenario.
    #[must_use]
    pub fn params(&self) -> Option<&Params> {
        match &self.protocol {
            ProtocolSpec::Broadcast(params) => Some(params),
            _ => None,
        }
    }

    /// The attached telemetry collector, if any (see
    /// [`ScenarioBuilder::telemetry`]).
    #[must_use]
    pub fn telemetry(&self) -> Option<&Arc<dyn Collector>> {
        self.telemetry.as_ref()
    }

    /// The collector every engine run receives: the attached one, or the
    /// disabled noop singleton.
    fn collector(&self) -> &dyn Collector {
        self.telemetry.as_deref().unwrap_or(&NOOP)
    }

    /// Runs the scenario once with its master seed.
    #[must_use]
    pub fn run(&self) -> ScenarioOutcome {
        self.run_seeded(self.seed)
    }

    /// Runs the scenario once with an explicit seed (the master seed is
    /// ignored).
    #[must_use]
    pub fn run_seeded(&self, seed: u64) -> ScenarioOutcome {
        self.run_in(&mut ScenarioScratch::new(), seed)
    }

    /// Runs the scenario once, reusing caller-owned scratch allocations —
    /// the single-threaded counterpart of [`run_batch`](Self::run_batch).
    #[must_use]
    pub fn run_in(&self, scratch: &mut ScenarioScratch, seed: u64) -> ScenarioOutcome {
        match &self.protocol {
            ProtocolSpec::Broadcast(params) => match self.engine {
                Engine::Exact => self.run_broadcast_exact(scratch, params, seed),
                Engine::Fast => self.run_broadcast_fast(params, seed),
                Engine::Fluid => unreachable!("validated at build: fluid runs hopping only"),
            },
            ProtocolSpec::Naive(spec) => self.run_naive(scratch, *spec, seed),
            ProtocolSpec::Epidemic(spec) => self.run_epidemic(scratch, *spec, seed),
            ProtocolSpec::Ksy(spec) => self.run_ksy(*spec, seed),
            ProtocolSpec::Hopping(spec) => self.run_hopping(scratch, *spec, seed),
            ProtocolSpec::EpochHopping(spec) => self.run_epoch_hopping(scratch, *spec, seed),
            ProtocolSpec::Kpsy(spec) => self.run_kpsy(scratch, *spec, seed),
        }
    }

    /// The worker-thread override for [`run_batch`](Self::run_batch)
    /// (`None` = `RCB_THREADS` env var, then `available_parallelism`).
    #[must_use]
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Runs `trials` independent executions in parallel and returns their
    /// outcomes in trial order.
    ///
    /// Per-trial seeds are derived as `SeedTree::new(self.seed)
    /// .leaf_seed("trial", index)` — identical to the analysis harness's
    /// historical derivation, and independent of thread scheduling. Each
    /// worker thread owns one [`ScenarioScratch`], so rosters and budget
    /// vectors are reset in place across the trials it executes instead
    /// of being reallocated per trial. The worker count follows
    /// [`ScenarioBuilder::threads`], the `RCB_THREADS` environment
    /// variable, or `available_parallelism`, in that order — the choice
    /// never changes the outcomes.
    #[must_use]
    pub fn run_batch(&self, trials: u32) -> Vec<ScenarioOutcome> {
        run_trials_scoped_with(
            self.threads,
            self.seed,
            trials,
            ScenarioScratch::new,
            |scratch, seed| self.run_in(scratch, seed),
        )
    }

    fn carol_budget_as_budget(&self) -> Budget {
        match self.carol_budget {
            Some(units) => Budget::limited(units),
            None => Budget::unlimited(),
        }
    }

    fn outcome(
        &self,
        broadcast: BroadcastOutcome,
        seed: u64,
        ksy: Option<KsyOutcome>,
    ) -> ScenarioOutcome {
        ScenarioOutcome {
            protocol: self.protocol.kind(),
            strategy: self.adversary.name(),
            seed,
            broadcast,
            ksy,
            stop_reason: None,
            participant_refusals: None,
            channel_stats: None,
            trace: None,
            telemetry: self.telemetry.as_deref().and_then(Collector::snapshot),
        }
    }

    fn run_broadcast_exact(
        &self,
        scratch: &mut ScenarioScratch,
        params: &Params,
        seed: u64,
    ) -> ScenarioOutcome {
        let mut adversary = self.adversary.slot_adversary(params, seed);
        let config = RunConfig {
            carol_budget: self.carol_budget_as_budget(),
            enforce_correct_budgets: self.enforce_correct_budgets,
            trace_capacity: self.trace_capacity,
            seed,
        };
        let (broadcast, report) =
            scratch
                .broadcast_soa
                .run_with(params, adversary.as_mut(), &config, self.collector());
        self.exact_outcome(broadcast, report, seed)
    }

    fn run_hopping(
        &self,
        scratch: &mut ScenarioScratch,
        spec: HoppingSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        match self.engine {
            Engine::Exact => self.run_hopping_exact(scratch, spec, seed),
            Engine::Fast => self.run_hopping_fast(spec, seed),
            Engine::Fluid => self.run_hopping_fluid(spec, seed),
        }
    }

    fn run_hopping_exact(
        &self,
        scratch: &mut ScenarioScratch,
        spec: HoppingSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        let config = HoppingConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            carol_budget: self.carol_budget_as_budget(),
            trace_capacity: self.trace_capacity,
            seed,
        };
        let mut adversary = self
            .adversary
            .schedule_free_slot_adversary_on(self.spectrum(), seed)
            .expect("validated at build: strategy is schedule-free");
        let (broadcast, report) = execute_hopping_soa_with(
            &config,
            self.spectrum(),
            adversary.as_mut(),
            &mut scratch.hopping_soa,
            self.collector(),
        );
        self.exact_outcome(broadcast, report, seed)
    }

    /// The phase-level multi-channel engine (`rcb_core::fast_mc`):
    /// phase-granularity aggregates instead of per-node slots, with
    /// [`ScenarioOutcome::channel_stats`] populated from the engine's
    /// per-channel tallies.
    fn run_hopping_fast(&self, spec: HoppingSpec, seed: u64) -> ScenarioOutcome {
        let config = McConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            phase_len: self.mc_phase_len,
            carol_budget: self.carol_budget,
            seed,
        };
        let mut jammer = self
            .adversary
            .phase_jammer(self.spectrum(), seed)
            .expect("validated at build: strategy has a phase-mc model");
        let (broadcast, channel_stats) =
            run_fast_mc_with(&config, self.spectrum(), jammer.as_mut(), self.collector());
        let mut outcome = self.outcome(broadcast, seed, None);
        outcome.channel_stats = Some(channel_stats);
        outcome
    }

    /// The deterministic mean-field tier (`rcb_core::fluid`): one f64
    /// recurrence per phase × channel, no RNG, cost independent of `n`.
    /// The `seed` is recorded in the outcome for provenance but never
    /// consumed — every seed produces the identical expectation run.
    fn run_hopping_fluid(&self, spec: HoppingSpec, seed: u64) -> ScenarioOutcome {
        let config = FluidConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            phase_len: self.mc_phase_len,
            carol_budget: self.carol_budget,
        };
        let mut jammer = self
            .adversary
            .fluid_jammer(self.spectrum())
            .expect("validated at build: strategy has a fluid model");
        let (broadcast, channel_stats) =
            run_fluid_with(&config, self.spectrum(), jammer.as_mut(), self.collector());
        let mut outcome = self.outcome(broadcast, seed, None);
        outcome.channel_stats = Some(channel_stats);
        outcome
    }

    fn run_epoch_hopping(
        &self,
        scratch: &mut ScenarioScratch,
        spec: EpochHoppingSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        match self.engine {
            Engine::Exact => self.run_epoch_hopping_exact(scratch, spec, seed),
            Engine::Fast => self.run_epoch_hopping_fast(spec, seed),
            Engine::Fluid => self.run_epoch_hopping_fluid(spec, seed),
        }
    }

    fn run_epoch_hopping_exact(
        &self,
        scratch: &mut ScenarioScratch,
        spec: EpochHoppingSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        let config = EpochHoppingConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            epoch_len: spec.epoch_len,
            carol_budget: self.carol_budget_as_budget(),
            trace_capacity: self.trace_capacity,
            seed,
        };
        let mut adversary = self
            .adversary
            .schedule_free_slot_adversary_on(self.spectrum(), seed)
            .expect("validated at build: strategy is schedule-free");
        let (broadcast, report) = execute_epoch_hopping_soa_with(
            &config,
            self.spectrum(),
            adversary.as_mut(),
            &mut scratch.epoch_hopping_soa,
            self.collector(),
        );
        self.exact_outcome(broadcast, report, seed)
    }

    /// The epoch-aware phase lowering (`rcb_core::fast_mc`): one phase
    /// per epoch, per-channel rendezvous from the held-channel census.
    /// The epoch length *is* the phase length, so the `phase_len` knob
    /// is rejected at build time for this protocol.
    fn run_epoch_hopping_fast(&self, spec: EpochHoppingSpec, seed: u64) -> ScenarioOutcome {
        let config = McConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            phase_len: spec.epoch_len,
            carol_budget: self.carol_budget,
            seed,
        };
        let mut jammer = self
            .adversary
            .phase_jammer(self.spectrum(), seed)
            .expect("validated at build: strategy has a phase-mc model");
        let (broadcast, channel_stats) = run_fast_mc_epoch_with(
            &config,
            spec.epoch_len,
            self.spectrum(),
            jammer.as_mut(),
            self.collector(),
        );
        let mut outcome = self.outcome(broadcast, seed, None);
        outcome.channel_stats = Some(channel_stats);
        outcome
    }

    /// The epoch-census fluid tier (`rcb_core::fluid`): deterministic
    /// per-channel uninformed/relay masses with expectation-averaged
    /// boundary redraws. One phase per epoch, like the fast lowering.
    fn run_epoch_hopping_fluid(&self, spec: EpochHoppingSpec, seed: u64) -> ScenarioOutcome {
        let config = FluidConfig {
            n: spec.n,
            horizon: spec.horizon,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            phase_len: spec.epoch_len,
            carol_budget: self.carol_budget,
        };
        let mut jammer = self
            .adversary
            .fluid_jammer(self.spectrum())
            .expect("validated at build: strategy has a fluid model");
        let (broadcast, channel_stats) = run_fluid_epoch_with(
            &config,
            spec.epoch_len,
            self.spectrum(),
            jammer.as_mut(),
            self.collector(),
        );
        let mut outcome = self.outcome(broadcast, seed, None);
        outcome.channel_stats = Some(channel_stats);
        outcome
    }

    /// KPSY runs slot-by-slot on the exact roster engine in **both**
    /// eras: its sparse secret schedules defeat the SoA engine's
    /// aggregated listener settlement, so there is deliberately one
    /// slot-level implementation (see `rcb_baselines::execute_kpsy`).
    fn run_kpsy(
        &self,
        scratch: &mut ScenarioScratch,
        spec: KpsySpec,
        seed: u64,
    ) -> ScenarioOutcome {
        let config = KpsyConfig {
            n: spec.n,
            horizon: spec.horizon,
            carol_budget: self.carol_budget_as_budget(),
            trace_capacity: self.trace_capacity,
            seed,
        };
        let (broadcast, report) = execute_kpsy_in(
            &config,
            self.schedule_free_adversary(seed).as_mut(),
            &mut scratch.kpsy,
        );
        self.exact_outcome(broadcast, report, seed)
    }

    /// Folds an exact-engine report's extras into the outcome.
    fn exact_outcome(
        &self,
        broadcast: BroadcastOutcome,
        report: rcb_radio::RunReport,
        seed: u64,
    ) -> ScenarioOutcome {
        let mut outcome = self.outcome(broadcast, seed, None);
        outcome.stop_reason = Some(report.stop_reason);
        outcome.participant_refusals = Some(report.participant_refusals);
        outcome.channel_stats = Some(report.channel_stats);
        if self.trace_capacity > 0 {
            outcome.trace = Some(report.trace);
        }
        outcome
    }

    fn run_broadcast_fast(&self, params: &Params, seed: u64) -> ScenarioOutcome {
        let mut adversary = self
            .adversary
            .phase_adversary(params, seed)
            .expect("validated at build: strategy has a phase model");
        let mut config = FastConfig::seeded(seed);
        if let Some(units) = self.carol_budget {
            config = config.carol_budget(units);
        }
        let broadcast = run_fast_with(params, adversary.as_mut(), &config, self.collector());
        self.outcome(broadcast, seed, None)
    }

    fn schedule_free_adversary(&self, seed: u64) -> Box<dyn rcb_radio::Adversary> {
        self.adversary
            .schedule_free_slot_adversary(seed)
            .expect("validated at build: strategy is schedule-free")
    }

    fn run_naive(
        &self,
        scratch: &mut ScenarioScratch,
        spec: NaiveSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        let config = NaiveConfig {
            n: spec.n,
            horizon: spec.horizon,
            carol_budget: self.carol_budget_as_budget(),
            trace_capacity: self.trace_capacity,
            seed,
        };
        let (broadcast, report) = execute_naive_soa_with(
            &config,
            self.schedule_free_adversary(seed).as_mut(),
            &mut scratch.naive_soa,
            self.collector(),
        );
        self.exact_outcome(broadcast, report, seed)
    }

    fn run_epidemic(
        &self,
        scratch: &mut ScenarioScratch,
        spec: EpidemicSpec,
        seed: u64,
    ) -> ScenarioOutcome {
        let config = EpidemicConfig {
            n: spec.n,
            listen_p: spec.listen_p,
            relay_rate: spec.relay_rate,
            horizon: spec.horizon,
            carol_budget: self.carol_budget_as_budget(),
            trace_capacity: self.trace_capacity,
            seed,
        };
        let (broadcast, report) = execute_epidemic_soa_with(
            &config,
            self.schedule_free_adversary(seed).as_mut(),
            &mut scratch.epidemic_soa,
            self.collector(),
        );
        self.exact_outcome(broadcast, report, seed)
    }

    fn run_ksy(&self, spec: KsySpec, seed: u64) -> ScenarioOutcome {
        // Silent Carol = a zero-budget jammer; otherwise the budget was
        // validated finite at build time.
        let budget = match self.adversary {
            StrategySpec::Silent => 0,
            _ => self.carol_budget.expect("validated at build"),
        };
        let ksy = run_ksy(&KsyConfig {
            carol_budget: budget,
            max_epochs: spec.max_epochs,
            seed,
        });
        let broadcast = BroadcastOutcome {
            n: 1,
            informed_nodes: u64::from(ksy.delivered),
            uninformed_terminated: 0,
            unterminated_nodes: 1 - u64::from(ksy.delivered),
            alice_terminated: ksy.delivered,
            alice_cost: CostBreakdown {
                sends: ksy.sender_cost,
                listens: 0,
                jams: 0,
            },
            node_total_cost: CostBreakdown {
                sends: 0,
                listens: ksy.receiver_cost,
                jams: 0,
            },
            max_node_cost: Some(ksy.receiver_cost),
            carol_cost: CostBreakdown {
                sends: 0,
                listens: 0,
                jams: ksy.carol_spend,
            },
            slots: ksy.slots,
            rounds_entered: ksy.delivery_epoch,
            engine: EngineKind::Exact,
            node_costs: None,
        };
        self.outcome(broadcast, seed, Some(ksy))
    }
}

/// Builder for [`Scenario`]; see [`Scenario::broadcast`] and friends.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    protocol: ProtocolSpec,
    engine: Engine,
    adversary: StrategySpec,
    carol_budget: Option<u64>,
    enforce_correct_budgets: bool,
    trace: Option<usize>,
    channels: u16,
    phase_len: Option<u64>,
    threads: Option<usize>,
    seed: u64,
    telemetry: Option<Arc<dyn Collector>>,
}

impl ScenarioBuilder {
    fn new(protocol: ProtocolSpec) -> Self {
        Self {
            protocol,
            engine: Engine::Exact,
            adversary: StrategySpec::Silent,
            carol_budget: None,
            enforce_correct_budgets: true,
            trace: None,
            channels: 1,
            phase_len: None,
            threads: None,
            seed: 0,
            telemetry: None,
        }
    }

    /// Selects the simulation engine (default [`Engine::Exact`]).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the adversary strategy (default [`StrategySpec::Silent`]).
    #[must_use]
    pub fn adversary(mut self, adversary: StrategySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Caps Carol's pooled budget (default unlimited).
    #[must_use]
    pub fn carol_budget(mut self, units: u64) -> Self {
        self.carol_budget = Some(units);
        self
    }

    /// Lifts Carol's budget cap (measure pure strategy shapes).
    #[must_use]
    pub fn carol_unlimited(mut self) -> Self {
        self.carol_budget = None;
        self
    }

    /// Disables correct-side budget enforcement (exact ε-BROADCAST only;
    /// the fast simulator and the baselines never enforce them).
    #[must_use]
    pub fn unconstrained_correct(mut self) -> Self {
        self.enforce_correct_budgets = false;
        self
    }

    /// Enables slot tracing with the given capacity.
    ///
    /// Every protocol that simulates slots on the exact engine records a
    /// trace: ε-BROADCAST, the naive and epidemic baselines, and the
    /// hopping workload. [`build`](Self::build) rejects tracing on the
    /// phase-level fast simulator and on KSY (neither records slots) with
    /// [`ScenarioError::TraceUnsupported`] — even at capacity 0 — and a
    /// zero capacity elsewhere with [`ScenarioError::InvalidConfig`]. On
    /// engines that cannot trace, attach a collector with
    /// [`telemetry`](Self::telemetry) instead: it captures per-phase
    /// events and metrics on every engine.
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = Some(capacity);
        self
    }

    /// Sets the number of radio channels (default 1, the single-channel
    /// model of the source paper — a scenario built with `channels(1)` is
    /// byte-identical to one that never called this).
    ///
    /// `c > 1` requires a protocol that hosts a multi-channel spectrum
    /// (currently [`Scenario::hopping`]); [`build`](Self::build) rejects
    /// other combinations with
    /// [`ScenarioError::MultiChannelUnsupported`].
    #[must_use]
    pub fn channels(mut self, c: u16) -> Self {
        self.channels = c;
        self
    }

    /// Sets the phase length (slots) of the phase-level multi-channel
    /// engines (default [`DEFAULT_MC_PHASE_LEN`]).
    ///
    /// Only meaningful for `Scenario::hopping` on [`Engine::Fast`] or
    /// [`Engine::Fluid`]; [`build`](Self::build) rejects it anywhere
    /// else (and a zero length) with [`ScenarioError::InvalidConfig`].
    /// Shorter phases track the exact engine more closely; longer phases
    /// run faster.
    #[must_use]
    pub fn phase_len(mut self, slots: u64) -> Self {
        self.phase_len = Some(slots);
        self
    }

    /// Overrides the worker-thread count used by
    /// [`Scenario::run_batch`].
    ///
    /// Defaults to the `RCB_THREADS` environment variable, then
    /// `available_parallelism`. Outcomes are identical at any worker
    /// count (per-trial seeds are derived from the master seed, not
    /// shared state); the knob exists so bench harnesses can measure
    /// single-core throughput (`threads(1)`) and thread scaling.
    /// [`build`](Self::build) rejects 0 with
    /// [`ScenarioError::InvalidConfig`].
    #[must_use]
    pub fn threads(mut self, workers: usize) -> Self {
        self.threads = Some(workers);
        self
    }

    /// Sets the master seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a telemetry collector (see `rcb_telemetry`); every run
    /// then routes engine metrics, per-phase events, and profile
    /// flushes through it, and the resulting
    /// [`ScenarioOutcome::telemetry`](crate::ScenarioOutcome::telemetry)
    /// carries a snapshot when the collector records one.
    ///
    /// Works on **every** protocol × engine combination, including the
    /// phase-level fast simulators that cannot record slot traces — it
    /// is the observability path for exactly those engines. Telemetry
    /// is observational only: outcomes are byte-identical with and
    /// without a collector (pinned by the workspace's
    /// telemetry-neutrality suite). The collector is shared across
    /// [`Scenario::run_batch`] workers, so a recording collector
    /// aggregates over all trials of a batch.
    #[must_use]
    pub fn telemetry(mut self, collector: Arc<dyn Collector>) -> Self {
        self.telemetry = Some(collector);
        self
    }

    /// Validates the combination and produces a runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] the combination violates; see
    /// that type for the full compatibility matrix.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let protocol = self.protocol.kind();

        // Engine × protocol × adversary: three aggregated simulators
        // exist — `fast` for ε-BROADCAST's round schedule, `fast_mc` for
        // the multi-channel hopping workload, and the deterministic
        // `fluid` mean-field tier for the hopping workload only — and
        // each hosts only the strategies with a model at its
        // granularity.
        if self.engine == Engine::Fast {
            match protocol {
                ProtocolKind::Broadcast => {
                    if !self.adversary.supports_phase() {
                        return Err(ScenarioError::SlotOnlyStrategy {
                            strategy: self.adversary.name(),
                        });
                    }
                }
                ProtocolKind::Hopping | ProtocolKind::EpochHopping => {
                    if !self.adversary.supports_phase_mc() && !self.adversary.requires_schedule() {
                        return Err(ScenarioError::SlotOnlyStrategy {
                            strategy: self.adversary.name(),
                        });
                    }
                    // Schedule-bound strategies fall through to the
                    // protocol × adversary check below, which names the
                    // more precise error.
                }
                _ => {
                    return Err(ScenarioError::UnsupportedEngine {
                        protocol,
                        engine: self.engine,
                    });
                }
            }
        }
        if self.engine == Engine::Fluid {
            match protocol {
                ProtocolKind::Hopping | ProtocolKind::EpochHopping => {
                    if !self.adversary.supports_fluid() && !self.adversary.requires_schedule() {
                        return Err(ScenarioError::SlotOnlyStrategy {
                            strategy: self.adversary.name(),
                        });
                    }
                    // Schedule-bound strategies fall through to the
                    // protocol × adversary check below.
                }
                _ => {
                    return Err(ScenarioError::UnsupportedEngine {
                        protocol,
                        engine: self.engine,
                    });
                }
            }
        }

        // The phase length is a fast_mc knob; naming it anywhere else is
        // a configuration error, not a silent no-op.
        let mc_phase_len = match self.phase_len {
            None => DEFAULT_MC_PHASE_LEN,
            Some(0) => {
                return Err(ScenarioError::InvalidConfig(
                    "phase length must be at least one slot".into(),
                ));
            }
            Some(slots) => {
                let phase_level_engine =
                    self.engine == Engine::Fast || self.engine == Engine::Fluid;
                if !phase_level_engine || protocol != ProtocolKind::Hopping {
                    return Err(ScenarioError::InvalidConfig(format!(
                        "phase_len applies to the phase-level multi-channel engines only \
                         (hopping on the Fast or Fluid engine), not {protocol} on {:?}",
                        self.engine
                    )));
                }
                slots
            }
        };

        // A zero-thread batch cannot make progress.
        if self.threads == Some(0) {
            return Err(ScenarioError::InvalidConfig(
                "run_batch needs at least one worker thread".into(),
            ));
        }

        // Spectrum: a multi-channel run needs a channel-capable protocol,
        // and channel-aware strategies need one too (even at C = 1 — a
        // budget splitter makes no sense against a protocol pinned to a
        // single channel).
        if self.channels == 0 {
            return Err(ScenarioError::InvalidConfig(
                "a scenario needs at least one channel".into(),
            ));
        }
        if self.channels > 1 && !protocol.supports_channels() {
            return Err(ScenarioError::MultiChannelUnsupported {
                protocol,
                channels: self.channels,
            });
        }
        if self.adversary.requires_channels() && !protocol.supports_channels() {
            return Err(ScenarioError::ChannelStrategyUnsupported {
                protocol,
                strategy: self.adversary.name(),
            });
        }
        if let StrategySpec::ChannelSweep { dwell: 0 } = self.adversary {
            return Err(ScenarioError::InvalidConfig(
                "channel-sweep dwell must be at least one slot".into(),
            ));
        }
        if let StrategySpec::Adaptive { window, reactivity } = self.adversary {
            if window == 0 {
                return Err(ScenarioError::InvalidConfig(
                    "adaptive window must be at least one slot".into(),
                ));
            }
            if !(reactivity > 0.0 && reactivity <= 1.0 && reactivity.is_finite()) {
                return Err(ScenarioError::InvalidConfig(format!(
                    "adaptive reactivity must be in (0, 1], got {reactivity}"
                )));
            }
        }

        // Protocol × adversary.
        match protocol {
            ProtocolKind::Broadcast => {}
            ProtocolKind::Naive
            | ProtocolKind::Epidemic
            | ProtocolKind::Hopping
            | ProtocolKind::EpochHopping
            | ProtocolKind::Kpsy => {
                if self.adversary.requires_schedule() {
                    return Err(ScenarioError::ScheduleBoundStrategy {
                        protocol,
                        strategy: self.adversary.name(),
                    });
                }
            }
            ProtocolKind::Ksy => match self.adversary {
                StrategySpec::Silent => {}
                StrategySpec::Continuous => {
                    if self.carol_budget.is_none() {
                        return Err(ScenarioError::BudgetRequired { protocol });
                    }
                }
                other => {
                    return Err(ScenarioError::UnsupportedAdversary {
                        protocol,
                        strategy: other.name(),
                    });
                }
            },
        }

        // Tracing exists wherever a recording engine simulates slots one
        // by one: every protocol on the exact engine except the
        // closed-form KSY comparator. The phase-level fast simulator
        // records no slots — that check comes first, so a traceless
        // engine is named as such even at capacity 0 (the typed error
        // points at the telemetry alternative).
        let trace_capacity = match self.trace {
            None => 0,
            Some(capacity) => {
                if self.engine != Engine::Exact || protocol == ProtocolKind::Ksy {
                    return Err(ScenarioError::TraceUnsupported {
                        protocol,
                        engine: self.engine,
                    });
                }
                if capacity == 0 {
                    return Err(ScenarioError::InvalidConfig(
                        "slot tracing needs a nonzero capacity".into(),
                    ));
                }
                capacity
            }
        };

        // Protocol-spec value validation.
        if let ProtocolSpec::EpochHopping(spec) = &self.protocol {
            if spec.epoch_len == 0 {
                return Err(ScenarioError::InvalidConfig(
                    "epoch-hopping epoch_len must be at least one slot".into(),
                ));
            }
        }
        let gossip_shape = match &self.protocol {
            ProtocolSpec::Epidemic(spec) => Some((protocol, spec.listen_p, spec.relay_rate)),
            ProtocolSpec::Hopping(spec) => Some((protocol, spec.listen_p, spec.relay_rate)),
            ProtocolSpec::EpochHopping(spec) => Some((protocol, spec.listen_p, spec.relay_rate)),
            _ => None,
        };
        if let Some((protocol, listen_p, relay_rate)) = gossip_shape {
            if !(0.0..=1.0).contains(&listen_p) || !listen_p.is_finite() {
                return Err(ScenarioError::InvalidConfig(format!(
                    "{protocol} listen_p must be a probability, got {listen_p}"
                )));
            }
            if !relay_rate.is_finite() || relay_rate < 0.0 {
                return Err(ScenarioError::InvalidConfig(format!(
                    "{protocol} relay_rate must be nonnegative and finite, got {relay_rate}"
                )));
            }
        }

        Ok(Scenario {
            protocol: self.protocol,
            engine: self.engine,
            adversary: self.adversary,
            carol_budget: self.carol_budget,
            enforce_correct_budgets: self.enforce_correct_budgets,
            trace_capacity,
            channels: self.channels,
            mc_phase_len,
            threads: self.threads,
            seed: self.seed,
            telemetry: self.telemetry,
        })
    }

    /// Convenience: [`build`](Self::build) then run once.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError`] from validation.
    pub fn run(self) -> Result<ScenarioOutcome, ScenarioError> {
        Ok(self.build()?.run())
    }
}
