//! # rcb-sim — the unified `Scenario` API
//!
//! One builder for **protocol × engine × adversary**, with batched
//! parallel execution. This crate is the run-entry surface for the whole
//! workspace: every experiment, example, bench, and integration test
//! expresses its execution as a [`Scenario`] instead of hand-wiring
//! `rcb-core`, `rcb-baselines`, and `rcb-adversary` separately.
//!
//! ## The matrix
//!
//! | protocol | engines | channels | adversaries |
//! |---|---|---|---|
//! | [`Scenario::broadcast`] (ε-BROADCAST) | [`Engine::Exact`], [`Engine::Fast`] | 1 | every single-channel [`StrategySpec`] (slot-only ones on `Exact` only) |
//! | [`Scenario::naive`] (§1.1 strawman) | `Exact` | 1 | schedule-free single-channel strategies |
//! | [`Scenario::epidemic`] (gossip) | `Exact` | 1 | schedule-free single-channel strategies |
//! | [`Scenario::ksy`] (two-player \[23\]) | `Exact` | 1 | `Silent`, `Continuous` (budget required) |
//! | [`Scenario::hopping`] (multi-channel random-hopping) | `Exact`, `Fast` (the phase-level `fast_mc` spectrum simulator), `Fluid` (deterministic mean-field, `O(phases · C)` independent of `n`) | `C ≥ 1` via [`ScenarioBuilder::channels`] | every schedule-free strategy on all three engines (the whole zoo has phase-mc and fluid lowerings) |
//! | [`Scenario::epoch_hopping`] (Chen–Zheng epoch schedule) | `Exact`, `Fast`, `Fluid` (one phase per epoch) | `C ≥ 1` via [`ScenarioBuilder::channels`] | same as `hopping`; the `phase_len` knob is rejected (`epoch_len` *is* the phase length) |
//! | [`Scenario::kpsy`] (KPSY `n`-player jamming defense) | `Exact` only (sparse secret schedules have no phase-level aggregate) | 1 | schedule-free single-channel strategies |
//!
//! Invalid combinations are rejected at [`ScenarioBuilder::build`] with a
//! typed [`ScenarioError`] — never a mid-run panic. That includes the
//! spectrum rules: `channels(c > 1)` on a single-channel protocol, a
//! channel-aware strategy (`SplitUniform`, `ChannelSweep`,
//! `ChannelLagged`, `Adaptive`) on a protocol that cannot host a
//! spectrum, or a strategy without a phase-level model on either fast
//! engine.
//!
//! ## Large-`n` multi-channel sweeps
//!
//! `channels(c)` composes with [`Engine::Fast`]: the hopping workload
//! then runs on the phase-level multi-channel simulator
//! (`rcb_core::fast_mc`), which advances whole phases
//! ([`ScenarioBuilder::phase_len`] slots at a time, default
//! [`DEFAULT_MC_PHASE_LEN`]) and draws per-channel rendezvous counts
//! from binomial channel-coincidence approximations — `O(phases · C)`
//! per run instead of `O(n · slots)`, which is what makes `n = 2^16`
//! spectrum sweeps affordable (experiment E13 cross-validates the two
//! engines and extends the E11/E12 curves to that scale).
//!
//! ```
//! use rcb_sim::{Engine, HoppingSpec, Scenario, StrategySpec};
//!
//! let outcome = Scenario::hopping(HoppingSpec::new(1 << 16, 8_000))
//!     .engine(Engine::Fast)
//!     .channels(8)
//!     .adversary(StrategySpec::Adaptive { window: 8, reactivity: 0.5 })
//!     .carol_budget(4_000)
//!     .build()?
//!     .run();
//! assert!(outcome.informed_fraction() > 0.9);
//! // Per-channel tallies are populated by the fast engine too.
//! assert_eq!(outcome.channel_stats.as_ref().map(Vec::len), Some(8));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The fluid tier
//!
//! [`Engine::Fluid`] replaces the fast engine's per-phase sampling with
//! the deterministic mean-field recurrence (`rcb_core::fluid`): one f64
//! update per phase × channel, no RNG, `n` only a scale factor. A full
//! `n = 2^20` evaluation costs microseconds, every seed produces the
//! identical expectation run, and the outcome reports expected costs
//! (no per-trial variance, no slot trace — those are inherently
//! distributional and stay on the sampling tiers; experiment E19
//! cross-validates all three).
//!
//! ```
//! use rcb_sim::{Engine, HoppingSpec, Scenario, StrategySpec};
//!
//! let outcome = Scenario::hopping(HoppingSpec::new(1 << 20, 8_000))
//!     .engine(Engine::Fluid)
//!     .channels(8)
//!     .adversary(StrategySpec::Random(0.3))
//!     .carol_budget(4_000)
//!     .build()?
//!     .run();
//! assert!(outcome.informed_fraction() > 0.9);
//! assert_eq!(outcome.broadcast.engine, Engine::Fluid);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Multi-channel runs
//!
//! ```
//! use rcb_sim::{HoppingSpec, Scenario, StrategySpec};
//!
//! let outcome = Scenario::hopping(HoppingSpec::new(16, 4_000))
//!     .channels(4)
//!     .adversary(StrategySpec::SplitUniform)
//!     .carol_budget(1_000)
//!     .seed(7)
//!     .build()?
//!     .run();
//! // The blanket drains her budget 4× faster; per-channel accounting
//! // shows the split.
//! assert_eq!(outcome.carol_spend(), 1_000);
//! assert_eq!(outcome.jam_slots_by_channel().len(), 4);
//! assert_eq!(outcome.jam_slots_by_channel().iter().sum::<u64>(), 1_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## One run
//!
//! ```
//! use rcb_adversary::StrategySpec;
//! use rcb_core::Params;
//! use rcb_sim::{Engine, Scenario};
//!
//! let params = Params::builder(64).build()?;
//! let outcome = Scenario::broadcast(params)
//!     .engine(Engine::Exact)
//!     .adversary(StrategySpec::Continuous)
//!     .carol_budget(2_000)
//!     .seed(42)
//!     .build()?
//!     .run();
//! assert!(outcome.informed_fraction() > 0.9);
//! assert_eq!(outcome.carol_spend(), 2_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Batched trials
//!
//! [`Scenario::run_batch`] runs `trials` executions across worker
//! threads, derives per-trial seeds from the scenario's master seed
//! (`SeedTree::new(seed).leaf_seed("trial", i)` — the same tree the
//! analysis harness has always used), and reuses per-worker scratch: the
//! roster and budget vectors are reset in place between trials instead of
//! re-boxing `n + 1` participants each time.
//!
//! ```
//! use rcb_core::Params;
//! use rcb_sim::{Engine, Scenario};
//!
//! let params = Params::builder(1 << 12).build()?;
//! let outcomes = Scenario::broadcast(params)
//!     .engine(Engine::Fast)
//!     .seed(7)
//!     .build()?
//!     .run_batch(4);
//! assert_eq!(outcomes.len(), 4);
//! assert!(outcomes.iter().all(|o| o.informed_fraction() > 0.9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod outcome;
mod scenario;

pub use batch::{run_trials, run_trials_scoped, run_trials_scoped_with, THREADS_ENV_VAR};
pub use outcome::{pearson, ScenarioOutcome};
pub use scenario::{
    Engine, EpidemicSpec, EpochHoppingSpec, HoppingSpec, KpsySpec, KsySpec, NaiveSpec,
    ProtocolKind, Scenario, ScenarioBuilder, ScenarioError, ScenarioScratch, DEFAULT_MC_PHASE_LEN,
};

// The strategy vocabulary is part of this crate's API surface.
pub use rcb_adversary::StrategySpec;

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::Params;

    fn params(n: u64) -> Params {
        Params::builder(n).build().unwrap()
    }

    #[test]
    fn every_protocol_runs_on_its_supported_engines() {
        let b = Scenario::broadcast(params(16))
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(b.protocol, ProtocolKind::Broadcast);
        assert!(b.completed());

        let f = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(f.broadcast.engine, Engine::Fast);
        assert!(f.informed_fraction() > 0.9);

        let n = Scenario::naive(NaiveSpec { n: 8, horizon: 50 })
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(n.protocol, ProtocolKind::Naive);
        assert_eq!(n.informed_nodes, 8);

        let e = Scenario::epidemic(EpidemicSpec::new(8, 2_000))
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(e.protocol, ProtocolKind::Epidemic);
        assert_eq!(e.informed_nodes, 8);

        let k = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Continuous)
            .carol_budget(10_000)
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(k.protocol, ProtocolKind::Ksy);
        let raw = k.ksy.expect("ksy outcome present");
        assert!(raw.delivered);
        assert_eq!(k.broadcast.node_total_cost.listens, raw.receiver_cost);
        assert_eq!(k.carol_spend(), raw.carol_spend);
    }

    #[test]
    fn fast_engine_rejects_baseline_protocols() {
        for builder in [
            Scenario::naive(NaiveSpec { n: 8, horizon: 10 }),
            Scenario::epidemic(EpidemicSpec::new(8, 10)),
            Scenario::ksy(KsySpec::default()),
        ] {
            let err = builder.engine(Engine::Fast).build().unwrap_err();
            assert!(
                matches!(
                    err,
                    ScenarioError::UnsupportedEngine {
                        engine: Engine::Fast,
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn fluid_engine_runs_hopping_protocols_only() {
        // The mean-field tier models the hopping workload: everything
        // else is a typed UnsupportedEngine.
        for builder in [
            Scenario::broadcast(params(16)),
            Scenario::naive(NaiveSpec { n: 8, horizon: 10 }),
            Scenario::epidemic(EpidemicSpec::new(8, 10)),
            Scenario::ksy(KsySpec::default()),
            Scenario::kpsy(KpsySpec { n: 8, horizon: 10 }),
        ] {
            let err = builder.engine(Engine::Fluid).build().unwrap_err();
            assert!(
                matches!(
                    err,
                    ScenarioError::UnsupportedEngine {
                        engine: Engine::Fluid,
                        ..
                    }
                ),
                "{err}"
            );
        }
        // ... and it records no slot trace (expectations have no slots).
        let err = Scenario::hopping(HoppingSpec::new(8, 100))
            .engine(Engine::Fluid)
            .trace(64)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::TraceUnsupported { .. }),
            "{err}"
        );
        // Schedule-bound strategies get the precise schedule error.
        let err = Scenario::hopping(HoppingSpec::new(8, 100))
            .engine(Engine::Fluid)
            .adversary(StrategySpec::Reactive)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
            "{err}"
        );
    }

    #[test]
    fn fluid_engine_is_deterministic_across_seeds_and_workers() {
        let scenario = |seed: u64| {
            Scenario::hopping(HoppingSpec::new(1 << 16, 4_000))
                .engine(Engine::Fluid)
                .channels(4)
                .adversary(StrategySpec::Random(0.3))
                .carol_budget(2_000)
                .seed(seed)
                .build()
                .unwrap()
        };
        // No RNG: every seed produces the identical expectation run.
        let a = scenario(1).run();
        let b = scenario(999).run();
        assert_eq!(a.broadcast.engine, Engine::Fluid);
        assert_eq!(a.informed_nodes, b.informed_nodes);
        assert_eq!(a.broadcast.node_total_cost, b.broadcast.node_total_cost);
        assert_eq!(a.channel_stats, b.channel_stats);
        // Worker-count invariance: batched trials are all identical to
        // the solo run regardless of thread count.
        for workers in [1, 4] {
            let batch = Scenario::hopping(HoppingSpec::new(1 << 16, 4_000))
                .engine(Engine::Fluid)
                .channels(4)
                .adversary(StrategySpec::Random(0.3))
                .carol_budget(2_000)
                .threads(workers)
                .seed(1)
                .build()
                .unwrap()
                .run_batch(3);
            for o in &batch {
                assert_eq!(o.informed_nodes, a.informed_nodes);
                assert_eq!(o.broadcast.node_total_cost, a.broadcast.node_total_cost);
                assert_eq!(o.channel_stats, a.channel_stats);
            }
        }
    }

    #[test]
    fn fluid_epoch_hopping_runs_and_respects_the_epoch_length() {
        let o = Scenario::epoch_hopping(EpochHoppingSpec::new(1 << 16, 8_000, 64))
            .engine(Engine::Fluid)
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(2_000)
            .build()
            .unwrap()
            .run();
        assert_eq!(o.broadcast.engine, Engine::Fluid);
        assert!(o.informed_fraction() > 0.9, "{}", o.informed_fraction());
        assert_eq!(o.carol_spend(), 2_000);
        // The phase_len knob stays rejected for epoch hopping: the epoch
        // *is* the phase.
        let err = Scenario::epoch_hopping(EpochHoppingSpec::new(64, 1_000, 32))
            .engine(Engine::Fluid)
            .phase_len(16)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn slot_only_strategy_rejected_on_fast_engine() {
        let err = Scenario::broadcast(params(16))
            .engine(Engine::Fast)
            .adversary(StrategySpec::LaggedReactive)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::SlotOnlyStrategy {
                strategy: "lagged-reactive".into()
            }
        );
        // ... but it runs fine on the exact engine.
        let o = Scenario::broadcast(params(16))
            .adversary(StrategySpec::LaggedReactive)
            .carol_budget(500)
            .build()
            .unwrap()
            .run();
        assert!(o.slots > 0);
    }

    #[test]
    fn schedule_bound_strategies_rejected_on_baselines() {
        for spec in [
            StrategySpec::BlockDissemination(1.0),
            StrategySpec::Spoof(1.0),
            StrategySpec::Reactive,
            StrategySpec::Extract(4),
        ] {
            let err = Scenario::naive(NaiveSpec { n: 8, horizon: 10 })
                .adversary(spec)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
                "{err}"
            );
        }
        // Schedule-free strategies are accepted.
        let o = Scenario::epidemic(EpidemicSpec::new(8, 500))
            .adversary(StrategySpec::Random(0.3))
            .carol_budget(100)
            .build()
            .unwrap()
            .run();
        assert!(o.slots > 0);
    }

    #[test]
    fn ksy_adversary_rules() {
        let err = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Random(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnsupportedAdversary { .. }));

        let err = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Continuous)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::BudgetRequired {
                protocol: ProtocolKind::Ksy
            }
        );

        // Silent needs no budget: it is the quiet channel.
        let o = Scenario::ksy(KsySpec::default())
            .seed(2)
            .build()
            .unwrap()
            .run();
        assert_eq!(o.carol_spend(), 0);
        assert!(o.ksy.unwrap().delivered);
    }

    #[test]
    fn trace_rules() {
        let err = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .trace(1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

        let err = Scenario::ksy(KsySpec::default())
            .trace(1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

        // Even a zero capacity names the unsupported engine (the typed
        // error points callers at the telemetry alternative) rather than
        // complaining about the capacity.
        let err = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .trace(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));
        assert!(
            err.to_string().contains("ScenarioBuilder::telemetry"),
            "{err}"
        );

        let err = Scenario::broadcast(params(16))
            .trace(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");

        let o = Scenario::broadcast(params(16))
            .trace(4096)
            .seed(3)
            .build()
            .unwrap()
            .run();
        assert!(!o.trace.as_ref().unwrap().is_empty());
    }

    #[test]
    fn attached_collector_records_without_changing_outcomes() {
        use rcb_telemetry::{MetricId, RecordingCollector};
        use std::sync::Arc;

        let plain = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .seed(11)
            .build()
            .unwrap()
            .run();
        assert!(plain.telemetry_snapshot().is_none());

        let collector = Arc::new(RecordingCollector::new());
        let observed = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .seed(11)
            .telemetry(collector.clone())
            .build()
            .unwrap()
            .run();

        // Telemetry is observational: the measured run is byte-identical.
        assert_eq!(observed.informed_nodes, plain.informed_nodes);
        assert_eq!(observed.slots, plain.slots);
        assert_eq!(observed.carol_spend(), plain.carol_spend());

        // ... and the outcome carries the collector's snapshot.
        let snapshot = observed.telemetry_snapshot().expect("snapshot present");
        assert!(snapshot.counter(MetricId::FastPhases) > 0);
        assert_eq!(
            snapshot.counter(MetricId::FastPhases),
            collector.counter(MetricId::FastPhases)
        );
    }

    #[test]
    fn invalid_epidemic_config_is_a_typed_error_not_a_panic() {
        let mut spec = EpidemicSpec::new(8, 10);
        spec.listen_p = 1.5;
        let err = Scenario::epidemic(spec).build().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn batch_is_deterministic_and_ordered() {
        let scenario = Scenario::broadcast(params(32))
            .adversary(StrategySpec::Continuous)
            .carol_budget(500)
            .seed(9)
            .build()
            .unwrap();
        let a = scenario.run_batch(6);
        let b = scenario.run_batch(6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.slots, y.slots);
            assert_eq!(x.broadcast.node_total_cost, y.broadcast.node_total_cost);
            assert_eq!(x.broadcast.node_costs, y.broadcast.node_costs);
        }
        // Batch trials match one-at-a-time execution with the derived seed.
        let solo = scenario.run_seeded(a[2].seed);
        assert_eq!(solo.slots, a[2].slots);
        assert_eq!(solo.broadcast.alice_cost, a[2].broadcast.alice_cost);
    }

    #[test]
    fn exact_runs_are_the_soa_engine_verbatim() {
        let scenario = Scenario::broadcast(params(16)).seed(11).build().unwrap();
        // The scenario path is the SoA engine verbatim: identical to a
        // direct BroadcastSoaScratch run with the same seed.
        let via_scenario = scenario.run();
        let (direct, _) = rcb_core::BroadcastSoaScratch::new().run(
            &params(16),
            &mut rcb_radio::SilentAdversary,
            &rcb_core::RunConfig::seeded(11),
        );
        assert_eq!(via_scenario.slots, direct.slots);
        assert_eq!(via_scenario.broadcast.alice_cost, direct.alice_cost);
        assert_eq!(via_scenario.broadcast.node_costs, direct.node_costs);
    }

    #[test]
    fn builder_run_convenience() {
        let outcome = Scenario::broadcast(params(16)).seed(4).run().unwrap();
        assert!(outcome.completed());
    }

    #[test]
    fn channels_one_is_the_default_single_channel_model() {
        let base = Scenario::broadcast(params(16))
            .adversary(StrategySpec::Continuous)
            .carol_budget(400)
            .seed(12)
            .build()
            .unwrap()
            .run();
        let explicit = Scenario::broadcast(params(16))
            .adversary(StrategySpec::Continuous)
            .carol_budget(400)
            .channels(1)
            .seed(12)
            .build()
            .unwrap()
            .run();
        assert_eq!(base.slots, explicit.slots);
        assert_eq!(base.broadcast.alice_cost, explicit.broadcast.alice_cost);
        assert_eq!(base.broadcast.node_costs, explicit.broadcast.node_costs);
        assert_eq!(base.broadcast.carol_cost, explicit.broadcast.carol_cost);
        let stats = explicit.channel_stats.as_ref().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].jammed_slots, 400);
    }

    #[test]
    fn multi_channel_needs_a_channel_capable_protocol() {
        let err = Scenario::broadcast(params(16))
            .channels(4)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::MultiChannelUnsupported {
                protocol: ProtocolKind::Broadcast,
                channels: 4
            }
        );
        for builder in [
            Scenario::naive(NaiveSpec { n: 8, horizon: 10 }),
            Scenario::epidemic(EpidemicSpec::new(8, 10)),
            Scenario::ksy(KsySpec::default()),
        ] {
            let err = builder.channels(2).build().unwrap_err();
            assert!(
                matches!(err, ScenarioError::MultiChannelUnsupported { .. }),
                "{err}"
            );
        }
        let err = Scenario::hopping(HoppingSpec::new(8, 10))
            .channels(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn channel_aware_strategies_rejected_on_single_channel_protocols() {
        for spec in StrategySpec::channel_roster() {
            assert!(spec.requires_channels());
            let err = Scenario::broadcast(params(16))
                .adversary(spec)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioError::ChannelStrategyUnsupported { .. }),
                "{err}"
            );
            let err = Scenario::epidemic(EpidemicSpec::new(8, 100))
                .adversary(spec)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioError::ChannelStrategyUnsupported { .. }),
                "{err}"
            );
            // ... but they are valid against the hopping protocol, even
            // at C = 1 (where they degenerate to their single-channel
            // counterparts).
            let o = Scenario::hopping(HoppingSpec::new(8, 500))
                .adversary(spec)
                .carol_budget(100)
                .seed(1)
                .build()
                .unwrap()
                .run();
            assert!(o.slots > 0);
        }
    }

    #[test]
    fn hopping_matrix_rules() {
        // The fast engine runs it — at phase granularity, with the
        // per-channel tallies populated.
        let o = Scenario::hopping(HoppingSpec::new(64, 2_000))
            .engine(Engine::Fast)
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(400)
            .seed(3)
            .build()
            .unwrap()
            .run();
        assert_eq!(o.carol_spend(), 400);
        assert_eq!(o.jam_slots_by_channel(), vec![100, 100, 100, 100]);
        // The whole schedule-free zoo lowers onto the fast tier — the
        // oblivious Random jammer included (one binomial draw per phase).
        let o = Scenario::hopping(HoppingSpec::new(64, 2_000))
            .engine(Engine::Fast)
            .adversary(StrategySpec::Random(0.5))
            .carol_budget(400)
            .seed(3)
            .build()
            .unwrap()
            .run();
        assert_eq!(o.carol_spend(), 400);
        // Schedule-bound strategies make no sense against it.
        let err = Scenario::hopping(HoppingSpec::new(8, 100))
            .adversary(StrategySpec::Reactive)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::ScheduleBoundStrategy { .. }));
        // Bad gossip shape is a typed error.
        let mut spec = HoppingSpec::new(8, 100);
        spec.listen_p = 2.0;
        let err = Scenario::hopping(spec).channels(2).build().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)));
        // A zero dwell would panic mid-run; build() rejects it instead.
        let err = Scenario::hopping(HoppingSpec::new(8, 100))
            .channels(2)
            .adversary(StrategySpec::ChannelSweep { dwell: 0 })
            .carol_budget(10)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn hopping_split_jammer_pays_per_channel() {
        let outcome = Scenario::hopping(HoppingSpec::new(16, 4_000))
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(1_000)
            .seed(5)
            .build()
            .unwrap()
            .run();
        assert_eq!(outcome.protocol, ProtocolKind::Hopping);
        assert_eq!(outcome.carol_spend(), 1_000);
        let by_channel = outcome.jam_slots_by_channel();
        assert_eq!(by_channel.len(), 4);
        // The blanket is uniform: 1000 units over 4 channels = 250 slots
        // each.
        assert_eq!(by_channel, vec![250, 250, 250, 250]);
        assert_eq!(outcome.informed_fraction(), 1.0, "she cannot stop it");
    }

    #[test]
    fn hopping_batch_is_deterministic() {
        let scenario = Scenario::hopping(HoppingSpec::new(12, 2_000))
            .channels(2)
            .adversary(StrategySpec::ChannelSweep { dwell: 4 })
            .carol_budget(300)
            .seed(8)
            .build()
            .unwrap();
        let a = scenario.run_batch(4);
        let b = scenario.run_batch(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.slots, y.slots);
            assert_eq!(x.broadcast.node_total_cost, y.broadcast.node_total_cost);
            assert_eq!(x.channel_stats, y.channel_stats);
        }
        let solo = scenario.run_seeded(a[1].seed);
        assert_eq!(
            solo.broadcast.node_total_cost,
            a[1].broadcast.node_total_cost
        );
    }
}
