//! # rcb-sim — the unified `Scenario` API
//!
//! One builder for **protocol × engine × adversary**, with batched
//! parallel execution. This crate is the run-entry surface for the whole
//! workspace: every experiment, example, bench, and integration test
//! expresses its execution as a [`Scenario`] instead of hand-wiring
//! `rcb-core`, `rcb-baselines`, and `rcb-adversary` separately.
//!
//! ## The matrix
//!
//! | protocol | engines | adversaries |
//! |---|---|---|
//! | [`Scenario::broadcast`] (ε-BROADCAST) | [`Engine::Exact`], [`Engine::Fast`] | every [`StrategySpec`] (slot-only ones on `Exact` only) |
//! | [`Scenario::naive`] (§1.1 strawman) | `Exact` | schedule-free strategies |
//! | [`Scenario::epidemic`] (gossip) | `Exact` | schedule-free strategies |
//! | [`Scenario::ksy`] (two-player [23]) | `Exact` | `Silent`, `Continuous` (budget required) |
//!
//! Invalid combinations are rejected at [`ScenarioBuilder::build`] with a
//! typed [`ScenarioError`] — never a mid-run panic.
//!
//! ## One run
//!
//! ```
//! use rcb_adversary::StrategySpec;
//! use rcb_core::Params;
//! use rcb_sim::{Engine, Scenario};
//!
//! let params = Params::builder(64).build()?;
//! let outcome = Scenario::broadcast(params)
//!     .engine(Engine::Exact)
//!     .adversary(StrategySpec::Continuous)
//!     .carol_budget(2_000)
//!     .seed(42)
//!     .build()?
//!     .run();
//! assert!(outcome.informed_fraction() > 0.9);
//! assert_eq!(outcome.carol_spend(), 2_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Batched trials
//!
//! [`Scenario::run_batch`] runs `trials` executions across worker
//! threads, derives per-trial seeds from the scenario's master seed
//! (`SeedTree::new(seed).leaf_seed("trial", i)` — the same tree the
//! analysis harness has always used), and reuses per-worker scratch: the
//! roster and budget vectors are reset in place between trials instead of
//! re-boxing `n + 1` participants each time.
//!
//! ```
//! use rcb_core::Params;
//! use rcb_sim::{Engine, Scenario};
//!
//! let params = Params::builder(1 << 12).build()?;
//! let outcomes = Scenario::broadcast(params)
//!     .engine(Engine::Fast)
//!     .seed(7)
//!     .build()?
//!     .run_batch(4);
//! assert_eq!(outcomes.len(), 4);
//! assert!(outcomes.iter().all(|o| o.informed_fraction() > 0.9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod outcome;
mod scenario;

pub use batch::{run_trials, run_trials_scoped};
pub use outcome::ScenarioOutcome;
pub use scenario::{
    Engine, EpidemicSpec, KsySpec, NaiveSpec, ProtocolKind, Scenario, ScenarioBuilder,
    ScenarioError, ScenarioScratch,
};

// The strategy vocabulary is part of this crate's API surface.
pub use rcb_adversary::StrategySpec;

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::Params;

    fn params(n: u64) -> Params {
        Params::builder(n).build().unwrap()
    }

    #[test]
    fn every_protocol_runs_on_its_supported_engines() {
        let b = Scenario::broadcast(params(16))
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(b.protocol, ProtocolKind::Broadcast);
        assert!(b.completed());

        let f = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(f.broadcast.engine, Engine::Fast);
        assert!(f.informed_fraction() > 0.9);

        let n = Scenario::naive(NaiveSpec { n: 8, horizon: 50 })
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(n.protocol, ProtocolKind::Naive);
        assert_eq!(n.informed_nodes, 8);

        let e = Scenario::epidemic(EpidemicSpec::new(8, 2_000))
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(e.protocol, ProtocolKind::Epidemic);
        assert_eq!(e.informed_nodes, 8);

        let k = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Continuous)
            .carol_budget(10_000)
            .seed(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(k.protocol, ProtocolKind::Ksy);
        let raw = k.ksy.expect("ksy outcome present");
        assert!(raw.delivered);
        assert_eq!(k.broadcast.node_total_cost.listens, raw.receiver_cost);
        assert_eq!(k.carol_spend(), raw.carol_spend);
    }

    #[test]
    fn fast_engine_rejects_baseline_protocols() {
        for builder in [
            Scenario::naive(NaiveSpec { n: 8, horizon: 10 }),
            Scenario::epidemic(EpidemicSpec::new(8, 10)),
            Scenario::ksy(KsySpec::default()),
        ] {
            let err = builder.engine(Engine::Fast).build().unwrap_err();
            assert!(
                matches!(
                    err,
                    ScenarioError::UnsupportedEngine {
                        engine: Engine::Fast,
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn slot_only_strategy_rejected_on_fast_engine() {
        let err = Scenario::broadcast(params(16))
            .engine(Engine::Fast)
            .adversary(StrategySpec::LaggedReactive)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::SlotOnlyStrategy {
                strategy: "lagged-reactive".into()
            }
        );
        // ... but it runs fine on the exact engine.
        let o = Scenario::broadcast(params(16))
            .adversary(StrategySpec::LaggedReactive)
            .carol_budget(500)
            .build()
            .unwrap()
            .run();
        assert!(o.slots > 0);
    }

    #[test]
    fn schedule_bound_strategies_rejected_on_baselines() {
        for spec in [
            StrategySpec::BlockDissemination(1.0),
            StrategySpec::Spoof(1.0),
            StrategySpec::Reactive,
            StrategySpec::Extract(4),
        ] {
            let err = Scenario::naive(NaiveSpec { n: 8, horizon: 10 })
                .adversary(spec)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioError::ScheduleBoundStrategy { .. }),
                "{err}"
            );
        }
        // Schedule-free strategies are accepted.
        let o = Scenario::epidemic(EpidemicSpec::new(8, 500))
            .adversary(StrategySpec::Random(0.3))
            .carol_budget(100)
            .build()
            .unwrap()
            .run();
        assert!(o.slots > 0);
    }

    #[test]
    fn ksy_adversary_rules() {
        let err = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Random(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnsupportedAdversary { .. }));

        let err = Scenario::ksy(KsySpec::default())
            .adversary(StrategySpec::Continuous)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::BudgetRequired {
                protocol: ProtocolKind::Ksy
            }
        );

        // Silent needs no budget: it is the quiet channel.
        let o = Scenario::ksy(KsySpec::default())
            .seed(2)
            .build()
            .unwrap()
            .run();
        assert_eq!(o.carol_spend(), 0);
        assert!(o.ksy.unwrap().delivered);
    }

    #[test]
    fn trace_rules() {
        let err = Scenario::broadcast(params(4096))
            .engine(Engine::Fast)
            .trace(1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

        let err = Scenario::ksy(KsySpec::default())
            .trace(1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TraceUnsupported { .. }));

        let o = Scenario::broadcast(params(16))
            .trace(4096)
            .seed(3)
            .build()
            .unwrap()
            .run();
        assert!(!o.trace.as_ref().unwrap().is_empty());
    }

    #[test]
    fn invalid_epidemic_config_is_a_typed_error_not_a_panic() {
        let mut spec = EpidemicSpec::new(8, 10);
        spec.listen_p = 1.5;
        let err = Scenario::epidemic(spec).build().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn batch_is_deterministic_and_ordered() {
        let scenario = Scenario::broadcast(params(32))
            .adversary(StrategySpec::Continuous)
            .carol_budget(500)
            .seed(9)
            .build()
            .unwrap();
        let a = scenario.run_batch(6);
        let b = scenario.run_batch(6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.slots, y.slots);
            assert_eq!(x.broadcast.node_total_cost, y.broadcast.node_total_cost);
            assert_eq!(x.broadcast.node_costs, y.broadcast.node_costs);
        }
        // Batch trials match one-at-a-time execution with the derived seed.
        let solo = scenario.run_seeded(a[2].seed);
        assert_eq!(solo.slots, a[2].slots);
        assert_eq!(solo.broadcast.alice_cost, a[2].broadcast.alice_cost);
    }

    #[test]
    fn builder_run_convenience() {
        let outcome = Scenario::broadcast(params(16)).seed(4).run().unwrap();
        assert!(outcome.completed());
    }
}
