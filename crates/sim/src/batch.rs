//! Parallel trial execution with deterministic per-trial seeds.
//!
//! This is the workspace's one parallel substrate: `Scenario::run_batch`
//! builds on [`run_trials_scoped`] (per-worker scratch state), and the
//! analysis harness re-exports [`run_trials`] (stateless closures).
//!
//! Results are routed **channel-by-index**: every worker sends
//! `(trial_index, result)` over an unbounded channel and the collector
//! writes each result into its own pre-sized slot. Workers never contend
//! on a shared results lock — the previous design took a global mutex per
//! trial, which measurably serialised short trials.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use rcb_rng::SeedTree;

/// Runs `trials` independent executions of `trial_fn` across worker
/// threads, collecting results in trial order.
///
/// Each trial receives a seed derived as `SeedTree::new(base_seed)
/// .leaf_seed("trial", index)` — so a whole experiment replays from one
/// number regardless of thread scheduling.
///
/// # Example
///
/// ```
/// use rcb_sim::run_trials;
/// let squares = run_trials(7, 8, |seed| (seed % 100) * (seed % 100));
/// assert_eq!(squares.len(), 8);
/// // Deterministic regardless of parallelism.
/// assert_eq!(squares, run_trials(7, 8, |seed| (seed % 100) * (seed % 100)));
/// ```
pub fn run_trials<T, F>(base_seed: u64, trials: u32, trial_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_trials_scoped(base_seed, trials, || (), |(), seed| trial_fn(seed))
}

/// The environment variable that overrides the worker-thread count for
/// [`run_trials_scoped`] (and everything built on it, notably
/// `Scenario::run_batch`) when no explicit override is passed. Invalid
/// or zero values are ignored. Bench harnesses use it to measure thread
/// scaling: `RCB_THREADS=1 cargo bench ...`.
pub const THREADS_ENV_VAR: &str = "RCB_THREADS";

/// Resolves the worker count: explicit override (zero is clamped to 1 —
/// an explicit request never silently falls back to the environment),
/// else [`THREADS_ENV_VAR`], else `available_parallelism`, always
/// clamped to the trial count.
fn resolve_worker_count(requested: Option<usize>, trials: u32) -> usize {
    requested
        .map(|w| w.max(1))
        .or_else(|| {
            std::env::var(THREADS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&w| w > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .min(trials.max(1) as usize)
}

/// Like [`run_trials`], but each worker thread owns a scratch value built
/// by `init` and passed to every trial it executes — the hook that lets
/// `Scenario::run_batch` reuse roster and budget allocations across the
/// trials of one worker instead of rebuilding them per trial.
///
/// The worker count defaults to `available_parallelism`, overridable via
/// the [`THREADS_ENV_VAR`] environment variable; use
/// [`run_trials_scoped_with`] for an explicit per-call override. Results
/// are identical regardless of the worker count (per-trial seeds are
/// derived, not shared).
pub fn run_trials_scoped<S, T, F, Init>(
    base_seed: u64,
    trials: u32,
    init: Init,
    trial_fn: F,
) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    run_trials_scoped_with(None, base_seed, trials, init, trial_fn)
}

/// Like [`run_trials_scoped`], with an explicit worker-count override
/// (`None` falls back to [`THREADS_ENV_VAR`], then
/// `available_parallelism`). `Some(1)` — and `Some(0)`, which clamps to
/// 1 — forces fully sequential execution on the calling thread: the
/// configuration bench harnesses use to measure single-core engine
/// throughput and thread scaling.
pub fn run_trials_scoped_with<S, T, F, Init>(
    workers: Option<usize>,
    base_seed: u64,
    trials: u32,
    init: Init,
    trial_fn: F,
) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    let tree = SeedTree::new(base_seed);
    let seeds: Vec<u64> = (0..trials)
        .map(|i| tree.leaf_seed("trial", i.into()))
        .collect();

    let workers = resolve_worker_count(workers, trials);

    if workers <= 1 || trials <= 1 {
        let mut scratch = init();
        return seeds
            .into_iter()
            .map(|seed| trial_fn(&mut scratch, seed))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let seeds = &seeds;
            let next = &next;
            let init = &init;
            let trial_fn = &trial_fn;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= seeds.len() {
                        break;
                    }
                    let out = trial_fn(&mut scratch, seeds[idx]);
                    if tx.send((idx, out)).is_err() {
                        break; // collector gone: abandon quietly
                    }
                }
            });
        }
    });
    drop(tx);

    // All workers have joined (scope ended) and every sender is dropped:
    // drain the channel into disjoint per-index slots.
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    for (idx, out) in rx {
        debug_assert!(slots[idx].is_none(), "trial {idx} delivered twice");
        slots[idx] = Some(out);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every trial index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_trial_exactly_once() {
        let counter = AtomicU32::new(0);
        let out = run_trials(1, 32, |seed| {
            counter.fetch_add(1, Ordering::Relaxed);
            seed
        });
        assert_eq!(out.len(), 32);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        // Seeds are pairwise distinct.
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
    }

    #[test]
    fn deterministic_ordering_across_runs() {
        let a = run_trials(9, 16, |seed| seed.wrapping_mul(3));
        let b = run_trials(9, 16, |seed| seed.wrapping_mul(3));
        assert_eq!(a, b);
    }

    #[test]
    fn single_trial_short_circuits() {
        let out = run_trials(2, 1, |seed| seed + 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(2, 0, |seed| seed);
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_scratch_is_per_worker_and_reused() {
        // Each worker counts its own trials in its scratch; the sum over
        // all workers must equal the trial count.
        let totals = std::sync::Mutex::new(Vec::new());
        struct Scratch<'a> {
            count: u64,
            totals: &'a std::sync::Mutex<Vec<u64>>,
        }
        impl Drop for Scratch<'_> {
            fn drop(&mut self) {
                self.totals.lock().unwrap().push(self.count);
            }
        }
        let out = run_trials_scoped(
            3,
            40,
            || Scratch {
                count: 0,
                totals: &totals,
            },
            |scratch, seed| {
                scratch.count += 1;
                seed
            },
        );
        assert_eq!(out.len(), 40);
        let per_worker = totals.into_inner().unwrap();
        assert_eq!(per_worker.iter().sum::<u64>(), 40);
    }

    #[test]
    fn seed_derivation_matches_the_documented_tree() {
        let tree = SeedTree::new(11);
        let expect: Vec<u64> = (0..5).map(|i| tree.leaf_seed("trial", i)).collect();
        let got = run_trials(11, 5, |seed| seed);
        assert_eq!(got, expect);
    }
}
