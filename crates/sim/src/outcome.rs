//! The common outcome type every scenario produces.

use std::ops::Deref;

use rcb_baselines::ksy::KsyOutcome;
use rcb_core::BroadcastOutcome;
use rcb_radio::{ChannelStats, StopReason, Trace};

use crate::scenario::ProtocolKind;

/// Everything one scenario execution measured — a superset of
/// [`BroadcastOutcome`] that is uniform across protocols and engines.
///
/// The broadcast-shaped common measures (informed counts, per-side costs,
/// slots, engine) live in [`broadcast`](Self::broadcast) and are reachable
/// directly through `Deref`, so `outcome.informed_fraction()` and
/// `outcome.slots` work on any protocol. Protocol- or engine-specific
/// extras are optional fields:
///
/// * [`ksy`](Self::ksy) — the raw two-player epoch outcome when the
///   protocol is KSY (its measures are also mapped into `broadcast`:
///   sender → Alice, receiver → the single node, epochs → rounds);
/// * [`stop_reason`](Self::stop_reason) /
///   [`participant_refusals`](Self::participant_refusals) /
///   [`trace`](Self::trace) — exact-engine bookkeeping, absent on the
///   phase-level fast simulator.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// Stable name of the adversary strategy (for tables).
    pub strategy: String,
    /// The master seed of this execution.
    pub seed: u64,
    /// The common broadcast-shaped measures.
    pub broadcast: BroadcastOutcome,
    /// Raw KSY two-player outcome (KSY protocol only).
    pub ksy: Option<KsyOutcome>,
    /// Why the exact engine stopped (exact engine only).
    pub stop_reason: Option<StopReason>,
    /// Per-participant budget-refusal counts, index 0 = Alice (exact
    /// engine only).
    pub participant_refusals: Option<Vec<u64>>,
    /// Per-channel activity/spend tallies, index-aligned with the
    /// spectrum's channels (a single entry for single-channel
    /// scenarios). Populated by every exact-engine protocol, by the
    /// phase-level `fast_mc` hopping engine, and by the fluid tier
    /// (where the tallies are rounded expectations); absent on the
    /// ε-BROADCAST fast simulator and KSY. This is where "making
    /// evildoers pay"
    /// accounting survives the multi-channel split: it shows how the
    /// jammer's budget divided across channels.
    pub channel_stats: Option<Vec<ChannelStats>>,
    /// Captured slot trace, when tracing was requested (exact engine
    /// only).
    pub trace: Option<Trace>,
    /// Telemetry snapshot taken after the run, when a snapshotting
    /// collector was attached via `ScenarioBuilder::telemetry`. Unlike
    /// [`trace`](Self::trace), this is available on **every** engine,
    /// including the phase-level fast simulators. The snapshot is
    /// cumulative over the collector's lifetime, so across a batch it
    /// reflects all trials completed so far.
    pub telemetry: Option<rcb_telemetry::Snapshot>,
}

impl Deref for ScenarioOutcome {
    type Target = BroadcastOutcome;

    fn deref(&self) -> &BroadcastOutcome {
        &self.broadcast
    }
}

impl ScenarioOutcome {
    /// The telemetry snapshot taken after this run, if a snapshotting
    /// collector was attached (`None` otherwise — including for the
    /// default no-op collector, which records nothing).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<&rcb_telemetry::Snapshot> {
        self.telemetry.as_ref()
    }

    /// Total budget refusals across Alice and all nodes (0 when the
    /// engine does not track refusals).
    #[must_use]
    pub fn total_refusals(&self) -> u64 {
        self.participant_refusals
            .as_ref()
            .map(|r| r.iter().sum())
            .unwrap_or(0)
    }

    /// Slots the jam executed on each channel (empty when the engine did
    /// not track per-channel stats).
    #[must_use]
    pub fn jam_slots_by_channel(&self) -> Vec<u64> {
        self.channel_stats
            .as_ref()
            .map(|stats| stats.iter().map(|s| s.jammed_slots).collect())
            .unwrap_or_default()
    }

    /// Frames sent by correct participants on each channel (empty when
    /// the engine did not track per-channel stats).
    #[must_use]
    pub fn correct_sends_by_channel(&self) -> Vec<u64> {
        self.channel_stats
            .as_ref()
            .map(|stats| stats.iter().map(|s| s.correct_sends).collect())
            .unwrap_or_default()
    }

    /// Pearson correlation between the per-channel correct traffic and
    /// the per-channel jam spend — the whole-run tally of how closely the
    /// jammer's budget split tracked where the traffic actually was.
    ///
    /// Returns `None` when per-channel stats are unavailable, the
    /// spectrum has fewer than two channels, or either series is constant
    /// (a perfectly uniform split has no defined correlation).
    #[must_use]
    pub fn jam_traffic_correlation(&self) -> Option<f64> {
        let sends: Vec<f64> = self
            .correct_sends_by_channel()
            .iter()
            .map(|&v| v as f64)
            .collect();
        let jams: Vec<f64> = self
            .jam_slots_by_channel()
            .iter()
            .map(|&v| v as f64)
            .collect();
        pearson(&sends, &jams)
    }
}

/// Pearson correlation of two equal-length series; `None` on a length
/// mismatch, below two points, or when either series is constant
/// (a perfectly uniform series has no defined correlation).
///
/// Shared by [`ScenarioOutcome::jam_traffic_correlation`] and the
/// experiment harness's traffic-tracking instrumentation, so the two
/// reports cannot drift apart.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean = |vs: &[f64]| vs.iter().sum::<f64>() / n;
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::EngineKind;
    use rcb_radio::CostBreakdown;

    fn outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            protocol: ProtocolKind::Broadcast,
            strategy: "silent".into(),
            seed: 1,
            broadcast: BroadcastOutcome {
                n: 10,
                informed_nodes: 9,
                uninformed_terminated: 1,
                unterminated_nodes: 0,
                alice_terminated: true,
                alice_cost: CostBreakdown::default(),
                node_total_cost: CostBreakdown::default(),
                max_node_cost: None,
                carol_cost: CostBreakdown::default(),
                slots: 100,
                rounds_entered: 3,
                engine: EngineKind::Exact,
                node_costs: None,
            },
            ksy: None,
            stop_reason: None,
            participant_refusals: Some(vec![0, 2, 3]),
            channel_stats: Some(vec![
                ChannelStats {
                    jammed_slots: 4,
                    ..ChannelStats::default()
                },
                ChannelStats {
                    jammed_slots: 1,
                    ..ChannelStats::default()
                },
            ]),
            trace: None,
            telemetry: None,
        }
    }

    #[test]
    fn deref_exposes_broadcast_measures() {
        let o = outcome();
        assert_eq!(o.slots, 100);
        assert!((o.informed_fraction() - 0.9).abs() < 1e-12);
        assert!(o.completed());
    }

    #[test]
    fn refusal_total() {
        let mut o = outcome();
        assert_eq!(o.total_refusals(), 5);
        o.participant_refusals = None;
        assert_eq!(o.total_refusals(), 0);
    }

    #[test]
    fn per_channel_jam_tallies() {
        let mut o = outcome();
        assert_eq!(o.jam_slots_by_channel(), vec![4, 1]);
        o.channel_stats = None;
        assert!(o.jam_slots_by_channel().is_empty());
    }

    #[test]
    fn jam_traffic_correlation_tracks_alignment() {
        let mut o = outcome();
        let stats = |sends, jams| ChannelStats {
            correct_sends: sends,
            jammed_slots: jams,
            ..ChannelStats::default()
        };
        // Jam split proportional to traffic: perfect correlation.
        o.channel_stats = Some(vec![stats(10, 5), stats(20, 10), stats(40, 20)]);
        assert!((o.jam_traffic_correlation().unwrap() - 1.0).abs() < 1e-12);
        // Anti-aligned split: strongly negative.
        o.channel_stats = Some(vec![stats(10, 20), stats(20, 10), stats(40, 5)]);
        assert!(o.jam_traffic_correlation().unwrap() < 0.0);
        // Constant jam series (uniform split): undefined.
        o.channel_stats = Some(vec![stats(10, 7), stats(20, 7), stats(40, 7)]);
        assert!(o.jam_traffic_correlation().is_none());
        // Single channel or no stats: undefined.
        o.channel_stats = Some(vec![stats(10, 7)]);
        assert!(o.jam_traffic_correlation().is_none());
        o.channel_stats = None;
        assert!(o.jam_traffic_correlation().is_none());
    }
}
