//! Xoshiro256++ (Blackman & Vigna 2019), pinned locally for replay stability.

use rand::{Error, RngCore, SeedableRng};

use crate::splitmix::SplitMix64;

/// The `xoshiro256++` generator: 256 bits of state, period `2^256 − 1`.
///
/// Implemented in-crate (rather than depending on `rand`'s algorithm
/// selection) so that a recorded `(master seed, stream label)` pair replays
/// the same simulation forever. All simulator components use this through
/// the [`SimRng`](crate::SimRng) alias.
///
/// # Example
///
/// ```
/// use rcb_rng::Xoshiro256PlusPlus;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from raw state words.
    ///
    /// The all-zero state is the one forbidden point of the state space; it
    /// is remapped through [`SplitMix64`] instead of panicking so that any
    /// input is usable.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Returns the raw state (for checkpointing a simulation mid-run).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The `jump` function: advances the state by `2^128` steps.
    ///
    /// Useful for carving a single stream into guaranteed-disjoint
    /// sub-streams without a [`SeedTree`](crate::SeedTree).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_741C,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.step();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.step().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        Self::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut s = [0u64; 4];
        sm.fill_u64(&mut s);
        Self::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // From the xoshiro256++ reference implementation with state
        // {1, 2, 3, 4}: first three outputs.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // Must not be stuck at zero.
        assert_ne!(rng.next_u64() | rng.next_u64(), 0);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_eight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
