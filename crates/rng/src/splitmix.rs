//! SplitMix64: the canonical 64-bit seed expander (Steele, Lea & Flood 2014).

/// A tiny, full-period 64-bit generator used to expand seeds.
///
/// SplitMix64 passes BigCrush for its size class and — more importantly for
/// us — turns *any* 64-bit value, including pathological ones like `0` or
/// small integers, into well-mixed state suitable for seeding
/// [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus). It is also used as a
/// cheap keyed mixer for [`SeedTree`](crate::SeedTree) label hashing.
///
/// # Example
///
/// ```
/// use rcb_rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates an expander starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 bits of the expansion.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// The stateless finalizer: a bijective mixing of one 64-bit word.
    ///
    /// Exposed so that callers can hash small fixed inputs (e.g. stream
    /// labels) without materialising a generator.
    #[must_use]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fills `out` with expanded words.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        for w in out {
            *w = self.next_u64();
        }
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_seed_zero() {
        // First outputs of SplitMix64 with seed 0, cross-checked against the
        // reference C implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn reference_vector_seed_nonzero() {
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64(), "deterministic for equal seeds");
        assert_ne!(first, SplitMix64::new(1234568).next_u64());
    }

    #[test]
    fn mix_is_not_identity_and_spreads_low_entropy() {
        // Consecutive small inputs must map to far-apart outputs.
        let a = SplitMix64::mix(1);
        let b = SplitMix64::mix(2);
        assert_ne!(a, b);
        assert!(
            (a ^ b).count_ones() > 10,
            "outputs should differ in many bits"
        );
    }

    #[test]
    fn fill_matches_sequential_calls() {
        let mut a = SplitMix64::new(42);
        let mut buf = [0u64; 8];
        a.fill_u64(&mut buf);
        let mut b = SplitMix64::new(42);
        for w in buf {
            assert_eq!(w, b.next_u64());
        }
    }
}
