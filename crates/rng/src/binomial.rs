//! Exact binomial sampling: BINV inversion and the BTPE rejection algorithm.
//!
//! BTPE is the algorithm of Kachitvichyanukul & Schmeiser, *Binomial random
//! variate generation* (CACM 31(2), 1988): a triangle / parallelogram /
//! exponential-tails envelope around the scaled binomial pmf, with squeeze
//! tests so the expensive log-likelihood evaluation is rarely reached. It
//! draws in O(1) expected time regardless of `n·p`, which is what makes the
//! phase-level simulator feasible at populations of `2^20` nodes times
//! `2^20`-slot phases.

use std::fmt;

use rand::Rng;

/// Error returned when constructing a [`Binomial`] with an invalid `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialError {
    kind: BinomialErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinomialErrorKind {
    ProbabilityNotFinite,
    ProbabilityOutOfRange,
}

impl fmt::Display for BinomialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BinomialErrorKind::ProbabilityNotFinite => write!(f, "probability was not finite"),
            BinomialErrorKind::ProbabilityOutOfRange => {
                write!(f, "probability was outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for BinomialError {}

/// An exact sampler for the binomial distribution `Bin(n, p)`.
///
/// # Example
///
/// ```
/// use rcb_rng::{Binomial, SimRng};
/// use rand::SeedableRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let d = Binomial::new(1_000_000, 0.25)?;
/// let x = d.sample(&mut rng);
/// // Mean 250k, σ ≈ 433; a sample is essentially always within 6σ.
/// assert!((x as f64 - 250_000.0).abs() < 6.0 * 433.0);
/// # Ok::<(), rcb_rng::BinomialError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// `n·min(p, 1−p)` below which the O(n·p) BINV inversion beats BTPE setup.
const BINV_THRESHOLD: f64 = 10.0;
/// BINV restarts if inversion walks implausibly far past the mean.
const BINV_MAX_X: u64 = 110;

impl Binomial {
    /// Creates a sampler for `Bin(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`BinomialError`] if `p` is not a finite value in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !p.is_finite() {
            return Err(BinomialError {
                kind: BinomialErrorKind::ProbabilityNotFinite,
            });
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(BinomialError {
                kind: BinomialErrorKind::ProbabilityOutOfRange,
            });
        }
        Ok(Self { n, p })
    }

    /// The number of trials `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The success probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one variate.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        // Work with q = min(p, 1-p) and flip at the end if needed.
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let np = self.n as f64 * p;
        let x = if np < BINV_THRESHOLD {
            sample_binv(self.n, p, rng)
        } else {
            sample_btpe(self.n, p, rng)
        };
        if flipped {
            self.n - x
        } else {
            x
        }
    }

    /// Draws via per-trial geometric skips: O(x+1) time, trivially correct.
    ///
    /// Used by the test-suite as an independent reference implementation to
    /// validate BINV/BTPE distributionally; far too slow for production use
    /// at large `n·p`.
    #[must_use]
    pub fn sample_reference<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        let ln_q = (-self.p).ln_1p();
        let mut successes = 0u64;
        let mut position = 0u64;
        loop {
            // Failures before next success ~ Geometric(p).
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / ln_q).floor();
            if !skip.is_finite() || skip >= (self.n - position) as f64 {
                return successes;
            }
            position += skip as u64 + 1;
            if position > self.n {
                return successes;
            }
            successes += 1;
            if position == self.n {
                return successes;
            }
        }
    }
}

/// BINV: sequential inversion of the cdf. Expected time O(n·p + 1).
fn sample_binv<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p <= 0.5);
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // r = q^n, computed in log space to survive large n.
    let r0 = (n as f64 * q.ln()).exp();
    loop {
        let mut r = r0;
        let mut u: f64 = rng.gen();
        let mut x = 0u64;
        loop {
            if u <= r {
                return x;
            }
            u -= r;
            x += 1;
            if x > BINV_MAX_X.max(n) || x > n {
                break; // numerically stranded past the support; restart
            }
            r *= a / x as f64 - s;
        }
    }
}

/// BTPE: triangle-parallelogram-exponential rejection. Expected O(1).
fn sample_btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p <= 0.5);
    let nf = n as f64;
    let q = 1.0 - p;
    let np = nf * p;
    let npq = np * q;
    let f_m = np + p; // mode location (real-valued)
    let m = f_m as i64; // integer mode
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = m as f64 + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + m as f64);
    // Left/right exponential tail slopes.
    let a_l = (f_m - x_l) / (f_m - x_l * p);
    let lambda_l = a_l * (1.0 + 0.5 * a_l);
    let a_r = (x_r - f_m) / (x_r * q);
    let lambda_r = a_r * (1.0 + 0.5 * a_r);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        // Step 1: select a region of the envelope.
        let u: f64 = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();
        let y: i64;
        if u <= p1 {
            // Triangular central region: accepted without further tests.
            y = (x_m - p1 * v + u) as i64;
            return clamp_support(y, n);
        } else if u <= p2 {
            // Parallelogram.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (x - x_m).abs() / p1;
            if v > 1.0 {
                continue;
            }
            y = x as i64;
        } else if u <= p3 {
            // Left exponential tail.
            y = (x_l + v.ln() / lambda_l) as i64;
            if y < 0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (x_r - v.ln() / lambda_r) as i64;
            if y < 0 || y as u64 > n {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Step 5: acceptance test for y against the true pmf ratio f(y)/f(m).
        let k = (y - m).unsigned_abs();
        if k <= 20 || k as f64 >= npq / 2.0 - 1.0 {
            // Explicit evaluation of the pmf ratio by recurrence.
            let s = p / q;
            let a = s * (nf + 1.0);
            let mut f = 1.0f64;
            match m.cmp(&y) {
                std::cmp::Ordering::Less => {
                    for i in (m + 1)..=y {
                        f *= a / i as f64 - s;
                    }
                }
                std::cmp::Ordering::Greater => {
                    for i in (y + 1)..=m {
                        f /= a / i as f64 - s;
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
            if v <= f {
                return clamp_support(y, n);
            }
        } else {
            // Squeeze: cheap bounds on ln(f(y)/f(m)) before Stirling.
            let kf = k as f64;
            let amaxp = (kf / npq) * ((kf * (kf / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
            let ynorm = -kf * kf / (2.0 * npq);
            let alv = v.ln();
            if alv < ynorm - amaxp {
                return clamp_support(y, n);
            }
            if alv <= ynorm + amaxp {
                // Final acceptance: Stirling-corrected exact log-likelihood.
                let yf = y as f64;
                let x1 = yf + 1.0;
                let f1 = m as f64 + 1.0;
                let z = nf + 1.0 - m as f64;
                let w = nf - yf + 1.0;
                let z2 = z * z;
                let x2 = x1 * x1;
                let f2 = f1 * f1;
                let w2 = w * w;
                let t = x_m * (x_m / x1).ln()
                    + (nf - m as f64 + 0.5) * (z / w).ln()
                    + (yf - m as f64) * (w * p / (x1 * q)).ln()
                    + stirling_tail(f1, f2)
                    + stirling_tail(z, z2)
                    + stirling_tail(x1, x2)
                    + stirling_tail(w, w2);
                if alv <= t {
                    return clamp_support(y, n);
                }
            }
        }
    }
}

/// The 4-term Stirling series correction used by BTPE's final test.
#[inline]
fn stirling_tail(f: f64, f2: f64) -> f64 {
    (13_860.0 - (462.0 - (132.0 - (99.0 - 140.0 / f2) / f2) / f2) / f2) / f / 166_320.0
}

#[inline]
fn clamp_support(y: i64, n: u64) -> u64 {
    debug_assert!(y >= 0, "BTPE produced negative variate");
    (y.max(0) as u64).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{binomial_mean, binomial_variance, ln_binomial_pmf};
    use crate::stats::chi_square_binned;
    use rand::SeedableRng;

    type TestRng = crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(10, f64::INFINITY).is_err());
        assert!(Binomial::new(10, 0.0).is_ok());
        assert!(Binomial::new(10, 1.0).is_ok());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = TestRng::seed_from_u64(0);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut rng), 10);
    }

    #[test]
    fn samples_stay_in_support() {
        let mut rng = TestRng::seed_from_u64(1);
        for &(n, p) in &[(1u64, 0.5f64), (5, 0.9), (100, 0.02), (10_000, 0.5)] {
            let d = Binomial::new(n, p).unwrap();
            for _ in 0..2_000 {
                assert!(d.sample(&mut rng) <= n);
            }
        }
    }

    fn check_moments(n: u64, p: f64, samples: usize, seed: u64) {
        let d = Binomial::new(n, p).unwrap();
        let mut rng = TestRng::seed_from_u64(seed);
        let mut acc = crate::stats::RunningStats::new();
        for _ in 0..samples {
            acc.push(d.sample(&mut rng) as f64);
        }
        let mean = binomial_mean(n, p);
        let var = binomial_variance(n, p);
        let se_mean = (var / samples as f64).sqrt();
        assert!(
            (acc.mean() - mean).abs() < 6.0 * se_mean + 1e-9,
            "mean off: n={n} p={p} got {} want {mean}",
            acc.mean()
        );
        // Variance of the sample variance ≈ 2σ⁴/(s−1) for near-normal data;
        // allow a generous 10x tolerance band.
        let rel = (acc.variance() - var).abs() / var.max(1e-12);
        assert!(
            rel < 0.15,
            "variance off: n={n} p={p} got {} want {var}",
            acc.variance()
        );
    }

    #[test]
    fn binv_regime_moments() {
        check_moments(50, 0.05, 40_000, 11); // np = 2.5
        check_moments(200, 0.01, 40_000, 12); // np = 2
        check_moments(30, 0.3, 40_000, 13); // np = 9
    }

    #[test]
    fn btpe_regime_moments() {
        check_moments(1_000, 0.5, 40_000, 21); // np = 500
        check_moments(100_000, 0.001, 40_000, 22); // np = 100
        check_moments(1 << 20, 0.25, 20_000, 23);
        check_moments(1 << 30, 1e-6, 20_000, 24); // np ≈ 1074
    }

    #[test]
    fn flipped_p_regime_moments() {
        check_moments(1_000, 0.93, 40_000, 31);
        check_moments(64, 0.97, 40_000, 32);
    }

    #[test]
    fn btpe_matches_pmf_chi_square() {
        // Bin(400, 0.1): np = 40 → BTPE path. Compare sampled histogram to
        // the exact pmf with a χ² test at a very conservative threshold.
        let n = 400u64;
        let p = 0.1;
        let d = Binomial::new(n, p).unwrap();
        let mut rng = TestRng::seed_from_u64(777);
        const SAMPLES: usize = 60_000;
        let lo = 20usize;
        let hi = 62usize;
        let mut observed = vec![0f64; hi - lo + 2]; // [under, bins..., over]
        for _ in 0..SAMPLES {
            let x = d.sample(&mut rng) as usize;
            let idx = if x < lo {
                0
            } else if x > hi {
                observed.len() - 1
            } else {
                x - lo + 1
            };
            observed[idx] += 1.0;
        }
        let mut expected = vec![0f64; observed.len()];
        let mut under = 0.0;
        let mut over = 0.0;
        for k in 0..=n {
            let prob = ln_binomial_pmf(n, p, k).exp();
            if (k as usize) < lo {
                under += prob;
            } else if (k as usize) > hi {
                over += prob;
            } else {
                expected[k as usize - lo + 1] = prob * SAMPLES as f64;
            }
        }
        expected[0] = under * SAMPLES as f64;
        let last = expected.len() - 1;
        expected[last] = over * SAMPLES as f64;
        let chi2 = chi_square_binned(&observed, &expected);
        // ~44 degrees of freedom; χ²₀.₉₉₉₉ ≈ 85. Use 110 to keep the test
        // deterministic-seed-stable while still catching real bugs.
        assert!(chi2 < 110.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn binv_agrees_with_reference_sampler() {
        // Same distribution through two independent code paths.
        let d = Binomial::new(80, 0.06).unwrap();
        let mut rng = TestRng::seed_from_u64(5);
        let mut fast = crate::stats::RunningStats::new();
        let mut slow = crate::stats::RunningStats::new();
        for _ in 0..30_000 {
            fast.push(d.sample(&mut rng) as f64);
            slow.push(d.sample_reference(&mut rng) as f64);
        }
        assert!((fast.mean() - slow.mean()).abs() < 0.1);
        assert!((fast.variance() - slow.variance()).abs() < 0.35);
    }

    #[test]
    fn huge_population_tiny_probability() {
        // The fast simulator's hot case: population = phase_len × nodes.
        let d = Binomial::new(1 << 40, 1e-10).unwrap();
        let mut rng = TestRng::seed_from_u64(6);
        let mut acc = crate::stats::RunningStats::new();
        for _ in 0..20_000 {
            acc.push(d.sample(&mut rng) as f64);
        }
        // mean = 2^40 × 1e-10 ≈ 109.95
        assert!((acc.mean() - 109.95).abs() < 1.5, "mean {}", acc.mean());
    }

    #[test]
    fn prop_support_and_determinism() {
        // Randomised property sweep (seeded, deterministic): samples stay
        // in the support and replay bit-for-bit from equal seeds.
        let mut gen = TestRng::seed_from_u64(0xB1D);
        for case in 0..192u64 {
            let n = rand::Rng::gen_range(&mut gen, 0u64..100_000);
            let p: f64 = rand::Rng::gen(&mut gen);
            let seed = rand::Rng::gen::<u64>(&mut gen);
            let d = Binomial::new(n, p).unwrap();
            let mut r1 = TestRng::seed_from_u64(seed);
            let mut r2 = TestRng::seed_from_u64(seed);
            let a = d.sample(&mut r1);
            let b = d.sample(&mut r2);
            assert!(a <= n, "case {case}: {a} > n={n}");
            assert_eq!(a, b, "case {case}: not deterministic (n={n}, p={p})");
        }
    }
}
