//! Log-space combinatorics: `ln Γ`, binomial pmf/cdf.
//!
//! The fast phase-level simulator needs `P(Bin(N, p) ≤ θ)` for enormous `N`
//! (phase length × population) and small thresholds `θ = O(log n)`; these
//! are computed by summing log-space pmf terms, which requires an accurate
//! `ln Γ`. We implement the Lanczos approximation — no external math crate.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with `g = 7`, 9 coefficients; absolute error below
/// `1e-13` over the domain we use (arguments ≥ 1 in practice).
///
/// # Panics
///
/// Panics if `x <= 0` (poles and the reflection branch are not needed by
/// this crate and are therefore not implemented).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    const SQRT_TWO_PI: f64 = 2.506_628_274_631_000_5;

    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64) + 1.0);
    }
    let t = x + G + 0.5;
    SQRT_TWO_PI.ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` via `ln Γ(n+1)`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    // Small cases looked up exactly to avoid accumulating approximation
    // error where it is cheap to be exact.
    const EXACT: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if n <= 20 {
        EXACT[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Log of the binomial pmf `P(Bin(n, p) = k)`.
///
/// Handles the degenerate edges `p = 0` and `p = 1` exactly.
#[must_use]
pub fn ln_binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p <= 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p >= 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln_1p_adjusted()
}

/// `P(Bin(n, p) ≤ k)` by direct log-space summation of `k + 1` terms.
///
/// Intended for small `k` (the protocol thresholds are `O(log n)`); cost is
/// `O(k)` regardless of `n`.
#[must_use]
pub fn binomial_cdf_upto(n: u64, p: f64, k: u64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    let k = k.min(n);
    // Sum pmf terms with the log-sum-exp trick anchored at the largest term.
    let logs: Vec<f64> = (0..=k).map(|j| ln_binomial_pmf(n, p, j)).collect();
    let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = logs.iter().map(|l| (l - m).exp()).sum();
    (m + sum.ln()).exp().min(1.0)
}

/// Numerically careful `(1 − p).ln()` helper.
///
/// For the pmf we need `ln(1 − p)`; `ln_1p(−p)` is accurate for small `p`.
trait Ln1pAdjusted {
    fn ln_1p_adjusted(self) -> f64;
}

impl Ln1pAdjusted for f64 {
    fn ln_1p_adjusted(self) -> f64 {
        // `self` is already `1 − p`; recover accuracy via ln_1p when close
        // to 1 (i.e. p small).
        let p = 1.0 - self;
        if p.abs() < 0.5 {
            (-p).ln_1p()
        } else {
            self.ln()
        }
    }
}

/// Mean of `Bin(n, p)`.
#[must_use]
pub fn binomial_mean(n: u64, p: f64) -> f64 {
    n as f64 * p
}

/// Variance of `Bin(n, p)`.
#[must_use]
pub fn binomial_variance(n: u64, p: f64) -> f64 {
    n as f64 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=20 {
            let expect: f64 = (1..n).map(|i| (i as f64).ln()).sum();
            assert_close(ln_gamma(n as f64), expect, 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), 10f64.ln(), 1e-12);
        assert_close(ln_choose(10, 5), 252f64.ln(), 1e-12);
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
        assert_close(ln_choose(7, 0), 0.0, 1e-15);
        assert_close(ln_choose(7, 7), 0.0, 1e-15);
    }

    #[test]
    fn pmf_sums_to_one_small_n() {
        for &(n, p) in &[(10u64, 0.3f64), (25, 0.5), (40, 0.01), (17, 0.99)] {
            let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, p, k).exp()).sum();
            assert_close(total, 1.0, 1e-9);
        }
    }

    #[test]
    fn pmf_degenerate_edges() {
        assert_eq!(ln_binomial_pmf(10, 0.0, 0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 0.0, 1), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(10, 1.0, 10), 0.0);
        assert_eq!(ln_binomial_pmf(10, 1.0, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn cdf_matches_direct_sum() {
        let n = 100;
        let p = 0.07;
        for k in [0u64, 1, 5, 10, 50, 100] {
            let direct: f64 = (0..=k.min(n)).map(|j| ln_binomial_pmf(n, p, j).exp()).sum();
            assert_close(binomial_cdf_upto(n, p, k), direct, 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let n = 1_000_000;
        let p = 3e-5;
        let mut prev = 0.0;
        for k in 0..60 {
            let c = binomial_cdf_upto(n, p, k);
            assert!(c >= prev - 1e-12, "cdf must be nondecreasing");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        // Mean is 30; far above the mean the cdf approaches 1.
        assert!(binomial_cdf_upto(n, p, 59) > 0.99999);
    }

    #[test]
    fn cdf_huge_population_small_threshold() {
        // Poisson regime: N=2^40, p=2^-40 → mean 1. P(X ≤ 0) ≈ e^{-1}.
        let n = 1u64 << 40;
        let p = (1u64 << 40) as f64;
        let c = binomial_cdf_upto(n, 1.0 / p, 0);
        assert_close(c, (-1.0f64).exp(), 1e-6);
    }
}
