//! Deterministic randomness substrate for the evildoers simulator.
//!
//! The ε-BROADCAST protocol of Gilbert & Young is driven entirely by
//! independent per-slot Bernoulli trials, and the aggregated phase-level
//! simulator needs *exact* binomial sampling over populations up to `2^20`.
//! This crate provides:
//!
//! * [`SplitMix64`] — the seed expander used everywhere a 64-bit state must
//!   be stretched into more entropy deterministically.
//! * [`Xoshiro256PlusPlus`] — a small, fast, platform-independent generator
//!   implementing [`rand::RngCore`], so simulations replay bit-for-bit
//!   across machines regardless of `rand`'s internal algorithm choices.
//! * [`SeedTree`] — hierarchical, collision-resistant stream derivation:
//!   every participant of a simulation gets an independent stream from a
//!   single master seed (`master → domain label → index`).
//! * [`CounterRng`] — counter-mode per-node streams for the era-2
//!   sleep-skipping engine: word `i` is a pure function of `(key, i)`, so
//!   a node's stream survives skipped slots and draw-order changes.
//! * [`Binomial`] — exact binomial sampling (BINV inversion for small
//!   `n·min(p,1−p)`, BTPE for large), plus a slow geometric-skip validator.
//! * [`Geometric`] — geometric sampling for skip-ahead Bernoulli streams.
//! * [`sample_distinct`](subset::sample_distinct) — Floyd's algorithm for
//!   uniform distinct index subsets (used to pick *which* listeners a
//!   successful slot informs).
//! * [`math`] — `ln Γ`, log-space binomial pmf/cdf used by the fast
//!   simulator's termination-probability computations.
//! * [`stats`] — Welford accumulators and χ² helpers used by the test
//!   suites that keep the samplers honest.
//!
//! # Example
//!
//! ```
//! use rcb_rng::{SeedTree, Binomial};
//! use rand::Rng;
//!
//! let tree = SeedTree::new(0xC0FFEE);
//! let mut node_rng = tree.stream("node", 17);
//! // How many of 10_000 uninformed nodes listen in this slot?
//! let listeners = Binomial::new(10_000, 0.003).unwrap().sample(&mut node_rng);
//! assert!(listeners <= 10_000);
//! let _coin: bool = node_rng.gen_bool(0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial;
mod counter;
mod geometric;
pub mod math;
mod splitmix;
pub mod stats;
mod streams;
pub mod subset;
mod xoshiro;

pub use binomial::{Binomial, BinomialError};
pub use counter::CounterRng;
pub use geometric::{Geometric, GeometricError};
pub use splitmix::SplitMix64;
pub use streams::SeedTree;
pub use xoshiro::Xoshiro256PlusPlus;

/// The RNG type used by every simulator component.
///
/// A concrete alias rather than a generic so that simulation replays are
/// stable across crate versions: the algorithm is pinned in this crate, not
/// inherited from `rand`.
pub type SimRng = Xoshiro256PlusPlus;
