//! Counter-based per-participant randomness for the era-2 exact engine.
//!
//! The era-1 slot loop hands every participant a stateful
//! [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus) stream, which means a
//! node's draws depend on *how many* draws it has made — fine for a loop
//! that visits every node every slot, but hostile to sleep-skipping, where
//! a node's next action is sampled directly and whole stretches of slots
//! are never visited. [`CounterRng`] decouples the stream from the visit
//! pattern: the `i`-th word of a node's stream is a pure function of
//! `(key, i)`, so the engine can jump a node's draw counter forward, park
//! it in a wakeup queue, and resume its stream later without replaying the
//! intervening draws.
//!
//! The stream is exactly the [`SplitMix64`] expansion of `key`: word `i`
//! (1-based) is `SplitMix64::mix(key + i·GOLDEN)`. SplitMix64 passes
//! BigCrush for its size class, and keyed streams derived from
//! [`SeedTree`](crate::SeedTree) leaf seeds are independent across keys.

use crate::SplitMix64;
use rand::RngCore;

/// The SplitMix64 increment (2^64 / φ, the golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A counter-mode generator: word `i` of the stream depends only on
/// `(key, i)`, never on draw interleaving.
///
/// Implements [`rand::RngCore`], so every sampler in this crate
/// ([`Geometric`](crate::Geometric), [`Binomial`](crate::Binomial), the
/// [`subset`](crate::subset) helpers) and the `rand` extension methods
/// (`gen_bool`, `gen_range`) work on it unchanged.
///
/// # Example
///
/// ```
/// use rcb_rng::CounterRng;
/// use rand::RngCore;
///
/// let mut sequential = CounterRng::new(0xFEED);
/// let first = sequential.next_u64();
/// let second = sequential.next_u64();
///
/// // Random access: resume the stream at any counter position.
/// let mut resumed = CounterRng::at(0xFEED, 1);
/// assert_eq!(resumed.next_u64(), second);
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// Creates a stream for `key`, positioned before its first word.
    #[must_use]
    pub fn new(key: u64) -> Self {
        Self { key, counter: 0 }
    }

    /// Creates a stream positioned so the next word is word `counter + 1`
    /// — i.e. `counter` words have already been consumed.
    #[must_use]
    pub fn at(key: u64, counter: u64) -> Self {
        Self { key, counter }
    }

    /// The stream key.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of words consumed so far.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Repositions the stream as if `counter` words had been consumed.
    pub fn set_counter(&mut self, counter: u64) {
        self.counter = counter;
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        // High bits, matching the workspace xoshiro convention: the best
        // bits of the 64-bit word, and one counter tick per draw.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        SplitMix64::mix(self.key.wrapping_add(self.counter.wrapping_mul(GOLDEN)))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stream_is_the_splitmix_expansion_of_the_key() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut ctr = CounterRng::new(key);
            let mut sm = SplitMix64::new(key);
            for _ in 0..64 {
                assert_eq!(ctr.next_u64(), sm.next_u64(), "key {key:#x}");
            }
        }
    }

    #[test]
    fn random_access_matches_sequential_consumption() {
        let mut sequential = CounterRng::new(42);
        let words: Vec<u64> = (0..16).map(|_| sequential.next_u64()).collect();
        for (skip, expected) in words.iter().enumerate() {
            let mut jumped = CounterRng::at(42, skip as u64);
            assert_eq!(jumped.next_u64(), *expected, "skip {skip}");
            assert_eq!(jumped.counter(), skip as u64 + 1);
        }
    }

    #[test]
    fn next_u32_takes_high_bits_and_one_tick() {
        let mut a = CounterRng::new(7);
        let mut b = CounterRng::new(7);
        for _ in 0..8 {
            let hi = a.next_u32();
            assert_eq!(hi, (b.next_u64() >> 32) as u32);
        }
        assert_eq!(a.counter(), b.counter());
    }

    #[test]
    fn distinct_keys_give_unrelated_streams() {
        let mut a = CounterRng::new(1);
        let mut b = CounterRng::new(2);
        let matches = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "adjacent keys must not share words");
    }

    #[test]
    fn works_with_rand_extension_methods() {
        let mut rng = CounterRng::new(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..=5_500).contains(&heads), "heads {heads}");
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
        }
    }

    #[test]
    fn set_counter_replays_exactly() {
        let mut rng = CounterRng::new(0xABCD);
        let _ = rng.next_u64();
        let checkpoint = rng.counter();
        let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        rng.set_counter(checkpoint);
        let replayed: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(expected, replayed);
    }
}
