//! Hierarchical stream derivation: one master seed, many independent streams.

use rand::SeedableRng;

use crate::splitmix::SplitMix64;
use crate::xoshiro::Xoshiro256PlusPlus;

/// Derives independent, reproducible RNG streams from a single master seed.
///
/// A simulation has one `SeedTree`. Each participant (Alice, node `i`,
/// Carol, the channel itself) draws its stream via a `(label, index)` pair,
/// e.g. `tree.stream("node", 17)`. Labels are hashed FNV-style and mixed
/// with [`SplitMix64::mix`], so distinct `(label, index)` pairs map to
/// independent-looking 256-bit states with no coordination.
///
/// Two trees with equal master seeds produce identical streams — this is the
/// foundation of the simulator's replay guarantee.
///
/// # Example
///
/// ```
/// use rcb_rng::SeedTree;
/// use rand::RngCore;
///
/// let t1 = SeedTree::new(42);
/// let t2 = SeedTree::new(42);
/// assert_eq!(t1.stream("alice", 0).next_u64(), t2.stream("alice", 0).next_u64());
/// assert_ne!(t1.stream("alice", 0).next_u64(), t1.stream("carol", 0).next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    master: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed this tree was built from.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit leaf seed for `(label, index)`.
    #[must_use]
    pub fn leaf_seed(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over the label, offset by the master seed, then finalized
        // twice: once folding in the index, once for avalanche.
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET ^ self.master.rotate_left(17);
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        let mixed = SplitMix64::mix(h ^ self.master);
        SplitMix64::mix(mixed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Creates the RNG stream for `(label, index)`.
    #[must_use]
    pub fn stream(&self, label: &str, index: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.leaf_seed(label, index))
    }

    /// Derives a sub-tree, for namespacing (e.g. one sub-tree per trial).
    #[must_use]
    pub fn subtree(&self, label: &str, index: u64) -> SeedTree {
        SeedTree::new(self.leaf_seed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let t = SeedTree::new(7);
        let mut a = t.stream("node", 3);
        let mut b = SeedTree::new(7).stream("node", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_labels_and_indices_give_distinct_seeds() {
        let t = SeedTree::new(1);
        let mut seen = HashSet::new();
        for label in ["alice", "carol", "node", "channel", "trial"] {
            for idx in 0..1000 {
                assert!(
                    seen.insert(t.leaf_seed(label, idx)),
                    "collision at ({label}, {idx})"
                );
            }
        }
    }

    #[test]
    fn different_masters_decorrelate() {
        let a = SeedTree::new(100).leaf_seed("node", 0);
        let b = SeedTree::new(101).leaf_seed("node", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn subtree_namespacing_is_stable_and_distinct() {
        let t = SeedTree::new(9);
        let s0 = t.subtree("trial", 0);
        let s1 = t.subtree("trial", 1);
        assert_ne!(s0.leaf_seed("node", 0), s1.leaf_seed("node", 0));
        assert_eq!(
            s0.leaf_seed("node", 5),
            t.subtree("trial", 0).leaf_seed("node", 5)
        );
    }

    #[test]
    fn label_prefixes_do_not_collide() {
        // "ab"+index vs "a"+"bindex"-style ambiguity must not produce equal
        // seeds for the obvious adversarial pairs.
        let t = SeedTree::new(0);
        assert_ne!(t.leaf_seed("ab", 1), t.leaf_seed("a", 1));
        assert_ne!(t.leaf_seed("node1", 0), t.leaf_seed("node", 10));
    }
}
