//! Geometric sampling for skip-ahead Bernoulli streams.
//!
//! A node that listens each slot independently with probability `p` can be
//! simulated without touching the slots it sleeps through: the gap to its
//! next active slot is `Geometric(p)`. The exact engine uses this to skip
//! a participant forward across long idle stretches.

use std::fmt;

use rand::Rng;

/// Error returned when constructing a [`Geometric`] with an invalid `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometricError(());

impl fmt::Display for GeometricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probability must be finite and in (0, 1]")
    }
}

impl std::error::Error for GeometricError {}

/// Samples the number of failures before the first success of a Bernoulli
/// process with success probability `p`.
///
/// Support is `{0, 1, 2, …}`; `P(X = k) = (1−p)^k · p`.
///
/// # Example
///
/// ```
/// use rcb_rng::{Geometric, SimRng};
/// use rand::SeedableRng;
///
/// let mut rng = SimRng::seed_from_u64(2);
/// let g = Geometric::new(0.25)?;
/// let gap = g.sample(&mut rng);
/// // Skip `gap` silent slots, act in slot `gap`.
/// # let _ = gap;
/// # Ok::<(), rcb_rng::GeometricError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    ln_q: f64,
}

impl Geometric {
    /// Creates a sampler with success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometricError`] if `p` is not finite or not in `(0, 1]`.
    /// (`p = 0` is rejected: the waiting time would be infinite.)
    pub fn new(p: f64) -> Result<Self, GeometricError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(GeometricError(()));
        }
        Ok(Self {
            p,
            ln_q: (-p).ln_1p(),
        })
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one variate: failures before the first success.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inversion: ⌊ln U / ln(1−p)⌋ is Geometric(p).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let x = u.ln() / self.ln_q;
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }

    /// Mean `= (1−p)/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;
    use rand::SeedableRng;

    type TestRng = crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_invalid() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(-0.5).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
        assert!(Geometric::new(1.0).is_ok());
    }

    #[test]
    fn p_one_is_always_zero() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = TestRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }

    #[test]
    fn moments_match_for_various_p() {
        for (i, &p) in [0.5f64, 0.1, 0.01, 0.9].iter().enumerate() {
            let g = Geometric::new(p).unwrap();
            let mut rng = TestRng::seed_from_u64(40 + i as u64);
            let mut acc = RunningStats::new();
            for _ in 0..60_000 {
                acc.push(g.sample(&mut rng) as f64);
            }
            let mean = g.mean();
            let sd = ((1.0 - p) / (p * p)).sqrt();
            let se = sd / (60_000f64).sqrt();
            assert!(
                (acc.mean() - mean).abs() < 6.0 * se,
                "p={p}: mean {} want {mean}",
                acc.mean()
            );
        }
    }

    #[test]
    fn matches_bernoulli_loop_distribution() {
        // The sampler must agree with literally flipping coins.
        let p = 0.2;
        let g = Geometric::new(p).unwrap();
        let mut rng = TestRng::seed_from_u64(50);
        let mut direct = RunningStats::new();
        let mut inverted = RunningStats::new();
        for _ in 0..30_000 {
            inverted.push(g.sample(&mut rng) as f64);
            let mut k = 0u64;
            while !rand::Rng::gen_bool(&mut rng, p) {
                k += 1;
            }
            direct.push(k as f64);
        }
        assert!((direct.mean() - inverted.mean()).abs() < 0.1);
        assert!((direct.variance() - inverted.variance()).abs() < 2.0);
    }

    #[test]
    fn tiny_p_does_not_overflow() {
        let g = Geometric::new(1e-300).unwrap();
        let mut rng = TestRng::seed_from_u64(51);
        let x = g.sample(&mut rng);
        assert!(x > 0, "waiting time for p=1e-300 is astronomically large");
    }
}
