//! Streaming statistics and goodness-of-fit helpers.
//!
//! Used pervasively by this workspace's test suites (validating samplers
//! and cross-checking the exact engine against the fast simulator) and by
//! `rcb-analysis` for experiment summaries.

/// Welford's online mean/variance accumulator.
///
/// Numerically stable single-pass computation; merging two accumulators is
/// supported so trials can be aggregated across worker threads.
///
/// # Example
///
/// ```
/// use rcb_rng::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n−1 denominator); 0 for fewer than two
    /// observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (n denominator).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw sum of squared deviations from the mean (`M2` in Welford's
    /// formulation). Exposed so accumulators can be serialised bit-exactly
    /// (dividing through [`variance`](Self::variance) and multiplying back
    /// would not round-trip); pair with [`from_raw_parts`](Self::from_raw_parts).
    #[must_use]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reassembles an accumulator from its raw fields, the inverse of
    /// (`count`, `mean`, [`m2`](Self::m2), `min`, `max`). The caller is
    /// responsible for passing a consistent set — this is a serialisation
    /// hook (the sweep result cache persists accumulators bit-exactly),
    /// not a general constructor.
    #[must_use]
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (Chan et al. formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Pearson χ² statistic over pre-binned observed/expected counts.
///
/// Bins with expected count below `1e-9` are skipped (they contribute no
/// information and would divide by ~zero).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn chi_square_binned(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected must have equal bin counts"
    );
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 1e-9)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

/// Empirical quantile by linear interpolation on a sorted copy.
///
/// `q` must be in `[0, 1]`. Returns `None` for empty data.
#[must_use]
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile data must not contain NaN")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: RunningStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_dataset() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let whole: RunningStats = data.iter().copied().collect();
        let mut left: RunningStats = data[..400].iter().copied().collect();
        let right: RunningStats = data[400..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn chi_square_zero_for_perfect_fit() {
        let obs = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_binned(&obs, &obs), 0.0);
    }

    #[test]
    fn chi_square_known_value() {
        let obs = [12.0, 8.0];
        let exp = [10.0, 10.0];
        assert!((chi_square_binned(&obs, &exp) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal bin counts")]
    fn chi_square_length_mismatch_panics() {
        let _ = chi_square_binned(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn quantile_basics() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&data, 1.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.3), Some(3.0));
    }
}
