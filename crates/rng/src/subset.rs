//! Uniform sampling of distinct indices.
//!
//! When a propagation-phase slot succeeds, *every listener* of that slot
//! becomes informed; the aggregated simulator knows only how many of the
//! `u` uninformed nodes listened. Converting that count into concrete node
//! identities (for per-node bookkeeping) requires a uniform `k`-subset of
//! `{0, …, u−1}` — Floyd's algorithm does this in `O(k)` expected time and
//! `O(k)` space, independent of `u`.

use std::collections::HashSet;

use rand::Rng;

/// Samples `k` distinct values uniformly from `0..n` (Floyd's algorithm).
///
/// The returned vector is in insertion order, **not** sorted and **not**
/// uniformly permuted; callers that need a uniform random *sequence* should
/// shuffle it.
///
/// # Panics
///
/// Panics if `k > n` — there is no `k`-subset to sample.
///
/// # Example
///
/// ```
/// use rcb_rng::{subset::sample_distinct, SimRng};
/// use rand::SeedableRng;
///
/// let mut rng = SimRng::seed_from_u64(3);
/// let picks = sample_distinct(&mut rng, 1_000_000, 5);
/// assert_eq!(picks.len(), 5);
/// ```
#[must_use]
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: u64, k: u64) -> Vec<u64> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    let mut chosen: HashSet<u64> = HashSet::with_capacity(k as usize);
    let mut out = Vec::with_capacity(k as usize);
    // Floyd: for j = n-k .. n-1, pick t in [0, j]; insert t unless already
    // present, in which case insert j. Produces a uniform k-subset.
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Fisher–Yates partial shuffle: moves a uniform `k`-subset of `items` to
/// the front, in uniform random order, and returns that prefix length.
///
/// Used when a phase informs `k` nodes out of a materialised roster and the
/// caller wants both the identities and a random service order.
pub fn partial_shuffle<T, R: Rng + ?Sized>(rng: &mut R, items: &mut [T], k: usize) -> usize {
    let k = k.min(items.len());
    for i in 0..k {
        let j = rng.gen_range(i..items.len());
        items.swap(i, j);
    }
    k
}

/// Draws a Bernoulli subset: each of `0..n` included independently w.p. `p`.
///
/// Implemented with geometric skips so the cost is proportional to the
/// output size, not to `n`. Used by the exact engine to decide which nodes
/// act in a slot without iterating all of them.
#[must_use]
pub fn bernoulli_subset<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> Vec<u64> {
    if p <= 0.0 || n == 0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..n).collect();
    }
    let ln_q = (-p).ln_1p();
    let mut out = Vec::new();
    let mut idx = 0u64;
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = u.ln() / ln_q;
        if skip >= (n - idx) as f64 {
            return out;
        }
        idx += skip as u64;
        out.push(idx);
        idx += 1;
        if idx >= n {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type TestRng = crate::Xoshiro256PlusPlus;

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = TestRng::seed_from_u64(0);
        for &(n, k) in &[(10u64, 10u64), (100, 3), (1 << 40, 50), (1, 1), (5, 0)] {
            let v = sample_distinct(&mut rng, n, k);
            assert_eq!(v.len(), k as usize);
            let set: HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), k as usize, "duplicates for n={n} k={k}");
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversized_k() {
        let mut rng = TestRng::seed_from_u64(0);
        let _ = sample_distinct(&mut rng, 3, 4);
    }

    #[test]
    fn sample_distinct_is_approximately_uniform() {
        // Sample 2-subsets of {0..5}; each element should appear with
        // frequency 2/6 = 1/3.
        let mut rng = TestRng::seed_from_u64(9);
        let mut counts = [0u32; 6];
        const TRIALS: u32 = 60_000;
        for _ in 0..TRIALS {
            for x in sample_distinct(&mut rng, 6, 2) {
                counts[x as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / f64::from(TRIALS);
            assert!(
                (freq - 1.0 / 3.0).abs() < 0.01,
                "element {i} frequency {freq}"
            );
        }
    }

    #[test]
    fn partial_shuffle_prefix_is_subset() {
        let mut rng = TestRng::seed_from_u64(1);
        let mut items: Vec<u32> = (0..50).collect();
        let k = partial_shuffle(&mut rng, &mut items, 7);
        assert_eq!(k, 7);
        let prefix: HashSet<_> = items[..7].iter().collect();
        assert_eq!(prefix.len(), 7);
        // Still a permutation of the original multiset.
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_k_larger_than_len() {
        let mut rng = TestRng::seed_from_u64(2);
        let mut items = vec![1, 2, 3];
        assert_eq!(partial_shuffle(&mut rng, &mut items, 10), 3);
    }

    #[test]
    fn bernoulli_subset_edges() {
        let mut rng = TestRng::seed_from_u64(3);
        assert!(bernoulli_subset(&mut rng, 100, 0.0).is_empty());
        assert_eq!(bernoulli_subset(&mut rng, 5, 1.0), vec![0, 1, 2, 3, 4]);
        assert!(bernoulli_subset(&mut rng, 0, 0.7).is_empty());
    }

    #[test]
    fn bernoulli_subset_density_matches_p() {
        let mut rng = TestRng::seed_from_u64(4);
        let n = 200_000u64;
        let p = 0.03;
        let total: usize = (0..20)
            .map(|_| bernoulli_subset(&mut rng, n, p).len())
            .sum();
        let mean = total as f64 / 20.0;
        let expect = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p) / 20.0).sqrt();
        assert!(
            (mean - expect).abs() < 6.0 * sd,
            "mean {mean}, expect {expect}"
        );
    }

    #[test]
    fn bernoulli_subset_is_sorted_and_distinct() {
        let mut rng = TestRng::seed_from_u64(5);
        let v = bernoulli_subset(&mut rng, 10_000, 0.05);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&x| x < 10_000));
    }
}
