//! Carol's strategy library.
//!
//! Theorem 1 quantifies over *every* adversary; the lemmas of §2.3 and §2.2
//! identify the worst cases. This crate makes each named attack from the
//! paper executable, at both simulation granularities:
//!
//! * slot level ([`rcb_radio::Adversary`]) for the exact engine, and
//! * phase level ([`rcb_core::fast::PhaseAdversary`]) for the fast
//!   simulator.
//!
//! | strategy | paper reference | what it does |
//! |---|---|---|
//! | [`ContinuousJammer`] | Lemma 10/11 budget argument | jam every slot until broke |
//! | [`RandomJammer`] | Pelc–Peleg-style random faults | jam each slot i.i.d. with probability `p` |
//! | [`BurstyJammer`] | Awerbuch et al. bursty model | alternating jam bursts and sleep gaps |
//! | [`PhaseBlocker`] | Lemma 10 strategies 1 & 2 | jam a β-fraction of chosen phase kinds each round |
//! | [`EpsilonExtractor`] | §2.3 n-uniform discussion | block propagation totally but spare hand-picked nodes |
//! | [`NackSpoofer`] | §2.2 spoofing attack | Byzantine fake nacks keep Alice awake |
//! | [`ReactiveJammer`] | §4.1 | jam only slots with detected RSSI activity |
//! | [`LaggedJammer`] | §4.1 without in-slot CCA | jam the slot *after* detected activity (slot-only) |
//! | [`SplitJammer`] | Chen–Zheng multi-channel model | blanket every channel, splitting the budget (channel-aware) |
//! | [`SweepJammer`] | Chen–Zheng multi-channel model | jam one channel at a time, sweeping the spectrum (channel-aware) |
//! | [`ChannelLaggedJammer`] | multi-channel lagged CCA | jam last slot's active channels (channel-aware) |
//! | [`AdaptiveJammer`] | Chen–Zheng 2020 adaptive adversary | track per-channel traffic estimates, greedily jam the hottest channels (channel-aware) |
//!
//! Every strategy is deterministic given its seed; the analysis harness
//! constructs them from a serialisable [`StrategySpec`]. Four simulation
//! granularities exist:
//!
//! * slot level ([`rcb_radio::Adversary`]) — every strategy;
//! * ε-BROADCAST phase level ([`rcb_core::fast::PhaseAdversary`]) — the
//!   single-channel strategies with a phase model
//!   ([`StrategySpec::phase_adversary`] returns `None` for slot-only
//!   ones like [`LaggedJammer`]);
//! * multi-channel phase level ([`rcb_core::fast_mc::PhaseJammer`], the
//!   `fast_mc` hopping simulator) — the **whole schedule-free zoo**: the
//!   channel-aware family via [`AdaptivePhaseJammer`] /
//!   [`ChannelLaggedPhaseJammer`] and the direct `PhaseJammer` impls on
//!   [`SplitJammer`] / [`SweepJammer`], plus the lowered single-channel
//!   strategies — [`RandomJammer`] (per-phase binomial), [`BurstyJammer`]
//!   (exact periodic interval counts), and [`LaggedPhaseJammer`]
//!   (expected union-activity pacing). Only the schedule-bound family
//!   stays off this tier ([`StrategySpec::phase_jammer`] returns `None`).
//! * fluid mean-field level ([`rcb_core::fluid::FluidJammer`], the
//!   deterministic O(phases) tier) — every phase-mc strategy joins via
//!   its expectation model: [`PhaseLoweredFluidJammer`] adapts the
//!   deterministic lowerings verbatim and [`RandomFluidJammer`] replaces
//!   `Random`'s binomial draw with its mean
//!   ([`StrategySpec::fluid_jammer`]).
//!
//! `rcb_sim::Scenario` rejects any strategy × engine combination without
//! a model at the required granularity with a typed error. Channel-aware
//! strategies additionally require a protocol hosting a multi-channel
//! spectrum ([`StrategySpec::requires_channels`]), which `Scenario` also
//! enforces at build time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod bursty;
mod continuous;
mod fluid;
mod lagged;
mod multichannel;
mod nuniform;
mod phase_blocker;
mod phase_mc;
mod random;
mod reactive;
mod spec;
mod spoofer;

pub use adaptive::AdaptiveJammer;
pub use bursty::BurstyJammer;
pub use continuous::ContinuousJammer;
pub use fluid::{PhaseLoweredFluidJammer, RandomFluidJammer};
pub use lagged::LaggedJammer;
pub use multichannel::{ChannelLaggedJammer, SplitJammer, SweepJammer};
pub use nuniform::EpsilonExtractor;
pub use phase_blocker::{PhaseBlocker, PhaseTarget};
pub use phase_mc::{AdaptivePhaseJammer, ChannelLaggedPhaseJammer, LaggedPhaseJammer};
pub use random::RandomJammer;
pub use reactive::ReactiveJammer;
pub use spec::StrategySpec;
pub use spoofer::NackSpoofer;

// Re-export the passive baselines so downstream code has one import path
// for "every adversary".
pub use rcb_core::fast::SilentPhaseAdversary;
pub use rcb_core::fast_mc::SilentPhaseJammer;
pub use rcb_core::fluid::SilentFluidJammer;
pub use rcb_radio::SilentAdversary;

#[cfg(test)]
mod test_util {
    use rcb_core::{BroadcastOutcome, BroadcastSoaScratch, Params, RunConfig};

    /// One-shot scratch run, shared by every strategy's test module.
    pub(crate) fn run_broadcast(
        params: &Params,
        adversary: &mut dyn rcb_radio::Adversary,
        config: &RunConfig,
    ) -> BroadcastOutcome {
        BroadcastSoaScratch::new().run(params, adversary, config).0
    }
}
