//! Carol's strategy library.
//!
//! Theorem 1 quantifies over *every* adversary; the lemmas of §2.3 and §2.2
//! identify the worst cases. This crate makes each named attack from the
//! paper executable, at both simulation granularities:
//!
//! * slot level ([`rcb_radio::Adversary`]) for the exact engine, and
//! * phase level ([`rcb_core::fast::PhaseAdversary`]) for the fast
//!   simulator.
//!
//! | strategy | paper reference | what it does |
//! |---|---|---|
//! | [`ContinuousJammer`] | Lemma 10/11 budget argument | jam every slot until broke |
//! | [`RandomJammer`] | Pelc–Peleg-style random faults | jam each slot i.i.d. with probability `p` |
//! | [`BurstyJammer`] | Awerbuch et al. bursty model | alternating jam bursts and sleep gaps |
//! | [`PhaseBlocker`] | Lemma 10 strategies 1 & 2 | jam a β-fraction of chosen phase kinds each round |
//! | [`EpsilonExtractor`] | §2.3 n-uniform discussion | block propagation totally but spare hand-picked nodes |
//! | [`NackSpoofer`] | §2.2 spoofing attack | Byzantine fake nacks keep Alice awake |
//! | [`ReactiveJammer`] | §4.1 | jam only slots with detected RSSI activity |
//! | [`LaggedJammer`] | §4.1 without in-slot CCA | jam the slot *after* detected activity (slot-only) |
//!
//! Every strategy is deterministic given its seed; the analysis harness
//! constructs them from a serialisable [`StrategySpec`]. Strategies whose
//! decisions are inherently slot-granular (currently [`LaggedJammer`])
//! have no phase-level counterpart — [`StrategySpec::phase_adversary`]
//! returns `None` for them and `rcb_sim::Scenario` rejects the
//! combination with a typed error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bursty;
mod continuous;
mod lagged;
mod nuniform;
mod phase_blocker;
mod random;
mod reactive;
mod spec;
mod spoofer;

pub use bursty::BurstyJammer;
pub use continuous::ContinuousJammer;
pub use lagged::LaggedJammer;
pub use nuniform::EpsilonExtractor;
pub use phase_blocker::{PhaseBlocker, PhaseTarget};
pub use random::RandomJammer;
pub use reactive::ReactiveJammer;
pub use spec::StrategySpec;
pub use spoofer::NackSpoofer;

// Re-export the passive baselines so downstream code has one import path
// for "every adversary".
pub use rcb_core::fast::SilentPhaseAdversary;
pub use rcb_radio::SilentAdversary;

#[cfg(test)]
mod test_util {
    use rcb_core::{BroadcastOutcome, BroadcastScratch, Params, RunConfig};

    /// One-shot scratch run, shared by every strategy's test module.
    pub(crate) fn run_broadcast(
        params: &Params,
        adversary: &mut dyn rcb_radio::Adversary,
        config: &RunConfig,
    ) -> BroadcastOutcome {
        BroadcastScratch::new().run(params, adversary, config).0
    }
}
