//! The bursty jammer: alternating jam bursts and quiet gaps.

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::fast_mc::{McPhaseCtx, McPhasePlan, PhaseJammer};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};

/// Jams in fixed-length bursts separated by fixed-length gaps — the
/// rate-limited bursty pattern of Awerbuch et al. \[4\] and Richa et al.
/// [27, 28].
///
/// The duty cycle is `burst/(burst+gap)`; budget exhaustion is handled by
/// the engine (jams fizzle once broke).
#[derive(Debug, Clone, Copy)]
pub struct BurstyJammer {
    burst: u64,
    gap: u64,
    phase_offset: u64,
}

impl BurstyJammer {
    /// Creates a jammer that jams `burst` slots then sleeps `gap` slots.
    ///
    /// # Panics
    ///
    /// Panics if `burst + gap == 0`.
    #[must_use]
    pub fn new(burst: u64, gap: u64) -> Self {
        assert!(burst + gap > 0, "burst + gap must be positive");
        Self {
            burst,
            gap,
            phase_offset: 0,
        }
    }

    /// Shifts the burst pattern by `offset` slots (for phase-alignment
    /// experiments).
    #[must_use]
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.phase_offset = offset;
        self
    }

    /// The duty cycle `burst/(burst+gap)`.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.burst as f64 / (self.burst + self.gap) as f64
    }

    fn jams_at(&self, slot: u64) -> bool {
        let period = self.burst + self.gap;
        (slot + self.phase_offset) % period < self.burst
    }

    /// Number of jammed slots in `[0, x)` of the shifted pattern: whole
    /// periods contribute `burst` each, the trailing partial period its
    /// overlap with the burst window.
    fn jammed_before(&self, x: u64) -> u64 {
        let period = self.burst + self.gap;
        (x / period) * self.burst + (x % period).min(self.burst)
    }

    /// Exact number of jammed slots in `[start, start + len)` — bursts
    /// straddling the range boundaries are counted by their overlap, not
    /// rounded per burst.
    #[must_use]
    pub fn jammed_in_range(&self, start: u64, len: u64) -> u64 {
        let shifted = start + self.phase_offset;
        self.jammed_before(shifted + len) - self.jammed_before(shifted)
    }
}

impl Adversary for BurstyJammer {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        if self.jams_at(slot.index()) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }
}

impl PhaseAdversary for BurstyJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        // Deterministic duty cycle over the phase.
        let jam = (ctx.phase_len as f64 * self.duty_cycle()).round() as u64;
        PhasePlan::jam(jam)
    }
}

impl PhaseJammer for BurstyJammer {
    /// Multi-channel phase lowering: the exact jammed-slot count of the
    /// periodic pattern over `[start_slot, start_slot + phase_len)` —
    /// bursts straddling the phase boundary contribute exactly their
    /// overlap — planned on channel 0 only, because the slot pattern is
    /// `jam_all`, the source paper's single-channel "jam everything"
    /// (one unit per firing slot, channel 0).
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        plan.set_jam(
            rcb_radio::ChannelId::ZERO,
            self.jammed_in_range(ctx.start_slot, ctx.phase_len),
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_period() {
        let _ = BurstyJammer::new(0, 0);
    }

    #[test]
    fn pattern_is_periodic() {
        let mut carol = BurstyJammer::new(3, 2);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let pattern: Vec<bool> = (0..10)
            .map(|t| carol.plan(Slot::new(t), &ctx).jam.is_active())
            .collect();
        assert_eq!(
            pattern,
            [true, true, true, false, false, true, true, true, false, false]
        );
        assert!((carol.duty_cycle() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn offset_shifts_pattern() {
        let mut carol = BurstyJammer::new(1, 1).with_offset(1);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        assert!(!carol.plan(Slot::new(0), &ctx).jam.is_active());
        assert!(carol.plan(Slot::new(1), &ctx).jam.is_active());
    }

    #[test]
    fn bursty_attack_does_not_stop_broadcast() {
        let params = Params::builder(32).build().unwrap();
        let cfg = RunConfig::seeded(9).carol_budget(Budget::limited(4_000));
        let mut carol = BurstyJammer::new(50, 50);
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(outcome.informed_fraction() > 0.9);
    }

    #[test]
    fn jammed_in_range_matches_the_slot_pattern_exactly() {
        // Burst 3 / gap 2 with an offset: compare the closed form
        // against brute-force slot enumeration over awkward ranges that
        // straddle burst boundaries.
        let carol = BurstyJammer::new(3, 2).with_offset(4);
        for start in 0..12u64 {
            for len in 0..17u64 {
                let expected = (start..start + len).filter(|&t| carol.jams_at(t)).count() as u64;
                assert_eq!(
                    carol.jammed_in_range(start, len),
                    expected,
                    "start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn phase_mc_plan_counts_straddling_bursts_exactly() {
        use rcb_core::fast_mc::{McPhaseCtx, PhaseJammer};
        use rcb_radio::{PhaseObservation, Spectrum};

        let spectrum = Spectrum::new(2);
        let mut carol = BurstyJammer::new(50, 50);
        let empty = PhaseObservation::empty(spectrum);
        // Phase of 32 slots starting at slot 32: slots 32..50 are in the
        // first burst (18 slots), 50..64 in the gap.
        let ctx = McPhaseCtx {
            phase: 1,
            start_slot: 32,
            phase_len: 32,
            spectrum,
            budget_remaining: None,
            uninformed: 5,
            informed: 0,
            observation: &empty,
        };
        let plan = PhaseJammer::plan_phase(&mut carol, &ctx);
        // jam_all is the single-channel pattern: channel 0 only.
        assert_eq!(plan.jam_slots(), &[18, 0]);
    }

    #[test]
    fn phase_plan_respects_duty_cycle() {
        let mut carol = BurstyJammer::new(1, 3);
        let ctx = PhaseCtx {
            round: 6,
            phase: rcb_core::PhaseKind::Inform,
            phase_len: 4000,
            budget_remaining: None,
            uninformed: 1,
        };
        assert_eq!(PhaseAdversary::plan_phase(&mut carol, &ctx).jam_slots, 1000);
    }
}
