//! The bursty jammer: alternating jam bursts and quiet gaps.

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};

/// Jams in fixed-length bursts separated by fixed-length gaps — the
/// rate-limited bursty pattern of Awerbuch et al. \[4\] and Richa et al.
/// [27, 28].
///
/// The duty cycle is `burst/(burst+gap)`; budget exhaustion is handled by
/// the engine (jams fizzle once broke).
#[derive(Debug, Clone, Copy)]
pub struct BurstyJammer {
    burst: u64,
    gap: u64,
    phase_offset: u64,
}

impl BurstyJammer {
    /// Creates a jammer that jams `burst` slots then sleeps `gap` slots.
    ///
    /// # Panics
    ///
    /// Panics if `burst + gap == 0`.
    #[must_use]
    pub fn new(burst: u64, gap: u64) -> Self {
        assert!(burst + gap > 0, "burst + gap must be positive");
        Self {
            burst,
            gap,
            phase_offset: 0,
        }
    }

    /// Shifts the burst pattern by `offset` slots (for phase-alignment
    /// experiments).
    #[must_use]
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.phase_offset = offset;
        self
    }

    /// The duty cycle `burst/(burst+gap)`.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.burst as f64 / (self.burst + self.gap) as f64
    }

    fn jams_at(&self, slot: u64) -> bool {
        let period = self.burst + self.gap;
        (slot + self.phase_offset) % period < self.burst
    }
}

impl Adversary for BurstyJammer {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        if self.jams_at(slot.index()) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }
}

impl PhaseAdversary for BurstyJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        // Deterministic duty cycle over the phase.
        let jam = (ctx.phase_len as f64 * self.duty_cycle()).round() as u64;
        PhasePlan::jam(jam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_period() {
        let _ = BurstyJammer::new(0, 0);
    }

    #[test]
    fn pattern_is_periodic() {
        let mut carol = BurstyJammer::new(3, 2);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let pattern: Vec<bool> = (0..10)
            .map(|t| carol.plan(Slot::new(t), &ctx).jam.is_active())
            .collect();
        assert_eq!(
            pattern,
            [true, true, true, false, false, true, true, true, false, false]
        );
        assert!((carol.duty_cycle() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn offset_shifts_pattern() {
        let mut carol = BurstyJammer::new(1, 1).with_offset(1);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        assert!(!carol.plan(Slot::new(0), &ctx).jam.is_active());
        assert!(carol.plan(Slot::new(1), &ctx).jam.is_active());
    }

    #[test]
    fn bursty_attack_does_not_stop_broadcast() {
        let params = Params::builder(32).build().unwrap();
        let cfg = RunConfig::seeded(9).carol_budget(Budget::limited(4_000));
        let mut carol = BurstyJammer::new(50, 50);
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(outcome.informed_fraction() > 0.9);
    }

    #[test]
    fn phase_plan_respects_duty_cycle() {
        let mut carol = BurstyJammer::new(1, 3);
        let ctx = PhaseCtx {
            round: 6,
            phase: rcb_core::PhaseKind::Inform,
            phase_len: 4000,
            budget_remaining: None,
            uninformed: 1,
        };
        assert_eq!(carol.plan_phase(&ctx).jam_slots, 1000);
    }
}
