//! Phase-level lowerings of the channel-aware jammers — the
//! [`PhaseJammer`] counterparts that let the whole multi-channel
//! adversary family run on the `fast_mc` phase-level simulator.
//!
//! A slot-level strategy decides one [`JamPlan`](rcb_radio::JamPlan) per
//! slot from per-slot observations; its phase lowering decides one
//! per-channel *slot-count* split per phase from the previous phase's
//! [`PhaseObservation`] rollup. The oblivious strategies lower exactly:
//!
//! * [`SplitJammer`] — blanket every channel for the whole phase (the
//!   engine's budget fizzle reproduces the `T / C`-slot blanket);
//! * [`SweepJammer`] — the per-channel slot counts of the sweep pattern
//!   over the phase's slot range, in closed form;
//! * [`ContinuousJammer`] — the whole phase on channel 0.
//!
//! The reactive strategies cannot lower exactly — their per-slot
//! decisions depend on slot-level traffic the phase engine never
//! materialises — so their adapters pace themselves by the *expected
//! active slots* per channel ([`PhaseObservation::expected_active_slots`],
//! the Poissonisation of the observed send counts), which is precisely
//! what the slot-level versions would have spent in expectation:
//!
//! * [`ChannelLaggedPhaseJammer`] — jam next phase on each channel in
//!   proportion to its expected active slots last phase;
//! * [`LaggedPhaseJammer`] — the single-channel-born lagged reactive
//!   jammer ([`LaggedJammer`](crate::LaggedJammer)): jam the next phase,
//!   on channel 0 (its slot pattern is `jam_all`, the single-channel
//!   "jam everything"), for the expected number of slots whose
//!   *predecessor* carried correct traffic — the union-activity
//!   Poissonisation of last phase's total sends;
//! * [`AdaptivePhaseJammer`] — the Chen–Zheng 2020 adaptive rule at
//!   phase granularity: EMA heat per channel (observed sends + clean
//!   deliveries), a windowed activity gate, spend paced by the observed
//!   traffic rate, placement greedily on the hottest candidates.
//!
//! The remaining oblivious slot strategies (`Random`, `Bursty`) lower in
//! their own modules, next to their private pattern state: a per-phase
//! binomial draw and the exact periodic-interval count respectively.
//! With those, the **whole schedule-free zoo** runs on `fast_mc`.
//!
//! Statistical agreement of the lowered family with the exact engine is
//! validated by `tests/fast_mc_vs_exact.rs`, the dedicated lowering
//! suite in `tests/phase_lowerings.rs`, and experiments E13/E19.

use std::collections::VecDeque;

use rcb_core::fast_mc::{McPhaseCtx, McPhasePlan, PhaseJammer};
use rcb_radio::{ChannelId, PhaseObservation, Spectrum};

use crate::{ContinuousJammer, SplitJammer, SweepJammer};

impl PhaseJammer for ContinuousJammer {
    /// Jams channel 0 for the whole phase — the single-channel
    /// scorched-earth attack, budget permitting (the engine clamps).
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        plan.set_jam(ChannelId::ZERO, ctx.phase_len);
        plan
    }
}

impl PhaseJammer for SplitJammer {
    /// Blankets every channel for the whole phase. With a finite budget
    /// the engine's proportional fizzle reproduces the exact engine's
    /// `T / C`-slot blanket.
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        McPhasePlan::blanket(ctx.spectrum, ctx.phase_len)
    }
}

impl PhaseJammer for SweepJammer {
    /// The exact per-channel slot counts of the sweep pattern over
    /// `[start_slot, start_slot + phase_len)`.
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        let c = u64::from(ctx.spectrum.channel_count());
        let dwell = self.dwell();
        let end = ctx.start_slot + ctx.phase_len;
        let mut t = ctx.start_slot;
        while t < end {
            let block = t / dwell;
            let block_end = ((block + 1) * dwell).min(end);
            let channel = ChannelId::new((block % c) as u16);
            plan.set_jam(channel, plan.jam_on(channel) + (block_end - t));
            t = block_end;
        }
        plan
    }
}

/// Phase lowering of [`ChannelLaggedJammer`](crate::ChannelLaggedJammer):
/// jam, in the next phase, each channel in proportion to the traffic it
/// carried in the previous one.
///
/// The slot-level jammer spends one unit on every channel that was
/// active in the immediately preceding slot; over a phase that totals
/// the channel's *active slots*. The lowering reproduces that spend in
/// expectation: channel `c` gets
/// `round(expected_active_slots(c) · phase_len / prev_len)` jammed
/// slots. Like its slot counterpart it plans nothing before the first
/// observation (no clairvoyance).
#[derive(Debug, Clone, Default)]
pub struct ChannelLaggedPhaseJammer;

impl ChannelLaggedPhaseJammer {
    /// Creates a phase-lagged jammer (idle until the first observation).
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PhaseJammer for ChannelLaggedPhaseJammer {
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        let obs = ctx.observation;
        if obs.slots == 0 {
            return plan;
        }
        let scale = ctx.phase_len as f64 / obs.slots as f64;
        for channel in ctx.spectrum.channels() {
            let slots = (obs.expected_active_slots(channel) * scale).round() as u64;
            plan.set_jam(channel, slots.min(ctx.phase_len));
        }
        plan
    }
}

/// Phase lowering of [`LaggedJammer`](crate::LaggedJammer) — detection-
/// then-jam with one slot of latency, at phase granularity.
///
/// The slot-level jammer fires `jam_all` — the source paper's
/// single-channel "jam everything", which targets channel 0 only — in
/// slot `t + 1` whenever any correct device transmitted in slot `t`, so
/// over a phase it spends one unit per *union-active* slot (a slot with
/// at least one correct send on any channel). The lowering reproduces
/// that spend in expectation: Poissonising last phase's **total** send
/// count over its slots gives the expected union-active slots
/// `s · (1 − e^{−total_sends/s})`, which is scaled to the next phase's
/// length and planned on channel 0. At `C = 1` this is exactly the
/// single-channel strategy the exact engine runs; like its slot
/// counterpart it is idle before the first observation.
#[derive(Debug, Clone, Default)]
pub struct LaggedPhaseJammer;

impl LaggedPhaseJammer {
    /// Creates a phase-lagged reactive jammer (idle until the first
    /// observation).
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PhaseJammer for LaggedPhaseJammer {
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let obs = ctx.observation;
        if obs.slots == 0 {
            return McPhasePlan::idle(ctx.spectrum);
        }
        let s = obs.slots as f64;
        let total_sends: u64 = obs.correct_sends.iter().sum();
        let union_active = s * (1.0 - (-(total_sends as f64) / s).exp());
        let scale = ctx.phase_len as f64 / s;
        let slots = ((union_active * scale).round() as u64).min(ctx.phase_len);
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        plan.set_jam(ChannelId::ZERO, slots);
        plan
    }
}

/// One retained phase of activity history for the adaptive gate.
#[derive(Debug, Clone)]
struct GateEntry {
    slots: u64,
    active: Vec<ChannelId>,
}

/// Phase lowering of [`AdaptiveJammer`](crate::AdaptiveJammer) — the
/// Chen–Zheng 2020 adaptive adversary on phase-aggregated observations.
///
/// Per-phase state, fed exclusively by the [`PhaseObservation`] the
/// engine hands over (prior phases only — no same-phase clairvoyance):
///
/// * an **EMA heat score** per channel with smoothing `reactivity`,
///   updated once per phase from the per-slot-normalised evidence
///   `(sends + deliveries) / slots` — the same sends-plus-deliveries
///   signal as the slot jammer, aggregated;
/// * a **windowed activity gate**: a channel is a candidate iff it
///   carried correct traffic within the last `window` *slots* of
///   history (whole phases are retained until their slots age out);
/// * **spend pacing**: the total budget for a phase is the previous
///   phase's expected active channel-slots (what the slot jammer would
///   have spent), scaled to the next phase's length and placed greedily
///   on the hottest candidates — at most `phase_len` units per channel,
///   mirroring the one-unit-per-channel-per-slot cap.
#[derive(Debug, Clone)]
pub struct AdaptivePhaseJammer {
    spectrum: Spectrum,
    window: u32,
    reactivity: f64,
    heat: Vec<f64>,
    active_in_window: Vec<u32>,
    history: VecDeque<GateEntry>,
    history_slots: u64,
    /// Expected active channel-slots per slot of the previous phase —
    /// the observed traffic rate that paces the next phase's spend.
    prev_rate: f64,
}

impl AdaptivePhaseJammer {
    /// Creates an adaptive phase jammer over `spectrum`.
    ///
    /// `window` is the activity-gate horizon in slots and `reactivity`
    /// the EMA smoothing factor, with the same meaning (and the same
    /// validity requirements) as
    /// [`AdaptiveJammer::new`](crate::AdaptiveJammer::new).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `reactivity` is not in `(0, 1]`
    /// (`rcb_sim::Scenario` rejects these with a typed error instead).
    #[must_use]
    pub fn new(spectrum: Spectrum, window: u32, reactivity: f64) -> Self {
        assert!(window > 0, "adaptive window must be at least one slot");
        assert!(
            reactivity > 0.0 && reactivity <= 1.0,
            "adaptive reactivity must be in (0, 1]"
        );
        let c = spectrum.channel_count() as usize;
        Self {
            spectrum,
            window,
            reactivity,
            heat: vec![0.0; c],
            active_in_window: vec![0; c],
            history: VecDeque::new(),
            history_slots: 0,
            prev_rate: 0.0,
        }
    }

    /// The current heat estimate for `channel` (0 until traffic is
    /// observed).
    #[must_use]
    pub fn heat_on(&self, channel: ChannelId) -> f64 {
        self.heat[channel.index() as usize]
    }

    /// Rolls one completed phase into the heat/gate state.
    fn absorb(&mut self, obs: &PhaseObservation) {
        let slots = obs.slots as f64;
        let mut active = Vec::new();
        let mut rate = 0.0;
        for channel in self.spectrum.channels() {
            let i = channel.index() as usize;
            let sends = obs.correct_sends.get(i).copied().unwrap_or(0);
            let delivered = obs.delivered.get(i).copied().unwrap_or(0);
            let evidence = (sends + delivered) as f64 / slots;
            self.heat[i] += self.reactivity * (evidence - self.heat[i]);
            if sends > 0 {
                active.push(channel);
                self.active_in_window[i] += 1;
            }
            rate += obs.expected_active_slots(channel) / slots;
        }
        self.prev_rate = rate;
        self.history.push_back(GateEntry {
            slots: obs.slots,
            active,
        });
        self.history_slots += obs.slots;
        // Age out whole phases that fall entirely outside the window.
        while let Some(oldest) = self.history.front() {
            if self.history_slots - oldest.slots < u64::from(self.window) {
                break;
            }
            let expired = self.history.pop_front().expect("front just checked");
            self.history_slots -= expired.slots;
            for channel in expired.active {
                self.active_in_window[channel.index() as usize] -= 1;
            }
        }
    }
}

impl PhaseJammer for AdaptivePhaseJammer {
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        if ctx.observation.slots > 0 {
            self.absorb(ctx.observation);
        }
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        let mut spend = (self.prev_rate * ctx.phase_len as f64).round() as u64;
        if let Some(rem) = ctx.budget_remaining {
            spend = spend.min(rem);
        }
        if spend == 0 {
            return plan;
        }
        // Hottest windowed candidates first; channel index breaks ties
        // deterministically (heat values are finite EMAs).
        let mut candidates: Vec<ChannelId> = self
            .spectrum
            .channels()
            .filter(|c| self.active_in_window[c.index() as usize] > 0)
            .collect();
        candidates.sort_by(|a, b| {
            let (ha, hb) = (self.heat[a.index() as usize], self.heat[b.index() as usize]);
            hb.partial_cmp(&ha)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        for channel in candidates {
            if spend == 0 {
                break;
            }
            let units = spend.min(ctx.phase_len);
            plan.set_jam(channel, units);
            spend -= units;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(spectrum: Spectrum, slots: u64, sends: &[u64], delivered: &[u64]) -> PhaseObservation {
        let mut o = PhaseObservation::empty(spectrum);
        o.slots = slots;
        o.correct_sends = sends.to_vec();
        o.delivered = delivered.to_vec();
        o
    }

    fn ctx<'a>(
        spectrum: Spectrum,
        phase: u32,
        start_slot: u64,
        phase_len: u64,
        observation: &'a PhaseObservation,
    ) -> McPhaseCtx<'a> {
        McPhaseCtx {
            phase,
            start_slot,
            phase_len,
            spectrum,
            budget_remaining: None,
            uninformed: 100,
            informed: 0,
            observation,
        }
    }

    #[test]
    fn split_blankets_and_continuous_pins_channel_zero() {
        let spectrum = Spectrum::new(4);
        let empty = PhaseObservation::empty(spectrum);
        let c = ctx(spectrum, 0, 0, 50, &empty);
        let blanket = SplitJammer::new(spectrum).plan_phase(&c);
        assert_eq!(blanket.jam_slots(), &[50, 50, 50, 50]);
        let pinned = ContinuousJammer.plan_phase(&c);
        assert_eq!(pinned.jam_slots(), &[50, 0, 0, 0]);
    }

    #[test]
    fn sweep_lowering_matches_the_slot_pattern() {
        let spectrum = Spectrum::new(3);
        let mut sweep = SweepJammer::new(spectrum, 2);
        let empty = PhaseObservation::empty(spectrum);
        // Slots 0..8 target channels 0,0,1,1,2,2,0,0 (dwell 2).
        let plan = sweep.plan_phase(&ctx(spectrum, 0, 0, 8, &empty));
        assert_eq!(plan.jam_slots(), &[4, 2, 2]);
        // A phase starting mid-block still matches: slots 3..9 target
        // 1,2,2,0,0,1.
        let plan = sweep.plan_phase(&ctx(spectrum, 1, 3, 6, &empty));
        assert_eq!(plan.jam_slots(), &[2, 2, 2]);
        // Cross-check against the slot-level target() for a long range.
        let plan = sweep.plan_phase(&ctx(spectrum, 2, 17, 100, &empty));
        let mut expected = [0u64; 3];
        for t in 17..117 {
            expected[sweep.target(rcb_radio::Slot::new(t)).index() as usize] += 1;
        }
        assert_eq!(plan.jam_slots(), &expected[..]);
    }

    #[test]
    fn lagged_lowering_is_idle_first_then_tracks_traffic() {
        let spectrum = Spectrum::new(2);
        let mut carol = ChannelLaggedPhaseJammer::new();
        let empty = PhaseObservation::empty(spectrum);
        assert_eq!(
            carol.plan_phase(&ctx(spectrum, 0, 0, 32, &empty)).total(),
            0,
            "no clairvoyance before the first observation"
        );
        // Heavy traffic on channel 0, nothing on channel 1.
        let o = obs(spectrum, 32, &[64, 0], &[0, 0]);
        let plan = carol.plan_phase(&ctx(spectrum, 1, 32, 32, &o));
        assert!(plan.jam_on(ChannelId::new(0)) > 20, "{plan:?}");
        assert_eq!(plan.jam_on(ChannelId::new(1)), 0);
    }

    #[test]
    fn lagged_reactive_lowering_paces_channel_zero_by_union_activity() {
        let spectrum = Spectrum::new(2);
        let mut carol = LaggedPhaseJammer::new();
        let empty = PhaseObservation::empty(spectrum);
        assert_eq!(
            carol.plan_phase(&ctx(spectrum, 0, 0, 32, &empty)).total(),
            0,
            "no clairvoyance before the first observation"
        );
        // Saturating traffic: essentially every slot was active, so the
        // lowering jams essentially the whole next phase on channel 0
        // (the slot jammer fires the single-channel jam_all after every
        // active slot).
        let busy = obs(spectrum, 32, &[200, 200], &[0, 0]);
        let plan = carol.plan_phase(&ctx(spectrum, 1, 32, 32, &busy));
        assert!(plan.jam_on(ChannelId::new(0)) >= 31, "{plan:?}");
        assert_eq!(
            plan.jam_on(ChannelId::new(1)),
            0,
            "jam_all never leaves channel 0"
        );
        // Sparse traffic: roughly one active slot maps to roughly one
        // jammed slot, never more than Poissonisation allows.
        let sparse = obs(spectrum, 32, &[1, 0], &[0, 0]);
        let plan = carol.plan_phase(&ctx(spectrum, 2, 64, 32, &sparse));
        assert_eq!(plan.jam_on(ChannelId::new(0)), 1, "{plan:?}");
    }

    #[test]
    fn adaptive_places_spend_on_the_hottest_channel() {
        let spectrum = Spectrum::new(4);
        let mut carol = AdaptivePhaseJammer::new(spectrum, 64, 0.5);
        let empty = PhaseObservation::empty(spectrum);
        assert_eq!(
            carol.plan_phase(&ctx(spectrum, 0, 0, 32, &empty)).total(),
            0,
            "idle before any observation"
        );
        // Channel 2 is hot (sends + deliveries), channel 0 lukewarm.
        let o = obs(spectrum, 32, &[4, 0, 30, 0], &[0, 0, 10, 0]);
        let plan = carol.plan_phase(&ctx(spectrum, 1, 32, 32, &o));
        assert!(carol.heat_on(ChannelId::new(2)) > carol.heat_on(ChannelId::new(0)));
        assert!(
            plan.jam_on(ChannelId::new(2)) >= plan.jam_on(ChannelId::new(0)),
            "{plan:?}"
        );
        assert_eq!(plan.jam_on(ChannelId::new(1)), 0);
        assert_eq!(plan.jam_on(ChannelId::new(3)), 0);
        // Spend is paced by the observed traffic, not the whole phase.
        assert!(plan.total() <= 64, "{plan:?}");
    }

    #[test]
    fn adaptive_gate_ages_out_stale_channels() {
        let spectrum = Spectrum::new(2);
        // Window of 32 slots = one 32-slot phase of history.
        let mut carol = AdaptivePhaseJammer::new(spectrum, 32, 1.0);
        let hot0 = obs(spectrum, 32, &[20, 0], &[0, 0]);
        let _ = carol.plan_phase(&ctx(spectrum, 1, 32, 32, &hot0));
        // Next phase: traffic moved to channel 1; channel 0's phase ages
        // out of the 32-slot window.
        let hot1 = obs(spectrum, 32, &[0, 20], &[0, 0]);
        let plan = carol.plan_phase(&ctx(spectrum, 2, 64, 32, &hot1));
        assert_eq!(
            plan.jam_on(ChannelId::new(0)),
            0,
            "stale channel is no longer a candidate: {plan:?}"
        );
        assert!(plan.jam_on(ChannelId::new(1)) > 0);
    }

    #[test]
    fn adaptive_respects_a_tight_budget() {
        let spectrum = Spectrum::new(2);
        let mut carol = AdaptivePhaseJammer::new(spectrum, 64, 0.5);
        let o = obs(spectrum, 32, &[32, 32], &[0, 0]);
        let mut c = ctx(spectrum, 1, 32, 32, &o);
        c.budget_remaining = Some(3);
        let plan = carol.plan_phase(&c);
        assert!(plan.total() <= 3, "{plan:?}");
    }

    #[test]
    #[should_panic(expected = "adaptive window must be at least one slot")]
    fn adaptive_rejects_zero_window() {
        let _ = AdaptivePhaseJammer::new(Spectrum::new(2), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "adaptive reactivity must be in (0, 1]")]
    fn adaptive_rejects_bad_reactivity() {
        let _ = AdaptivePhaseJammer::new(Spectrum::new(2), 8, 0.0);
    }
}
