//! The reactive jammer — §4.1's threat.
//!
//! A reactive Carol performs CCA within the current slot: she sees the
//! RSSI bit (someone is transmitting) *before* deciding to jam, but not
//! the content. Against the plain protocol this is devastating — she jams
//! exactly the slots that carry `m` and wastes nothing. Against the
//! decoy-hardened protocol, most active slots are chaff, so each reaction
//! burns budget with probability ≈ `P(decoy | activity)` of hitting
//! nothing.
//!
//! At phase granularity the same behaviour is modelled by jamming the
//! expected number of *active* slots (the fast simulator's thinning then
//! removes the corresponding fraction of `m`-slots).

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::{Params, PhaseKind};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};

/// Jams every slot in which it detects channel activity (RSSI), during
/// dissemination phases.
#[derive(Debug, Clone)]
pub struct ReactiveJammer {
    /// Skip request phases (they only carry nacks; jamming them keeps
    /// people awake, which *helps* the defenders' delivery). Default true.
    dissemination_only: bool,
    /// Protocol parameters (needed by the phase-level model to estimate
    /// per-slot activity probabilities).
    params: Params,
    schedule: rcb_core::RoundSchedule,
}

impl ReactiveJammer {
    /// Creates a reactive jammer for the given protocol parameters.
    #[must_use]
    pub fn new(params: Params) -> Self {
        let schedule = rcb_core::RoundSchedule::new(&params);
        Self {
            dissemination_only: true,
            params,
            schedule,
        }
    }

    /// Also react during request phases.
    #[must_use]
    pub fn including_request(mut self) -> Self {
        self.dissemination_only = false;
        self
    }

    fn targets(&self, phase: PhaseKind) -> bool {
        !self.dissemination_only || !matches!(phase, PhaseKind::Request)
    }
}

impl Adversary for ReactiveJammer {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        // Nothing committed before the RSSI reading.
        AdversaryMove::idle()
    }

    fn react(&mut self, slot: Slot, activity: bool, planned: AdversaryMove) -> AdversaryMove {
        let phase = self.schedule.locate(slot.index()).phase;
        if activity && self.targets(phase) {
            AdversaryMove::jam_all()
        } else {
            planned
        }
    }

    fn is_reactive(&self) -> bool {
        true
    }
}

impl PhaseAdversary for ReactiveJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        if !self.targets(ctx.phase) {
            return PhasePlan::idle();
        }
        // Expected number of active slots: Alice's sends, relays' sends,
        // and decoys. The fast simulator treats the jam slots as landing
        // uniformly; reactive jamming lands them exactly on active slots,
        // which for an un-decoyed protocol is strictly stronger. We model
        // the reactive advantage by requesting ceil(P(active)·len) jams —
        // with decoys this is large (she pays for chaff), without decoys
        // it is just the m-slots.
        let probs =
            rcb_core::probabilities::phase_probabilities(&self.params, ctx.round, ctx.phase);
        let active_nodes = ctx.uninformed as f64;
        let p_decoy = if probs.decoy_send > 0.0 {
            1.0 - (1.0 - probs.decoy_send).powf(active_nodes)
        } else {
            0.0
        };
        let p_m = match ctx.phase {
            PhaseKind::Inform => probs.alice_send,
            PhaseKind::Propagation { .. } => 1.0 - (1.0 - probs.informed_send).powf(active_nodes),
            PhaseKind::Request => 1.0 - (1.0 - probs.uninformed_nack).powf(active_nodes),
        };
        let p_active = 1.0 - (1.0 - p_m) * (1.0 - p_decoy);
        PhasePlan::jam((p_active * ctx.phase_len as f64).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{DecoyConfig, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    fn is_reactive_and_reacts_to_activity() {
        let params = Params::builder(32).build().unwrap();
        let mut carol = ReactiveJammer::new(params);
        assert!(carol.is_reactive());
        let reacted = carol.react(Slot::ZERO, true, AdversaryMove::idle());
        assert!(reacted.jam.is_active());
        let idle = carol.react(Slot::ZERO, false, AdversaryMove::idle());
        assert!(!idle.jam.is_active());
    }

    #[test]
    fn devastates_the_unhardened_protocol() {
        // Without decoys, every m-transmission is detected and jammed: no
        // node can ever be informed while Carol has budget.
        let params = Params::builder(32).build().unwrap();
        let mut carol = ReactiveJammer::new(params.clone());
        let cfg = RunConfig::seeded(1).carol_budget(Budget::limited(100_000));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        // Either nobody is informed, or she went broke first and the tail
        // of the schedule saved the day; with this budget at n=32 she
        // cannot be outlasted before the schedule ends.
        assert_eq!(
            outcome.informed_nodes, 0,
            "reactive jamming must block every m-slot (informed {})",
            outcome.informed_nodes
        );
    }

    #[test]
    fn decoys_restore_delivery_by_draining_carol() {
        // With decoy hardening, most active slots are chaff: Carol reacts
        // to everything, burns her budget, and m eventually gets through.
        let params = Params::builder(32)
            .decoys(DecoyConfig::recommended())
            .build()
            .unwrap();
        let mut carol = ReactiveJammer::new(params.clone());
        // Against the unhardened protocol this budget blocks every m-slot
        // of the whole schedule several times over (~1k m-slots at n=32).
        // With decoys she burns it on chaff and goes broke around round 6
        // of 7.
        let cfg = RunConfig::seeded(2).carol_budget(Budget::limited(1_000));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(
            outcome.informed_fraction() > 0.9,
            "informed fraction {}",
            outcome.informed_fraction()
        );
        assert!(outcome.carol_spend() > 0);
    }

    #[test]
    fn phase_plan_grows_with_decoy_traffic() {
        let plain = Params::builder(1024).build().unwrap();
        let hard = Params::builder(1024)
            .decoys(DecoyConfig::recommended())
            .build()
            .unwrap();
        let ctx = |params: &Params| PhaseCtx {
            round: 10,
            phase: PhaseKind::Inform,
            phase_len: rcb_core::RoundSchedule::new(params).phase_len(10),
            budget_remaining: None,
            uninformed: 1024,
        };
        let mut carol_plain = ReactiveJammer::new(plain.clone());
        let mut carol_hard = ReactiveJammer::new(hard.clone());
        let jam_plain = carol_plain.plan_phase(&ctx(&plain)).jam_slots;
        let jam_hard = carol_hard.plan_phase(&ctx(&hard)).jam_slots;
        assert!(
            jam_hard > jam_plain * 2,
            "decoys must multiply her reactive spend: {jam_plain} vs {jam_hard}"
        );
    }
}
