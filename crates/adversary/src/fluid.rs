//! Fluid-tier expectation models of the jammer zoo.
//!
//! The fluid engine ([`rcb_core::fluid`]) is deterministic by contract —
//! no RNG anywhere in a run — so every strategy joins the tier as its
//! *expected* per-phase plan:
//!
//! * Every **deterministic** phase-mc lowering is already an expectation
//!   model: [`PhaseLoweredFluidJammer`] adapts any
//!   [`PhaseJammer`](rcb_core::fast_mc::PhaseJammer) onto the fluid
//!   interface by rounding the fluid engine's expected observation into
//!   the integer [`PhaseObservation`] the phase jammer reads, and
//!   reinterpreting its integer plan as exact expected slot counts.
//!   `Continuous`, `Bursty`, `SplitUniform`, `ChannelSweep`,
//!   `ChannelLagged`, `LaggedReactive`, and `Adaptive` all route through
//!   it.
//! * [`RandomFluidJammer`] replaces `Random(p)`'s per-phase binomial
//!   draw with its mean: `p · phase_len` expected jam slots on channel 0
//!   (the slot pattern is the single-channel `jam_all`). Routing
//!   `Random` through the adapter would smuggle an RNG into the tier.
//!
//! [`StrategySpec::fluid_jammer`](crate::StrategySpec::fluid_jammer)
//! picks the right construction per strategy; agreement with `fast_mc`
//! means is validated by experiment E19.

use rcb_core::fast_mc::{McPhaseCtx, PhaseJammer};
use rcb_core::fluid::{FluidJammer, FluidPhaseCtx, FluidPlan};
use rcb_radio::{PhaseObservation, Spectrum};

/// Adapts a deterministic [`PhaseJammer`] onto the fluid tier.
///
/// The wrapped jammer sees the fluid engine's expected per-channel
/// tallies rounded to the nearest integer (a [`PhaseObservation`]), and
/// its integer plan becomes the fluid plan verbatim. For plans that are
/// closed-form functions of the phase window (`Bursty`, `ChannelSweep`,
/// `Continuous`, blankets) the adaptation is exact; for
/// observation-paced strategies (`Adaptive`, the lagged family) the
/// rounding perturbs the expectation by at most half a slot per channel
/// per phase.
pub struct PhaseLoweredFluidJammer {
    inner: Box<dyn PhaseJammer>,
    obs_scratch: PhaseObservation,
}

impl std::fmt::Debug for PhaseLoweredFluidJammer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseLoweredFluidJammer")
            .finish_non_exhaustive()
    }
}

impl PhaseLoweredFluidJammer {
    /// Wraps a deterministic phase jammer. The caller is responsible for
    /// not passing a stochastic one (the fluid tier's determinism
    /// contract would silently break) — `StrategySpec::fluid_jammer`
    /// routes `Random` to [`RandomFluidJammer`] instead.
    #[must_use]
    pub fn new(inner: Box<dyn PhaseJammer>, spectrum: Spectrum) -> Self {
        Self {
            inner,
            obs_scratch: PhaseObservation::empty(spectrum),
        }
    }
}

fn round_vec(dst: &mut [u64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.round().max(0.0) as u64;
    }
}

impl FluidJammer for PhaseLoweredFluidJammer {
    fn plan_phase(&mut self, ctx: &FluidPhaseCtx<'_>) -> FluidPlan {
        self.obs_scratch.slots = ctx.observation.slots;
        round_vec(
            &mut self.obs_scratch.correct_sends,
            &ctx.observation.correct_sends,
        );
        round_vec(&mut self.obs_scratch.listens, &ctx.observation.listens);
        round_vec(&mut self.obs_scratch.delivered, &ctx.observation.delivered);
        round_vec(
            &mut self.obs_scratch.jammed_slots,
            &ctx.observation.jammed_slots,
        );
        let mc_ctx = McPhaseCtx {
            phase: ctx.phase,
            start_slot: ctx.start_slot,
            phase_len: ctx.phase_len,
            spectrum: ctx.spectrum,
            budget_remaining: ctx.budget_remaining.map(|b| b.floor() as u64),
            uninformed: ctx.uninformed.round().max(0.0) as u64,
            informed: ctx.informed.round().max(0.0) as u64,
            observation: &self.obs_scratch,
        };
        let mc_plan = self.inner.plan_phase(&mc_ctx);
        let mut plan = FluidPlan::idle(ctx.spectrum);
        for channel in ctx.spectrum.channels() {
            plan.set_jam(channel, mc_plan.jam_on(channel) as f64);
        }
        plan
    }
}

/// The fluid expectation model of `Random(p)`: `p · phase_len` expected
/// jam slots on channel 0 (the single-channel `jam_all` pattern),
/// deterministically — the mean of the phase-mc lowering's binomial
/// draw.
#[derive(Debug, Clone, Copy)]
pub struct RandomFluidJammer {
    p: f64,
}

impl RandomFluidJammer {
    /// Creates the expectation model for per-slot jam probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self { p }
    }
}

impl FluidJammer for RandomFluidJammer {
    fn plan_phase(&mut self, ctx: &FluidPhaseCtx<'_>) -> FluidPlan {
        let mut plan = FluidPlan::idle(ctx.spectrum);
        plan.set_jam(rcb_radio::ChannelId::ZERO, self.p * ctx.phase_len as f64);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BurstyJammer, SplitJammer};
    use rcb_core::fluid::FluidObservation;
    use rcb_radio::ChannelId;

    fn fluid_ctx<'a>(
        spectrum: Spectrum,
        start_slot: u64,
        phase_len: u64,
        observation: &'a FluidObservation,
    ) -> FluidPhaseCtx<'a> {
        FluidPhaseCtx {
            phase: 0,
            start_slot,
            phase_len,
            spectrum,
            budget_remaining: None,
            uninformed: 100.0,
            informed: 0.0,
            observation,
        }
    }

    #[test]
    fn random_expectation_is_deterministic_and_scales_with_p() {
        let spectrum = Spectrum::new(4);
        let obs = FluidObservation::empty(spectrum);
        let mut carol = RandomFluidJammer::new(0.25);
        let ctx = fluid_ctx(spectrum, 0, 32, &obs);
        let a = carol.plan_phase(&ctx);
        let b = carol.plan_phase(&ctx);
        assert_eq!(a, b);
        assert_eq!(a.jam_on(ChannelId::ZERO), 8.0);
        assert_eq!(a.total(), 8.0, "jam_all never leaves channel 0");
    }

    #[test]
    fn adapter_preserves_closed_form_plans_exactly() {
        let spectrum = Spectrum::new(2);
        let obs = FluidObservation::empty(spectrum);
        // Bursty 50/50 over slots 32..64: exactly 18 jammed slots on
        // channel 0 (the single-channel jam_all pattern), identical to
        // the phase-mc plan.
        let mut carol = PhaseLoweredFluidJammer::new(Box::new(BurstyJammer::new(50, 50)), spectrum);
        let plan = carol.plan_phase(&fluid_ctx(spectrum, 32, 32, &obs));
        assert_eq!(plan.jam_slots(), &[18.0, 0.0]);
        // A blanket stays a blanket.
        let mut split =
            PhaseLoweredFluidJammer::new(Box::new(SplitJammer::new(spectrum)), spectrum);
        let plan = split.plan_phase(&fluid_ctx(spectrum, 0, 32, &obs));
        assert_eq!(plan.jam_slots(), &[32.0, 32.0]);
    }

    #[test]
    fn adapter_rounds_the_observation_for_paced_strategies() {
        let spectrum = Spectrum::new(2);
        let mut obs = FluidObservation::empty(spectrum);
        obs.slots = 32;
        obs.correct_sends = vec![40.2, 0.4];
        let mut carol = PhaseLoweredFluidJammer::new(
            Box::new(crate::ChannelLaggedPhaseJammer::new()),
            spectrum,
        );
        let plan = carol.plan_phase(&fluid_ctx(spectrum, 32, 32, &obs));
        assert!(plan.jam_on(ChannelId::new(0)) > 20.0, "{plan:?}");
        assert_eq!(plan.jam_on(ChannelId::new(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn random_model_rejects_bad_probability() {
        let _ = RandomFluidJammer::new(-0.1);
    }
}
