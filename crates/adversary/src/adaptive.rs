//! The adaptive multi-channel jammer — the strongest adversary class of
//! the Chen–Zheng 2020 model.
//!
//! "Broadcasting Competitively against Adaptive Adversary in Multi-channel
//! Radio Networks" (OPODIS 2020) strengthens the oblivious multi-channel
//! jammers: its adversary watches where correct traffic actually lands and
//! *reallocates* its per-slot jamming split toward the busy channels. The
//! oblivious strategies shipped so far ignore that information —
//! [`SplitJammer`](crate::SplitJammer) blankets everything,
//! [`SweepJammer`](crate::SweepJammer) rotates blindly, and
//! [`ChannelLaggedJammer`](crate::ChannelLaggedJammer) reacts to exactly
//! one slot of history. [`AdaptiveJammer`] is the reproduction of the 2020
//! adversary: it maintains per-channel traffic estimates from the full
//! [`SlotObservation`] history and greedily concentrates its budget on the
//! hottest channels.
//!
//! # Decision rule
//!
//! Per-channel state, fed exclusively by [`Adversary::observe`] (prior
//! slots only — no same-slot clairvoyance):
//!
//! * a **windowed activity gate**: the channel is a candidate target iff a
//!   correct device transmitted on it within the last `window` slots;
//! * an **EMA heat score** with smoothing factor `reactivity`, updated
//!   every slot from the observed correct sends *plus* clean deliveries on
//!   the channel (a delivery is a rendezvous the jam failed to block — the
//!   strongest evidence a channel is worth contesting);
//! * the **observed traffic width**: how many channels carried correct
//!   traffic in the immediately preceding slot.
//!
//! Each slot the jammer spends at the observed traffic rate — as many jam
//! units as the traffic width, budget permitting — but *reallocates*
//! them: the units land on the hottest windowed candidates (heat
//! descending, channel index as the deterministic tie-break), not
//! necessarily on the channels that were just active. That is the
//! Chen–Zheng adaptive move: same pacing as a lagged detector, placement
//! steered by the traffic estimate.
//!
//! # Degeneracy guarantees
//!
//! * At `C = 1` the traffic width is 0 or 1 and ranking is vacuous, so
//!   the jammer is **slot-for-slot identical** to
//!   [`LaggedJammer`](crate::LaggedJammer) for every `window` and
//!   `reactivity` — pinned by fingerprint tests.
//! * It diverges from [`ChannelLaggedJammer`](crate::ChannelLaggedJammer)
//!   exactly when heat and recency disagree: a channel that carried heavy
//!   traffic two slots ago outranks one that carried a stray frame last
//!   slot, so the adaptive jammer keeps contesting the hot channel where
//!   the lagged jammer blindly follows the latest blip.
//!
//! Two granularities exist: this slot-level jammer drives the exact
//! engine, and [`AdaptivePhaseJammer`](crate::AdaptivePhaseJammer) is
//! its lowering onto the `fast_mc` phase-level hopping simulator
//! (phase-aggregated observations, same heat/gate/pacing rule) — so
//! `StrategySpec::Adaptive` runs on both engines. On the ε-BROADCAST
//! fast simulator, which has no channel dimension, it remains a typed
//! error.

use std::collections::VecDeque;

use rcb_radio::{
    Adversary, AdversaryCtx, AdversaryMove, ChannelId, JamDirective, JamPlan, Slot,
    SlotObservation, Spectrum,
};

/// The adaptive multi-channel jammer (Chen & Zheng 2020): tracks observed
/// per-channel traffic and greedily reallocates its jamming split toward
/// the hottest channels.
///
/// Decision rule, per slot: spend as many jam units as channels carried
/// correct traffic in the previous slot (budget permitting), placed on
/// the channels with traffic within the last `window` slots, ranked by an
/// EMA heat score with smoothing `reactivity` (observed sends + clean
/// deliveries). At `C = 1` this is slot-for-slot identical to
/// [`LaggedJammer`](crate::LaggedJammer) for every `window` and
/// `reactivity`; at `C > 1` it diverges from
/// [`ChannelLaggedJammer`](crate::ChannelLaggedJammer) whenever heat and
/// recency disagree or the budget forces a choice.
#[derive(Debug, Clone)]
pub struct AdaptiveJammer {
    spectrum: Spectrum,
    window: u32,
    reactivity: f64,
    /// EMA of per-slot traffic evidence (sends + deliveries) per channel.
    heat: Vec<f64>,
    /// How many of the windowed slots saw correct traffic per channel.
    active_in_window: Vec<u32>,
    /// The channels with correct traffic, per windowed slot (newest last).
    history: VecDeque<Vec<ChannelId>>,
    /// Channels that carried correct traffic in the previous slot — the
    /// observed traffic width that paces this slot's spend.
    prev_width: usize,
    /// Plan-time scratch: candidate channels, reused across slots.
    candidates: Vec<ChannelId>,
    /// Observe-time scratch: the buffer recycled from the oldest expired
    /// history entry, so steady-state observation allocates nothing.
    spare: Vec<ChannelId>,
}

impl AdaptiveJammer {
    /// Creates an adaptive jammer over `spectrum`.
    ///
    /// `window` is the activity-gate horizon in slots; `reactivity` is the
    /// EMA smoothing factor (1.0 = only the latest slot counts, small
    /// values average over a long history).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `reactivity` is not in `(0, 1]`
    /// (`rcb_sim::Scenario` rejects these with a typed error instead).
    #[must_use]
    pub fn new(spectrum: Spectrum, window: u32, reactivity: f64) -> Self {
        assert!(window > 0, "adaptive window must be at least one slot");
        assert!(
            reactivity > 0.0 && reactivity <= 1.0,
            "adaptive reactivity must be in (0, 1]"
        );
        let c = spectrum.channel_count() as usize;
        Self {
            spectrum,
            window,
            reactivity,
            heat: vec![0.0; c],
            active_in_window: vec![0; c],
            history: VecDeque::with_capacity(window as usize + 1),
            prev_width: 0,
            candidates: Vec::with_capacity(c),
            spare: Vec::with_capacity(c),
        }
    }

    /// The activity-gate horizon in slots.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The EMA smoothing factor.
    #[must_use]
    pub fn reactivity(&self) -> f64 {
        self.reactivity
    }

    /// The current heat estimate for `channel` (0 until traffic is
    /// observed).
    #[must_use]
    pub fn heat_on(&self, channel: ChannelId) -> f64 {
        self.heat[channel.index() as usize]
    }
}

impl Adversary for AdaptiveJammer {
    fn plan(&mut self, _slot: Slot, ctx: &AdversaryCtx) -> AdversaryMove {
        self.candidates.clear();
        self.candidates.extend(
            self.spectrum
                .channels()
                .filter(|c| self.active_in_window[c.index() as usize] > 0),
        );
        // Hottest first; channel index breaks ties deterministically. Heat
        // values are finite (EMA of finite counts), so the comparison is
        // total in practice.
        self.candidates.sort_by(|a, b| {
            let (ha, hb) = (self.heat[a.index() as usize], self.heat[b.index() as usize]);
            hb.partial_cmp(&ha)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        // Spend at the observed traffic rate: one unit per channel that
        // was active in the previous slot, placed on the hottest windowed
        // candidates instead. (The candidate set contains the previous
        // slot's active channels, so `prev_width` never exceeds it.)
        let width = self.prev_width.min(self.candidates.len());
        let affordable = match ctx.budget_remaining {
            None => width,
            Some(rem) => width.min(usize::try_from(rem).unwrap_or(usize::MAX)),
        };
        let mut jam = JamPlan::none();
        for &channel in &self.candidates[..affordable] {
            jam.set(channel, JamDirective::All);
        }
        AdversaryMove {
            jam,
            sends: Vec::new(),
        }
    }

    fn observe(&mut self, _slot: Slot, observation: &SlotObservation<'_>) {
        // EMA heat update: observed sends plus clean deliveries, per
        // channel. Deliveries carry unit weight on top of their send — a
        // rendezvous the jam missed is the strongest "hot channel" signal.
        let mut active = std::mem::take(&mut self.spare);
        active.clear();
        for channel in self.spectrum.channels() {
            let sends = observation.correct_sends_on(channel);
            let evidence = (sends + observation.delivered_on(channel)) as f64;
            let i = channel.index() as usize;
            self.heat[i] += self.reactivity * (evidence - self.heat[i]);
            if sends > 0 {
                active.push(channel);
            }
        }
        for &channel in &active {
            self.active_in_window[channel.index() as usize] += 1;
        }
        self.prev_width = active.len();
        self.history.push_back(active);
        if self.history.len() > self.window as usize {
            let expired = self.history.pop_front().expect("len > window >= 1");
            for &channel in &expired {
                self.active_in_window[channel.index() as usize] -= 1;
            }
            // Recycle the expired buffer: after the first `window` slots
            // observe() allocates nothing — the engine calls it once per
            // simulated slot.
            self.spare = expired;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_radio::{ParticipantId, PayloadKind};

    fn ctx() -> AdversaryCtx {
        AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        }
    }

    fn sends_on(channels: &[u16]) -> Vec<(ParticipantId, ChannelId, PayloadKind)> {
        channels
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    ParticipantId::new(i as u32),
                    ChannelId::new(c),
                    PayloadKind::Broadcast,
                )
            })
            .collect()
    }

    fn observe_traffic(carol: &mut AdaptiveJammer, slot: u64, channels: &[u16]) {
        let sends = sends_on(channels);
        carol.observe(
            Slot::new(slot),
            &SlotObservation {
                correct_sends: &sends,
                listeners: &[],
                jam_executed: false,
                jammed_channels: &[],
                delivered: &[],
            },
        );
    }

    #[test]
    fn first_plan_is_idle_no_clairvoyance() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(4), 4, 0.5);
        assert!(!carol.plan(Slot::ZERO, &ctx()).jam.is_active());
    }

    #[test]
    fn jams_the_observed_channel_next_slot() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(4), 4, 0.5);
        observe_traffic(&mut carol, 0, &[2]);
        let mv = carol.plan(Slot::new(1), &ctx());
        assert_eq!(mv.jam.active_channel_count(), 1);
        assert!(mv.jam.jams(ChannelId::new(2), ParticipantId::new(0)));
    }

    #[test]
    fn reallocates_toward_heat_not_just_recency() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(4), 4, 0.5);
        // Channel 1 carried heavy traffic, then a stray frame appeared on
        // channel 0. A lagged jammer would chase the blip on channel 0;
        // the adaptive jammer keeps contesting the hotter channel 1.
        observe_traffic(&mut carol, 0, &[1, 1, 1]);
        observe_traffic(&mut carol, 1, &[0]);
        let mv = carol.plan(Slot::new(2), &ctx());
        assert_eq!(mv.jam.active_channel_count(), 1, "prev width paces spend");
        assert!(mv.jam.jams(ChannelId::new(1), ParticipantId::new(0)));
        assert!(!mv.jam.jams(ChannelId::new(0), ParticipantId::new(0)));
    }

    #[test]
    fn quiet_previous_slot_means_no_spend() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(4), 3, 0.5);
        observe_traffic(&mut carol, 0, &[1]);
        observe_traffic(&mut carol, 1, &[]);
        // The windowed gate still holds channel 1 as a candidate, but the
        // observed traffic width is 0: the jammer paces its budget to the
        // traffic and spends nothing after a quiet slot.
        assert!(!carol.plan(Slot::new(2), &ctx()).jam.is_active());
    }

    #[test]
    fn tight_budget_concentrates_on_the_hottest_channel() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(4), 4, 0.5);
        // Channel 3 is twice as hot as channel 0.
        observe_traffic(&mut carol, 0, &[3, 3, 0]);
        observe_traffic(&mut carol, 1, &[3, 3, 0]);
        let tight = AdversaryCtx {
            budget_remaining: Some(1),
            spent: 0,
        };
        let mv = carol.plan(Slot::new(2), &tight);
        assert_eq!(mv.jam.active_channel_count(), 1);
        assert!(
            mv.jam.jams(ChannelId::new(3), ParticipantId::new(0)),
            "the single affordable unit goes to the hottest channel"
        );
    }

    #[test]
    fn deliveries_raise_heat_beyond_sends_alone() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(2), 4, 1.0);
        // One send on each channel, but channel 1's send also delivered.
        let sends = sends_on(&[0, 1]);
        carol.observe(
            Slot::ZERO,
            &SlotObservation {
                correct_sends: &sends,
                listeners: &[],
                jam_executed: false,
                jammed_channels: &[],
                delivered: &[(ParticipantId::new(7), ChannelId::new(1))],
            },
        );
        assert!(carol.heat_on(ChannelId::new(1)) > carol.heat_on(ChannelId::new(0)));
        let tight = AdversaryCtx {
            budget_remaining: Some(1),
            spent: 0,
        };
        let mv = carol.plan(Slot::new(1), &tight);
        assert!(mv.jam.jams(ChannelId::new(1), ParticipantId::new(0)));
        assert!(!mv.jam.jams(ChannelId::new(0), ParticipantId::new(0)));
    }

    #[test]
    fn broke_jammer_plans_nothing() {
        let mut carol = AdaptiveJammer::new(Spectrum::new(2), 2, 0.5);
        observe_traffic(&mut carol, 0, &[0, 1]);
        let broke = AdversaryCtx {
            budget_remaining: Some(0),
            spent: 99,
        };
        assert!(!carol.plan(Slot::new(1), &broke).jam.is_active());
    }

    #[test]
    #[should_panic(expected = "adaptive window must be at least one slot")]
    fn rejects_zero_window() {
        let _ = AdaptiveJammer::new(Spectrum::new(2), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "adaptive reactivity must be in (0, 1]")]
    fn rejects_out_of_range_reactivity() {
        let _ = AdaptiveJammer::new(Spectrum::new(2), 4, 1.5);
    }
}
