//! The continuous jammer: scorched earth until the budget runs out.

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};

/// Jams every slot of every phase while the pooled budget lasts.
///
/// This is the strategy the Lemma 11 budget argument is written against:
/// Carol delays delivery exactly as long as her energy holds, then the
/// first un-jammed round completes the broadcast. Sweeping her budget `T`
/// and fitting cost-vs-`T` reproduces the `T^{1/(k+1)}` exponent of
/// Theorem 1 (experiment E1).
///
/// # Example
///
/// ```
/// use rcb_adversary::ContinuousJammer;
/// use rcb_core::{BroadcastSoaScratch, Params, RunConfig};
/// use rcb_radio::Budget;
///
/// let params = Params::builder(32).build()?;
/// let cfg = RunConfig::seeded(1).carol_budget(Budget::limited(500));
/// let (outcome, _) = BroadcastSoaScratch::new().run(&params, &mut ContinuousJammer, &cfg);
/// assert_eq!(outcome.carol_spend(), 500); // she spends it all
/// # Ok::<(), rcb_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ContinuousJammer;

impl Adversary for ContinuousJammer {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        AdversaryMove::jam_all()
    }
}

impl PhaseAdversary for ContinuousJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        PhasePlan::jam(ctx.phase_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    fn spends_entire_budget_then_protocol_succeeds() {
        let params = Params::builder(32).build().unwrap();
        let budget = 2_000u64;
        let cfg = RunConfig::seeded(3).carol_budget(Budget::limited(budget));
        let mut carol = ContinuousJammer;
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert_eq!(outcome.carol_spend(), budget);
        assert!(
            outcome.informed_fraction() > 0.9,
            "after she is broke the broadcast must go through: {}",
            outcome.informed_fraction()
        );
    }

    #[test]
    fn delays_scale_with_budget() {
        let params = Params::builder(32).build().unwrap();
        let slots_for = |budget: u64, seed: u64| {
            let cfg = RunConfig::seeded(seed).carol_budget(Budget::limited(budget));
            run_broadcast(&params, &mut ContinuousJammer, &cfg).slots
        };
        let small = slots_for(500, 1);
        let large = slots_for(20_000, 1);
        assert!(
            large > small,
            "a 40x budget must delay termination: {small} vs {large}"
        );
    }

    #[test]
    fn phase_level_plan_matches_slot_level_intent() {
        let mut carol = ContinuousJammer;
        let ctx = PhaseCtx {
            round: 5,
            phase: rcb_core::PhaseKind::Inform,
            phase_len: 1000,
            budget_remaining: Some(600),
            uninformed: 10,
        };
        let plan = carol.plan_phase(&ctx);
        // She *asks* for everything; the simulator clamps to her budget.
        assert_eq!(plan.jam_slots, 1000);
        assert!(plan.spare.is_none());
        assert_eq!(plan.byz_sends, 0);
    }
}
