//! Phase blockers — the two optimal strategies of Lemma 10.
//!
//! Lemma 10 analyses Carol's best options: (1) block the inform or
//! propagation phase of every round, forcing the protocol into ever-longer
//! rounds; (2) block the *request* phase, tricking Alice and the nodes
//! into believing many peers are still uninformed so they keep paying.
//! [`PhaseBlocker`] implements both (and any mix) by jamming a β-fraction
//! of each targeted phase, schedule-aware.

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::{PhaseKind, RoundSchedule};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};

/// Which phase kinds a [`PhaseBlocker`] attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTarget {
    /// Jam inform phases.
    pub inform: bool,
    /// Jam propagation phases (every step).
    pub propagation: bool,
    /// Jam request phases.
    pub request: bool,
}

impl PhaseTarget {
    /// Lemma 10 strategy 1: block dissemination (inform + propagation).
    #[must_use]
    pub fn dissemination() -> Self {
        Self {
            inform: true,
            propagation: true,
            request: false,
        }
    }

    /// Lemma 10 strategy 2: block termination (request only).
    #[must_use]
    pub fn termination() -> Self {
        Self {
            inform: false,
            propagation: false,
            request: true,
        }
    }

    /// Block everything.
    #[must_use]
    pub fn all() -> Self {
        Self {
            inform: true,
            propagation: true,
            request: true,
        }
    }

    fn matches(&self, phase: PhaseKind) -> bool {
        match phase {
            PhaseKind::Inform => self.inform,
            PhaseKind::Propagation { .. } => self.propagation,
            PhaseKind::Request => self.request,
        }
    }
}

/// Jams the leading `β`-fraction of every targeted phase, while budget
/// lasts.
///
/// `β = 1.0` prevents any delivery in the phase; `β slightly above 1/2`
/// merely "blocks" it in the analysis sense (more than half the slots
/// jammed) at half the price — useful for probing how conservatively the
/// lemmas were stated.
#[derive(Debug, Clone)]
pub struct PhaseBlocker {
    schedule: RoundSchedule,
    target: PhaseTarget,
    beta: f64,
}

impl PhaseBlocker {
    /// Creates a blocker for the given schedule, targets, and jam fraction.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `(0, 1]`.
    #[must_use]
    pub fn new(schedule: RoundSchedule, target: PhaseTarget, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0,1], got {beta}"
        );
        Self {
            schedule,
            target,
            beta,
        }
    }

    /// Convenience: full-strength dissemination blocker.
    #[must_use]
    pub fn dissemination_blocker(schedule: RoundSchedule) -> Self {
        Self::new(schedule, PhaseTarget::dissemination(), 1.0)
    }

    /// Convenience: full-strength request blocker.
    #[must_use]
    pub fn request_blocker(schedule: RoundSchedule) -> Self {
        Self::new(schedule, PhaseTarget::termination(), 1.0)
    }

    fn jam_budget_for(&self, phase_len: u64) -> u64 {
        ((phase_len as f64 * self.beta).ceil() as u64).min(phase_len)
    }
}

impl Adversary for PhaseBlocker {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        let pos = self.schedule.locate(slot.index());
        if self.target.matches(pos.phase) && pos.offset < self.jam_budget_for(pos.phase_len) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }
}

impl PhaseAdversary for PhaseBlocker {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        if self.target.matches(ctx.phase) {
            PhasePlan::jam(self.jam_budget_for(ctx.phase_len))
        } else {
            PhasePlan::idle()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    fn schedule(n: u64) -> (Params, RoundSchedule) {
        let params = Params::builder(n).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        (params, schedule)
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1]")]
    fn rejects_bad_beta() {
        let (_, s) = schedule(32);
        let _ = PhaseBlocker::new(s, PhaseTarget::all(), 0.0);
    }

    #[test]
    fn jams_only_targeted_phases() {
        let (_, s) = schedule(64);
        let mut carol = PhaseBlocker::new(s.clone(), PhaseTarget::termination(), 1.0);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        for t in 0..s.round_len(1) + s.round_len(2) {
            let jammed = carol.plan(Slot::new(t), &ctx).jam.is_active();
            let phase = s.locate(t).phase;
            assert_eq!(
                jammed,
                phase == PhaseKind::Request,
                "slot {t} phase {phase:?}"
            );
        }
    }

    #[test]
    fn beta_fraction_limits_jam_prefix() {
        let (_, s) = schedule(64);
        let mut carol = PhaseBlocker::new(s.clone(), PhaseTarget::dissemination(), 0.6);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        // Round 4: phase_len = 64; expect exactly ceil(0.6·64)=39 jams in
        // the inform phase.
        let start = s.round_start(4);
        let jams = (start..start + s.phase_len(4))
            .filter(|&t| carol.plan(Slot::new(t), &ctx).jam.is_active())
            .count();
        assert_eq!(jams, 39);
    }

    #[test]
    fn dissemination_blocker_starves_delivery_until_broke() {
        let (params, s) = schedule(32);
        let budget = 3_000u64;
        let mut carol = PhaseBlocker::dissemination_blocker(s);
        let cfg = RunConfig::seeded(4).carol_budget(Budget::limited(budget));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        // She cannot block forever; when broke, delivery completes.
        assert!(outcome.informed_fraction() > 0.9);
        assert!(outcome.carol_spend() <= budget);
        // And she must actually have spent on jamming.
        assert!(outcome.carol_cost.jams > budget / 2);
    }

    #[test]
    fn request_blocker_keeps_alice_awake() {
        let (params, s) = schedule(32);
        let mut carol = PhaseBlocker::request_blocker(s);
        let cfg = RunConfig::seeded(8).carol_budget(Budget::limited(2_000));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        let quiet = run_broadcast(
            &params,
            &mut rcb_radio::SilentAdversary,
            &RunConfig::seeded(8),
        );
        // Nodes get informed early either way (she leaves dissemination
        // alone), but Alice's termination is delayed, costing her listens.
        assert!(outcome.informed_fraction() > 0.9);
        assert!(
            outcome.alice_cost.total() >= quiet.alice_cost.total(),
            "jammed {} < quiet {}",
            outcome.alice_cost.total(),
            quiet.alice_cost.total()
        );
    }

    #[test]
    fn phase_level_plans_match_targets() {
        let (_, s) = schedule(64);
        let mut carol = PhaseBlocker::new(s, PhaseTarget::dissemination(), 1.0);
        let inform_ctx = PhaseCtx {
            round: 5,
            phase: PhaseKind::Inform,
            phase_len: 182,
            budget_remaining: None,
            uninformed: 64,
        };
        assert_eq!(carol.plan_phase(&inform_ctx).jam_slots, 182);
        let request_ctx = PhaseCtx {
            phase: PhaseKind::Request,
            ..inform_ctx
        };
        assert_eq!(carol.plan_phase(&request_ctx).jam_slots, 0);
    }
}
