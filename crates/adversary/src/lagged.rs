//! The lagged reactive jammer — detection-then-jam with one slot of
//! latency.
//!
//! Real sensor-network jammers often cannot perform in-slot CCA: by the
//! time the radio has detected energy on the channel, the slot is over.
//! The best such hardware can do is jam the *following* slot, hoping the
//! transmission pattern is bursty enough that activity predicts activity.
//! Against ε-BROADCAST's memoryless per-slot sampling this is a weak
//! strategy — which is exactly why it is worth measuring next to the
//! in-slot [`ReactiveJammer`](crate::ReactiveJammer) (§4.1): the delta
//! between the two isolates the value of the RSSI capability the paper's
//! hardening is designed to defeat.
//!
//! On the ε-BROADCAST schedule this adversary is slot-only: its decision
//! depends on the activity of the immediately preceding slot, which the
//! phase-level `fast` simulator does not represent, so the `Scenario`
//! builder still rejects `StrategySpec::LaggedReactive` on the fast
//! broadcast engine with a typed error. On the *hopping* tiers, though,
//! its per-phase spend aggregates cleanly — one `jam_all` per
//! union-active slot — so it lowers onto `fast_mc` (and the fluid tier)
//! via expected union-activity pacing; see
//! [`LaggedPhaseJammer`](crate::LaggedPhaseJammer).

use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot, SlotObservation};

/// Jams slot `t + 1` whenever any correct device transmitted in slot `t`.
///
/// Uses only the adaptive [`Adversary::observe`] feedback — no in-slot
/// RSSI — so [`Adversary::is_reactive`] stays `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaggedJammer {
    jam_next: bool,
}

impl LaggedJammer {
    /// Creates a lagged jammer (no pending jam).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for LaggedJammer {
    fn plan(&mut self, _slot: Slot, ctx: &AdversaryCtx) -> AdversaryMove {
        let fire = std::mem::take(&mut self.jam_next);
        if fire && ctx.can_afford(1) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }

    fn observe(&mut self, _slot: Slot, observation: &SlotObservation<'_>) {
        self.jam_next = !observation.correct_sends.is_empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{BroadcastSoaScratch, Params, RunConfig};
    use rcb_radio::{Budget, ParticipantId, PayloadKind};

    fn observation(
        sends: &[(ParticipantId, rcb_radio::ChannelId, PayloadKind)],
    ) -> SlotObservation<'_> {
        SlotObservation {
            correct_sends: sends,
            listeners: &[],
            jam_executed: false,
            jammed_channels: &[],
            delivered: &[],
        }
    }

    #[test]
    fn jams_exactly_one_slot_after_activity() {
        let mut carol = LaggedJammer::new();
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        // Quiet slot: nothing planned next.
        carol.observe(Slot::ZERO, &observation(&[]));
        assert!(!carol.plan(Slot::new(1), &ctx).jam.is_active());
        // Active slot: the next plan jams, and only the next.
        let sends = [(
            ParticipantId::new(0),
            rcb_radio::ChannelId::ZERO,
            PayloadKind::Broadcast,
        )];
        carol.observe(Slot::new(1), &observation(&sends));
        assert!(carol.plan(Slot::new(2), &ctx).jam.is_active());
        carol.observe(Slot::new(2), &observation(&[]));
        assert!(!carol.plan(Slot::new(3), &ctx).jam.is_active());
    }

    #[test]
    fn respects_the_budget() {
        let mut carol = LaggedJammer::new();
        let broke = AdversaryCtx {
            budget_remaining: Some(0),
            spent: 10,
        };
        let sends = [(
            ParticipantId::new(0),
            rcb_radio::ChannelId::ZERO,
            PayloadKind::Broadcast,
        )];
        carol.observe(Slot::ZERO, &observation(&sends));
        assert!(!carol.plan(Slot::new(1), &broke).jam.is_active());
    }

    #[test]
    fn is_not_reactive_and_cannot_blank_the_protocol() {
        // One slot of lag misses the memoryless per-slot sampling: unlike
        // the in-slot ReactiveJammer, delivery goes through.
        let params = Params::builder(32).max_round_margin(3).build().unwrap();
        let mut carol = LaggedJammer::new();
        assert!(!rcb_radio::Adversary::is_reactive(&carol));
        let cfg = RunConfig::seeded(3).carol_budget(Budget::limited(2_000));
        let (outcome, _) = BroadcastSoaScratch::new().run(&params, &mut carol, &cfg);
        assert!(
            outcome.informed_fraction() > 0.9,
            "informed {}",
            outcome.informed_fraction()
        );
    }
}
