//! The ε-extractor: the n-uniform attack of §2.3.
//!
//! "By blocking a propagation phase, an n-uniform Carol may allow 2ε′n
//! nodes to remain uninformed and active … Critically, when Carol blocks
//! an inform or propagate phase, she decides how many nodes receive m
//! since she is an n-uniform adversary." This strategy realises that
//! power: it jams dissemination phases *totally* for everyone except a
//! hand-picked set of spared nodes, steering exactly which nodes end the
//! protocol informed.

use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::{PhaseKind, RoundSchedule};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, IdSet, JamDirective, ParticipantId, Slot};

/// Blocks inform and propagation phases with n-uniform targeting, sparing
/// a chosen set of node ids from the jamming.
#[derive(Debug, Clone)]
pub struct EpsilonExtractor {
    schedule: RoundSchedule,
    spared: IdSet,
    spared_count: u64,
}

impl EpsilonExtractor {
    /// Creates an extractor sparing the given roster ids (remember index 0
    /// is Alice; spare node ids start at 1).
    #[must_use]
    pub fn new(schedule: RoundSchedule, spared: impl IntoIterator<Item = u32>) -> Self {
        let spared: IdSet = spared.into_iter().map(ParticipantId::new).collect();
        let spared_count = spared.len() as u64;
        Self {
            schedule,
            spared,
            spared_count,
        }
    }

    /// Convenience: spare the first `x` nodes (roster ids `1..=x`).
    #[must_use]
    pub fn sparing_first(schedule: RoundSchedule, x: u32) -> Self {
        Self::new(schedule, 1..=x)
    }

    /// How many nodes are spared.
    #[must_use]
    pub fn spared_count(&self) -> u64 {
        self.spared_count
    }
}

impl Adversary for EpsilonExtractor {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        let pos = self.schedule.locate(slot.index());
        match pos.phase {
            PhaseKind::Inform | PhaseKind::Propagation { .. } => AdversaryMove {
                jam: JamDirective::AllExcept(self.spared.clone()).into(),
                sends: Vec::new(),
            },
            PhaseKind::Request => AdversaryMove::idle(),
        }
    }
}

impl PhaseAdversary for EpsilonExtractor {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        match ctx.phase {
            PhaseKind::Inform | PhaseKind::Propagation { .. } => PhasePlan {
                jam_slots: ctx.phase_len,
                spare: Some(self.spared_count),
                byz_sends: 0,
            },
            PhaseKind::Request => PhasePlan::idle(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    fn only_spared_nodes_get_informed_while_budget_lasts() {
        let params = Params::builder(32).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        // Budget large enough to block the whole schedule.
        let mut carol = EpsilonExtractor::sparing_first(schedule.clone(), 5);
        let cfg = RunConfig::seeded(2).carol_budget(Budget::limited(u64::MAX / 2));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        // Exactly the spared nodes can be informed.
        assert!(
            outcome.informed_nodes <= 5,
            "informed {} > spared 5",
            outcome.informed_nodes
        );
        // And the spared nodes do get the message (they hear Alice clean).
        assert!(
            outcome.informed_nodes >= 4,
            "informed {}",
            outcome.informed_nodes
        );
    }

    #[test]
    fn with_finite_budget_everyone_else_informs_after_broke() {
        let params = Params::builder(32).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        let mut carol = EpsilonExtractor::sparing_first(schedule, 3);
        let cfg = RunConfig::seeded(6).carol_budget(Budget::limited(2_000));
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(outcome.informed_fraction() > 0.9);
    }

    #[test]
    fn spared_count_is_reported() {
        let params = Params::builder(32).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        let carol = EpsilonExtractor::sparing_first(schedule, 7);
        assert_eq!(carol.spared_count(), 7);
    }

    #[test]
    fn request_phases_are_left_alone() {
        let params = Params::builder(64).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        let mut carol = EpsilonExtractor::sparing_first(schedule.clone(), 2);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        // Find a request-phase slot in round 2.
        let t = schedule.round_start(2) + 2 * schedule.phase_len(2);
        assert_eq!(schedule.locate(t).phase, PhaseKind::Request);
        assert!(!carol.plan(Slot::new(t), &ctx).jam.is_active());
        // And an inform slot is jammed with sparing.
        let t0 = schedule.round_start(2);
        let mv = carol.plan(Slot::new(t0), &ctx);
        assert!(matches!(
            mv.jam.directive_on(rcb_radio::ChannelId::ZERO),
            JamDirective::AllExcept(_)
        ));
    }
}
