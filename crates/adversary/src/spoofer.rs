//! The nack spoofer — §2.2's spoofing attack.
//!
//! Correct nodes cannot be authenticated, so Carol's Byzantine devices can
//! transmit fake `nack`s during request phases, making Alice (and the
//! nodes) believe many peers are still uninformed and keeping everyone
//! paying for extra rounds. The request phase is designed so that this
//! costs her `Ω(2^{(b/2+1)i})` per stalled round (Lemmas 4–7); this
//! strategy lets experiment E8 measure exactly that.

use rand::{Rng, SeedableRng};
use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::{PhaseKind, RoundSchedule};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Payload, Slot};
use rcb_rng::SimRng;

/// Spoofs nacks in request phases (with density `rate`), optionally also
/// polluting inform phases with garbage frames.
#[derive(Debug, Clone)]
pub struct NackSpoofer {
    schedule: RoundSchedule,
    rate: f64,
    pollute_inform: bool,
    rng: SimRng,
}

impl NackSpoofer {
    /// Creates a spoofer transmitting a fake nack in each request-phase
    /// slot with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability.
    #[must_use]
    pub fn new(schedule: RoundSchedule, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        Self {
            schedule,
            rate,
            pollute_inform: false,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Also transmit garbage during inform phases (collides with `m`).
    #[must_use]
    pub fn polluting_inform(mut self) -> Self {
        self.pollute_inform = true;
        self
    }
}

impl Adversary for NackSpoofer {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        let pos = self.schedule.locate(slot.index());
        match pos.phase {
            PhaseKind::Request => {
                if self.rng.gen_bool(self.rate) {
                    AdversaryMove {
                        jam: rcb_radio::JamPlan::none(),
                        sends: vec![Payload::Nack.into()],
                    }
                } else {
                    AdversaryMove::idle()
                }
            }
            PhaseKind::Inform if self.pollute_inform => {
                if self.rng.gen_bool(self.rate) {
                    AdversaryMove {
                        jam: rcb_radio::JamPlan::none(),
                        sends: vec![Payload::Garbage(slot.index()).into()],
                    }
                } else {
                    AdversaryMove::idle()
                }
            }
            _ => AdversaryMove::idle(),
        }
    }
}

impl PhaseAdversary for NackSpoofer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        let spoofing = match ctx.phase {
            PhaseKind::Request => true,
            PhaseKind::Inform => self.pollute_inform,
            PhaseKind::Propagation { .. } => false,
        };
        if spoofing {
            let sends = rcb_rng::Binomial::new(ctx.phase_len, self.rate)
                .expect("validated rate")
                .sample(&mut self.rng);
            PhasePlan {
                jam_slots: 0,
                spare: None,
                byz_sends: sends,
            }
        } else {
            PhasePlan::idle()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    fn setup(n: u64) -> (Params, RoundSchedule) {
        let params = Params::builder(n).build().unwrap();
        let schedule = RoundSchedule::new(&params);
        (params, schedule)
    }

    #[test]
    #[should_panic(expected = "rate must be in [0,1]")]
    fn rejects_bad_rate() {
        let (_, s) = setup(32);
        let _ = NackSpoofer::new(s, -0.1, 0);
    }

    #[test]
    fn spoofs_only_in_request_phase_by_default() {
        let (_, s) = setup(64);
        let mut carol = NackSpoofer::new(s.clone(), 1.0, 1);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        for t in 0..s.round_len(1) + s.round_len(2) {
            let mv = carol.plan(Slot::new(t), &ctx);
            let is_request = s.locate(t).phase == PhaseKind::Request;
            assert_eq!(!mv.sends.is_empty(), is_request, "slot {t}");
            if !mv.sends.is_empty() {
                assert!(matches!(mv.sends[0].payload, Payload::Nack));
            }
        }
    }

    #[test]
    fn spoofing_keeps_alice_awake_and_costs_her() {
        let (params, s) = setup(32);
        let budget = 3_000u64;
        let mut carol = NackSpoofer::new(s, 1.0, 2);
        let cfg = RunConfig::seeded(3).carol_budget(Budget::limited(budget));
        let spoofed = run_broadcast(&params, &mut carol, &cfg);
        let quiet = run_broadcast(
            &params,
            &mut rcb_radio::SilentAdversary,
            &RunConfig::seeded(3),
        );
        // Delivery is untouched (no jamming of dissemination).
        assert!(spoofed.informed_fraction() > 0.9);
        // But the run lasts longer and Alice pays more.
        assert!(spoofed.slots > quiet.slots);
        assert!(spoofed.alice_cost.total() > quiet.alice_cost.total());
        // Her spend is Byzantine sends, not jams.
        assert_eq!(spoofed.carol_cost.jams, 0);
        assert!(spoofed.carol_cost.sends > 0);
    }

    #[test]
    fn inform_pollution_mode_sends_garbage() {
        let (_, s) = setup(64);
        let mut carol = NackSpoofer::new(s.clone(), 1.0, 4).polluting_inform();
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let t0 = s.round_start(3); // first inform slot of round 3
        let mv = carol.plan(Slot::new(t0), &ctx);
        assert!(matches!(
            mv.sends.first().map(|tx| &tx.payload),
            Some(Payload::Garbage(_))
        ));
    }

    #[test]
    fn phase_plan_counts_spoofs() {
        let (_, s) = setup(64);
        let mut carol = NackSpoofer::new(s, 0.5, 5);
        let ctx = PhaseCtx {
            round: 7,
            phase: PhaseKind::Request,
            phase_len: 10_000,
            budget_remaining: None,
            uninformed: 3,
        };
        let plan = carol.plan_phase(&ctx);
        assert!(
            (4_600..5_400).contains(&plan.byz_sends),
            "{}",
            plan.byz_sends
        );
    }
}
