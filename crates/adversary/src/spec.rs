//! Serialisable strategy specifications — `rcb_sim::Scenario` and the
//! analysis harness name their adversaries with these and construct fresh
//! instances per trial.

use rcb_core::fast::PhaseAdversary;
use rcb_core::fast_mc::PhaseJammer;
use rcb_core::fluid::FluidJammer;
use rcb_core::{Params, RoundSchedule};
use rcb_radio::{Adversary, Spectrum};

use crate::{
    AdaptiveJammer, AdaptivePhaseJammer, BurstyJammer, ChannelLaggedJammer,
    ChannelLaggedPhaseJammer, ContinuousJammer, EpsilonExtractor, LaggedJammer, LaggedPhaseJammer,
    NackSpoofer, PhaseBlocker, PhaseLoweredFluidJammer, PhaseTarget, RandomFluidJammer,
    RandomJammer, ReactiveJammer, SilentAdversary, SilentFluidJammer, SilentPhaseAdversary,
    SilentPhaseJammer, SplitJammer, SweepJammer,
};

/// A named, parameterised adversary strategy.
///
/// # Example
///
/// ```
/// use rcb_adversary::StrategySpec;
/// use rcb_core::Params;
///
/// let params = Params::builder(64).build()?;
/// let mut carol = StrategySpec::Continuous.slot_adversary(&params, 7);
/// let mut fast_carol = StrategySpec::Continuous
///     .phase_adversary(&params, 7)
///     .expect("continuous jamming has a phase-level model");
/// # let _ = (&mut carol, &mut fast_carol);
/// # Ok::<(), rcb_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySpec {
    /// No attack.
    Silent,
    /// Jam everything until broke.
    Continuous,
    /// Jam each slot i.i.d. with this probability.
    Random(f64),
    /// Bursts of `burst` jammed slots separated by `gap` quiet slots.
    Bursty {
        /// Jammed slots per burst.
        burst: u64,
        /// Quiet slots between bursts.
        gap: u64,
    },
    /// Lemma 10 strategy 1: block inform + propagation with fraction β.
    BlockDissemination(f64),
    /// Lemma 10 strategy 2: block request phases with fraction β.
    BlockRequest(f64),
    /// Block every phase with fraction β.
    BlockAll(f64),
    /// §2.3 n-uniform extraction, sparing this many nodes.
    Extract(u32),
    /// §2.2 nack spoofing at this per-slot rate.
    Spoof(f64),
    /// §4.1 reactive RSSI jamming.
    Reactive,
    /// Detection-then-jam with one slot of latency (no in-slot CCA).
    /// Slot-only on the ε-BROADCAST schedule (no `fast` phase model),
    /// but lowered onto the hopping tiers via expected union-activity
    /// pacing ([`crate::LaggedPhaseJammer`]).
    LaggedReactive,
    /// Budget-splitting uniform jammer: blanket every channel of the
    /// spectrum each slot (costs `C` units per slot). Channel-aware:
    /// requires a protocol that hosts a multi-channel spectrum.
    SplitUniform,
    /// Channel-sweeping jammer: jam one channel at a time, hopping every
    /// `dwell` slots. Channel-aware.
    ChannelSweep {
        /// Slots spent on each channel before hopping to the next.
        dwell: u64,
    },
    /// Multi-channel lagged reactive: jam (next slot) every channel that
    /// carried correct traffic. Channel-aware.
    ChannelLagged,
    /// Chen–Zheng 2020 adaptive adversary: maintain per-channel traffic
    /// estimates from observed history and greedily reallocate the jam
    /// split toward the hottest channels. Channel-aware.
    Adaptive {
        /// Activity-gate horizon: a channel is a candidate target iff it
        /// carried correct traffic within this many recent slots (≥ 1).
        window: u32,
        /// EMA smoothing factor for the per-channel heat score, in
        /// `(0, 1]` (1.0 = only the latest slot counts).
        reactivity: f64,
    },
}

impl StrategySpec {
    /// Short stable name for tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            StrategySpec::Silent => "silent".into(),
            StrategySpec::Continuous => "continuous".into(),
            StrategySpec::Random(p) => format!("random(p={p})"),
            StrategySpec::Bursty { burst, gap } => format!("bursty({burst}/{gap})"),
            StrategySpec::BlockDissemination(b) => format!("block-dissem(β={b})"),
            StrategySpec::BlockRequest(b) => format!("block-request(β={b})"),
            StrategySpec::BlockAll(b) => format!("block-all(β={b})"),
            StrategySpec::Extract(x) => format!("extract(x={x})"),
            StrategySpec::Spoof(r) => format!("spoof(rate={r})"),
            StrategySpec::Reactive => "reactive".into(),
            StrategySpec::LaggedReactive => "lagged-reactive".into(),
            StrategySpec::SplitUniform => "split-uniform".into(),
            StrategySpec::ChannelSweep { dwell } => format!("channel-sweep(dwell={dwell})"),
            StrategySpec::ChannelLagged => "channel-lagged".into(),
            StrategySpec::Adaptive { window, reactivity } => {
                format!("adaptive(w={window},r={reactivity})")
            }
        }
    }

    /// Whether this strategy's behaviour is defined in terms of the
    /// ε-BROADCAST round/phase schedule. Schedule-bound strategies are
    /// meaningless against protocols without rounds (the baselines), and
    /// `Scenario` rejects those combinations.
    #[must_use]
    pub fn requires_schedule(&self) -> bool {
        matches!(
            self,
            StrategySpec::BlockDissemination(_)
                | StrategySpec::BlockRequest(_)
                | StrategySpec::BlockAll(_)
                | StrategySpec::Extract(_)
                | StrategySpec::Spoof(_)
                | StrategySpec::Reactive
        )
    }

    /// Whether a phase-level (fast simulator) model of this strategy
    /// exists for the ε-BROADCAST schedule. See
    /// [`StrategySpec::phase_adversary`].
    #[must_use]
    pub fn supports_phase(&self) -> bool {
        !matches!(
            self,
            StrategySpec::LaggedReactive
                | StrategySpec::SplitUniform
                | StrategySpec::ChannelSweep { .. }
                | StrategySpec::ChannelLagged
                | StrategySpec::Adaptive { .. }
        )
    }

    /// Whether a phase-level **multi-channel** model of this strategy
    /// exists — whether it can run on the `fast_mc` phase-level hopping
    /// simulator. See [`StrategySpec::phase_jammer`].
    ///
    /// True for the **whole schedule-free zoo**: the channel-aware family
    /// (via the lowerings in [`crate::AdaptivePhaseJammer`] /
    /// [`crate::ChannelLaggedPhaseJammer`] and the direct impls on
    /// [`SplitJammer`] / [`SweepJammer`]), `Silent` and `Continuous`, and
    /// the lowered single-channel strategies — `Random` (per-phase
    /// binomial draws), `Bursty` (exact periodic interval counts, bursts
    /// straddling phase boundaries included), and `LaggedReactive`
    /// (expected union-activity pacing via [`crate::LaggedPhaseJammer`]).
    /// Only the schedule-bound family has no phase-mc model — the
    /// ε-BROADCAST round structure does not exist on the hopping
    /// protocols.
    #[must_use]
    pub fn supports_phase_mc(&self) -> bool {
        matches!(
            self,
            StrategySpec::Silent
                | StrategySpec::Continuous
                | StrategySpec::Random(_)
                | StrategySpec::Bursty { .. }
                | StrategySpec::LaggedReactive
                | StrategySpec::SplitUniform
                | StrategySpec::ChannelSweep { .. }
                | StrategySpec::ChannelLagged
                | StrategySpec::Adaptive { .. }
        )
    }

    /// Whether a deterministic **fluid-tier** expectation model of this
    /// strategy exists — whether it can run on the mean-field engine.
    /// See [`StrategySpec::fluid_jammer`].
    ///
    /// Exactly the phase-mc family: every deterministic phase-mc
    /// lowering adapts verbatim ([`crate::PhaseLoweredFluidJammer`]),
    /// and `Random` — the one stochastic lowering — joins through its
    /// dedicated expectation model ([`crate::RandomFluidJammer`]), so
    /// the two capability sets coincide.
    #[must_use]
    pub fn supports_fluid(&self) -> bool {
        self.supports_phase_mc()
    }

    /// Whether this strategy's behaviour is defined in terms of a
    /// multi-channel spectrum. Channel-aware strategies are meaningless
    /// against protocols pinned to the single-channel model, and
    /// `Scenario` rejects those combinations at build time.
    #[must_use]
    pub fn requires_channels(&self) -> bool {
        matches!(
            self,
            StrategySpec::SplitUniform
                | StrategySpec::ChannelSweep { .. }
                | StrategySpec::ChannelLagged
                | StrategySpec::Adaptive { .. }
        )
    }

    /// Builds the slot-level adversary for the exact engine, on the
    /// single-channel spectrum.
    #[must_use]
    pub fn slot_adversary(&self, params: &Params, seed: u64) -> Box<dyn Adversary> {
        self.slot_adversary_on(params, Spectrum::single(), seed)
    }

    /// Builds the slot-level adversary for the exact engine over an
    /// explicit spectrum (channel-aware strategies split or sweep it;
    /// single-channel strategies stay on channel 0).
    #[must_use]
    pub fn slot_adversary_on(
        &self,
        params: &Params,
        spectrum: Spectrum,
        seed: u64,
    ) -> Box<dyn Adversary> {
        let schedule = RoundSchedule::new(params);
        match *self {
            StrategySpec::Silent => Box::new(SilentAdversary),
            StrategySpec::Continuous => Box::new(ContinuousJammer),
            StrategySpec::Random(p) => Box::new(RandomJammer::new(p, seed)),
            StrategySpec::Bursty { burst, gap } => Box::new(BurstyJammer::new(burst, gap)),
            StrategySpec::BlockDissemination(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::dissemination(),
                beta,
            )),
            StrategySpec::BlockRequest(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::termination(),
                beta,
            )),
            StrategySpec::BlockAll(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::all(), beta))
            }
            StrategySpec::Extract(x) => Box::new(EpsilonExtractor::sparing_first(schedule, x)),
            StrategySpec::Spoof(rate) => Box::new(NackSpoofer::new(schedule, rate, seed)),
            StrategySpec::Reactive => Box::new(ReactiveJammer::new(params.clone())),
            StrategySpec::LaggedReactive => Box::new(LaggedJammer::new()),
            StrategySpec::SplitUniform => Box::new(SplitJammer::new(spectrum)),
            StrategySpec::ChannelSweep { dwell } => Box::new(SweepJammer::new(spectrum, dwell)),
            StrategySpec::ChannelLagged => Box::new(ChannelLaggedJammer::new()),
            StrategySpec::Adaptive { window, reactivity } => {
                Box::new(AdaptiveJammer::new(spectrum, window, reactivity))
            }
        }
    }

    /// Builds the slot-level adversary for protocols *without* a round
    /// schedule (the baselines), on the single-channel spectrum. Returns
    /// `None` when the strategy is schedule-bound (see
    /// [`StrategySpec::requires_schedule`]).
    #[must_use]
    pub fn schedule_free_slot_adversary(&self, seed: u64) -> Option<Box<dyn Adversary>> {
        self.schedule_free_slot_adversary_on(Spectrum::single(), seed)
    }

    /// Like [`schedule_free_slot_adversary`](Self::schedule_free_slot_adversary)
    /// but over an explicit spectrum.
    #[must_use]
    pub fn schedule_free_slot_adversary_on(
        &self,
        spectrum: Spectrum,
        seed: u64,
    ) -> Option<Box<dyn Adversary>> {
        match *self {
            StrategySpec::Silent => Some(Box::new(SilentAdversary)),
            StrategySpec::Continuous => Some(Box::new(ContinuousJammer)),
            StrategySpec::Random(p) => Some(Box::new(RandomJammer::new(p, seed))),
            StrategySpec::Bursty { burst, gap } => Some(Box::new(BurstyJammer::new(burst, gap))),
            StrategySpec::LaggedReactive => Some(Box::new(LaggedJammer::new())),
            StrategySpec::SplitUniform => Some(Box::new(SplitJammer::new(spectrum))),
            StrategySpec::ChannelSweep { dwell } => {
                Some(Box::new(SweepJammer::new(spectrum, dwell)))
            }
            StrategySpec::ChannelLagged => Some(Box::new(ChannelLaggedJammer::new())),
            StrategySpec::Adaptive { window, reactivity } => {
                Some(Box::new(AdaptiveJammer::new(spectrum, window, reactivity)))
            }
            _ => None,
        }
    }

    /// Builds the phase-level adversary for the fast simulator, or `None`
    /// when the strategy is slot-only (see
    /// [`StrategySpec::supports_phase`]).
    #[must_use]
    pub fn phase_adversary(&self, params: &Params, seed: u64) -> Option<Box<dyn PhaseAdversary>> {
        let schedule = RoundSchedule::new(params);
        Some(match *self {
            StrategySpec::Silent => Box::new(SilentPhaseAdversary),
            StrategySpec::Continuous => Box::new(ContinuousJammer),
            StrategySpec::Random(p) => Box::new(RandomJammer::new(p, seed)),
            StrategySpec::Bursty { burst, gap } => Box::new(BurstyJammer::new(burst, gap)),
            StrategySpec::BlockDissemination(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::dissemination(),
                beta,
            )),
            StrategySpec::BlockRequest(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::termination(),
                beta,
            )),
            StrategySpec::BlockAll(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::all(), beta))
            }
            StrategySpec::Extract(x) => Box::new(EpsilonExtractor::sparing_first(schedule, x)),
            StrategySpec::Spoof(rate) => Box::new(NackSpoofer::new(schedule, rate, seed)),
            StrategySpec::Reactive => Box::new(ReactiveJammer::new(params.clone())),
            StrategySpec::LaggedReactive
            | StrategySpec::SplitUniform
            | StrategySpec::ChannelSweep { .. }
            | StrategySpec::ChannelLagged
            | StrategySpec::Adaptive { .. } => return None,
        })
    }

    /// Builds the phase-level multi-channel jammer for the `fast_mc`
    /// simulator over an explicit spectrum, or `None` when the strategy
    /// has no phase-mc model (see [`StrategySpec::supports_phase_mc`]).
    /// `seed` drives the stochastic lowerings (`Random`'s per-phase
    /// binomial draws); the deterministic ones ignore it.
    #[must_use]
    pub fn phase_jammer(&self, spectrum: Spectrum, seed: u64) -> Option<Box<dyn PhaseJammer>> {
        Some(match *self {
            StrategySpec::Silent => Box::new(SilentPhaseJammer),
            StrategySpec::Continuous => Box::new(ContinuousJammer),
            StrategySpec::Random(p) => Box::new(RandomJammer::new(p, seed)),
            StrategySpec::Bursty { burst, gap } => Box::new(BurstyJammer::new(burst, gap)),
            StrategySpec::LaggedReactive => Box::new(LaggedPhaseJammer::new()),
            StrategySpec::SplitUniform => Box::new(SplitJammer::new(spectrum)),
            StrategySpec::ChannelSweep { dwell } => Box::new(SweepJammer::new(spectrum, dwell)),
            StrategySpec::ChannelLagged => Box::new(ChannelLaggedPhaseJammer::new()),
            StrategySpec::Adaptive { window, reactivity } => {
                Box::new(AdaptivePhaseJammer::new(spectrum, window, reactivity))
            }
            _ => return None,
        })
    }

    /// Builds the deterministic fluid-tier expectation model over an
    /// explicit spectrum, or `None` when the strategy has no fluid model
    /// (see [`StrategySpec::supports_fluid`]). No seed parameter on
    /// purpose: the fluid tier has no RNG anywhere, so `Random` routes
    /// to its mean-plan model instead of its sampling lowering.
    #[must_use]
    pub fn fluid_jammer(&self, spectrum: Spectrum) -> Option<Box<dyn FluidJammer>> {
        match *self {
            StrategySpec::Silent => Some(Box::new(SilentFluidJammer)),
            StrategySpec::Random(p) => Some(Box::new(RandomFluidJammer::new(p))),
            _ => {
                let inner = self.phase_jammer(spectrum, 0)?;
                Some(Box::new(PhaseLoweredFluidJammer::new(inner, spectrum)))
            }
        }
    }

    /// Every phase-capable strategy with representative parameters, for
    /// the E2 delivery sweep (runs on the fast simulator).
    #[must_use]
    pub fn roster() -> Vec<StrategySpec> {
        vec![
            StrategySpec::Silent,
            StrategySpec::Continuous,
            StrategySpec::Random(0.5),
            StrategySpec::Bursty { burst: 64, gap: 64 },
            StrategySpec::BlockDissemination(1.0),
            StrategySpec::BlockRequest(1.0),
            StrategySpec::BlockAll(0.55),
            StrategySpec::Extract(8),
            StrategySpec::Spoof(1.0),
            StrategySpec::Reactive,
        ]
    }

    /// The full strategy roster, including slot-only strategies that the
    /// fast simulator cannot model.
    #[must_use]
    pub fn full_roster() -> Vec<StrategySpec> {
        let mut roster = Self::roster();
        roster.push(StrategySpec::LaggedReactive);
        roster.extend(Self::channel_roster());
        roster
    }

    /// Every channel-aware strategy with representative parameters, for
    /// the E11 multi-channel sweep.
    #[must_use]
    pub fn channel_roster() -> Vec<StrategySpec> {
        vec![
            StrategySpec::SplitUniform,
            StrategySpec::ChannelSweep { dwell: 8 },
            StrategySpec::ChannelLagged,
            StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::fast::{run_fast, FastConfig};
    use rcb_core::{BroadcastSoaScratch, RunConfig};
    use rcb_radio::Budget;

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = StrategySpec::full_roster()
            .iter()
            .map(|s| s.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn every_spec_builds_and_runs_on_both_engines() {
        let params = Params::builder(16).build().unwrap();
        let mut scratch = BroadcastSoaScratch::new();
        for spec in StrategySpec::full_roster() {
            let mut slot_carol = spec.slot_adversary(&params, 1);
            let cfg = RunConfig::seeded(1).carol_budget(Budget::limited(500));
            let (o, _) = scratch.run(&params, slot_carol.as_mut(), &cfg);
            assert!(o.slots > 0, "{} produced empty run", spec.name());

            match spec.phase_adversary(&params, 1) {
                Some(mut phase_carol) => {
                    let fo = run_fast(
                        &params,
                        phase_carol.as_mut(),
                        &FastConfig::seeded(1).carol_budget(500),
                    );
                    assert!(fo.slots > 0, "{} produced empty fast run", spec.name());
                    assert!(fo.carol_spend() <= 500);
                }
                None => assert!(
                    !spec.supports_phase(),
                    "{} returned no phase adversary but claims phase support",
                    spec.name()
                ),
            }
        }
    }

    #[test]
    fn capability_flags_are_consistent() {
        for spec in StrategySpec::full_roster() {
            let params = Params::builder(16).build().unwrap();
            assert_eq!(
                spec.phase_adversary(&params, 0).is_some(),
                spec.supports_phase(),
                "{}",
                spec.name()
            );
            assert_eq!(
                spec.schedule_free_slot_adversary(0).is_some(),
                !spec.requires_schedule(),
                "{}",
                spec.name()
            );
            assert_eq!(
                spec.phase_jammer(Spectrum::new(4), 0).is_some(),
                spec.supports_phase_mc(),
                "{}",
                spec.name()
            );
            assert_eq!(
                spec.fluid_jammer(Spectrum::new(4)).is_some(),
                spec.supports_fluid(),
                "{}",
                spec.name()
            );
            assert_eq!(
                spec.supports_fluid(),
                spec.supports_phase_mc(),
                "fluid and phase-mc capability sets coincide: {}",
                spec.name()
            );
        }
    }

    #[test]
    fn the_whole_schedule_free_zoo_has_a_phase_mc_model() {
        for spec in StrategySpec::full_roster() {
            assert_eq!(
                spec.supports_phase_mc(),
                !spec.requires_schedule(),
                "{}: phase-mc coverage is exactly the schedule-free zoo",
                spec.name()
            );
        }
        // The former stragglers are now covered.
        assert!(StrategySpec::LaggedReactive.supports_phase_mc());
        assert!(StrategySpec::Random(0.5).supports_phase_mc());
        assert!(StrategySpec::Bursty { burst: 64, gap: 64 }.supports_phase_mc());
    }

    #[test]
    fn random_phase_lowering_is_seeded_and_fluid_model_is_not() {
        // Two seeds give different binomial streams on the phase tier...
        let spectrum = Spectrum::new(2);
        let spec = StrategySpec::Random(0.5);
        let obs = rcb_radio::PhaseObservation::empty(spectrum);
        let ctx = rcb_core::fast_mc::McPhaseCtx {
            phase: 0,
            start_slot: 0,
            phase_len: 10_000,
            spectrum,
            budget_remaining: None,
            uninformed: 10,
            informed: 0,
            observation: &obs,
        };
        let plan_a = spec.phase_jammer(spectrum, 1).unwrap().plan_phase(&ctx);
        let plan_b = spec.phase_jammer(spectrum, 2).unwrap().plan_phase(&ctx);
        assert_ne!(plan_a.jam_slots(), plan_b.jam_slots(), "seed must matter");
        // ...while the fluid model plans the exact mean, deterministically.
        let fobs = rcb_core::fluid::FluidObservation::empty(spectrum);
        let fctx = rcb_core::fluid::FluidPhaseCtx {
            phase: 0,
            start_slot: 0,
            phase_len: 10_000,
            spectrum,
            budget_remaining: None,
            uninformed: 10.0,
            informed: 0.0,
            observation: &fobs,
        };
        let fplan = spec.fluid_jammer(spectrum).unwrap().plan_phase(&fctx);
        // jam_all targets channel 0 only, at the exact mean p·phase_len.
        assert_eq!(fplan.jam_slots(), &[5_000.0, 0.0]);
    }
}
