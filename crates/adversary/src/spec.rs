//! Serialisable strategy specifications — the analysis harness names its
//! adversaries with these and constructs fresh instances per trial.

use rcb_core::fast::PhaseAdversary;
use rcb_core::{Params, RoundSchedule};
use rcb_radio::Adversary;

use crate::{
    BurstyJammer, ContinuousJammer, EpsilonExtractor, NackSpoofer, PhaseBlocker, PhaseTarget,
    RandomJammer, ReactiveJammer, SilentAdversary, SilentPhaseAdversary,
};

/// A named, parameterised adversary strategy.
///
/// # Example
///
/// ```
/// use rcb_adversary::StrategySpec;
/// use rcb_core::Params;
///
/// let params = Params::builder(64).build()?;
/// let mut carol = StrategySpec::Continuous.slot_adversary(&params, 7);
/// let mut fast_carol = StrategySpec::Continuous.phase_adversary(&params, 7);
/// # let _ = (&mut carol, &mut fast_carol);
/// # Ok::<(), rcb_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySpec {
    /// No attack.
    Silent,
    /// Jam everything until broke.
    Continuous,
    /// Jam each slot i.i.d. with this probability.
    Random(f64),
    /// Bursts of `burst` jammed slots separated by `gap` quiet slots.
    Bursty {
        /// Jammed slots per burst.
        burst: u64,
        /// Quiet slots between bursts.
        gap: u64,
    },
    /// Lemma 10 strategy 1: block inform + propagation with fraction β.
    BlockDissemination(f64),
    /// Lemma 10 strategy 2: block request phases with fraction β.
    BlockRequest(f64),
    /// Block every phase with fraction β.
    BlockAll(f64),
    /// §2.3 n-uniform extraction, sparing this many nodes.
    Extract(u32),
    /// §2.2 nack spoofing at this per-slot rate.
    Spoof(f64),
    /// §4.1 reactive RSSI jamming.
    Reactive,
}

impl StrategySpec {
    /// Short stable name for tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            StrategySpec::Silent => "silent".into(),
            StrategySpec::Continuous => "continuous".into(),
            StrategySpec::Random(p) => format!("random(p={p})"),
            StrategySpec::Bursty { burst, gap } => format!("bursty({burst}/{gap})"),
            StrategySpec::BlockDissemination(b) => format!("block-dissem(β={b})"),
            StrategySpec::BlockRequest(b) => format!("block-request(β={b})"),
            StrategySpec::BlockAll(b) => format!("block-all(β={b})"),
            StrategySpec::Extract(x) => format!("extract(x={x})"),
            StrategySpec::Spoof(r) => format!("spoof(rate={r})"),
            StrategySpec::Reactive => "reactive".into(),
        }
    }

    /// Builds the slot-level adversary for the exact engine.
    #[must_use]
    pub fn slot_adversary(&self, params: &Params, seed: u64) -> Box<dyn Adversary> {
        let schedule = RoundSchedule::new(params);
        match *self {
            StrategySpec::Silent => Box::new(SilentAdversary),
            StrategySpec::Continuous => Box::new(ContinuousJammer),
            StrategySpec::Random(p) => Box::new(RandomJammer::new(p, seed)),
            StrategySpec::Bursty { burst, gap } => Box::new(BurstyJammer::new(burst, gap)),
            StrategySpec::BlockDissemination(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::dissemination(),
                beta,
            )),
            StrategySpec::BlockRequest(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::termination(), beta))
            }
            StrategySpec::BlockAll(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::all(), beta))
            }
            StrategySpec::Extract(x) => Box::new(EpsilonExtractor::sparing_first(schedule, x)),
            StrategySpec::Spoof(rate) => Box::new(NackSpoofer::new(schedule, rate, seed)),
            StrategySpec::Reactive => Box::new(ReactiveJammer::new(params.clone())),
        }
    }

    /// Builds the phase-level adversary for the fast simulator.
    #[must_use]
    pub fn phase_adversary(&self, params: &Params, seed: u64) -> Box<dyn PhaseAdversary> {
        let schedule = RoundSchedule::new(params);
        match *self {
            StrategySpec::Silent => Box::new(SilentPhaseAdversary),
            StrategySpec::Continuous => Box::new(ContinuousJammer),
            StrategySpec::Random(p) => Box::new(RandomJammer::new(p, seed)),
            StrategySpec::Bursty { burst, gap } => Box::new(BurstyJammer::new(burst, gap)),
            StrategySpec::BlockDissemination(beta) => Box::new(PhaseBlocker::new(
                schedule,
                PhaseTarget::dissemination(),
                beta,
            )),
            StrategySpec::BlockRequest(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::termination(), beta))
            }
            StrategySpec::BlockAll(beta) => {
                Box::new(PhaseBlocker::new(schedule, PhaseTarget::all(), beta))
            }
            StrategySpec::Extract(x) => Box::new(EpsilonExtractor::sparing_first(schedule, x)),
            StrategySpec::Spoof(rate) => Box::new(NackSpoofer::new(schedule, rate, seed)),
            StrategySpec::Reactive => Box::new(ReactiveJammer::new(params.clone())),
        }
    }

    /// Every strategy with representative parameters, for the E2 delivery
    /// sweep.
    #[must_use]
    pub fn roster() -> Vec<StrategySpec> {
        vec![
            StrategySpec::Silent,
            StrategySpec::Continuous,
            StrategySpec::Random(0.5),
            StrategySpec::Bursty { burst: 64, gap: 64 },
            StrategySpec::BlockDissemination(1.0),
            StrategySpec::BlockRequest(1.0),
            StrategySpec::BlockAll(0.55),
            StrategySpec::Extract(8),
            StrategySpec::Spoof(1.0),
            StrategySpec::Reactive,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::fast::{FastConfig, run_fast};
    use rcb_core::{run_broadcast, RunConfig};
    use rcb_radio::Budget;

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = StrategySpec::roster().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn every_spec_builds_and_runs_on_both_engines() {
        let params = Params::builder(16).build().unwrap();
        for spec in StrategySpec::roster() {
            let mut slot_carol = spec.slot_adversary(&params, 1);
            let cfg = RunConfig::seeded(1).carol_budget(Budget::limited(500));
            let o = run_broadcast(&params, slot_carol.as_mut(), &cfg);
            assert!(o.slots > 0, "{} produced empty run", spec.name());

            let mut phase_carol = spec.phase_adversary(&params, 1);
            let fo = run_fast(
                &params,
                phase_carol.as_mut(),
                &FastConfig::seeded(1).carol_budget(500),
            );
            assert!(fo.slots > 0, "{} produced empty fast run", spec.name());
            assert!(fo.carol_spend() <= 500);
        }
    }
}
