//! The random jammer: i.i.d. per-slot jamming.

use rand::{Rng, SeedableRng};
use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};
use rcb_rng::{Binomial, SimRng};

/// Jams each slot independently with probability `p` (cf. the random
/// fault models of Pelc & Peleg \[25\]).
///
/// Unlike the phase blockers this adversary is oblivious — it neither
/// reads the schedule nor adapts — making it the "weak" comparison point
/// in the E2 delivery table.
#[derive(Debug, Clone)]
pub struct RandomJammer {
    p: f64,
    rng: SimRng,
}

impl RandomJammer {
    /// Creates a jammer that jams each slot with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self {
            p,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The per-slot jam probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Adversary for RandomJammer {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        if self.rng.gen_bool(self.p) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }
}

impl PhaseAdversary for RandomJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        let jam = Binomial::new(ctx.phase_len, self.p)
            .expect("validated probability")
            .sample(&mut self.rng);
        PhasePlan::jam(jam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_bad_probability() {
        let _ = RandomJammer::new(1.5, 0);
    }

    #[test]
    fn jam_rate_tracks_p() {
        let mut carol = RandomJammer::new(0.3, 7);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let jams = (0..10_000)
            .filter(|&t| carol.plan(Slot::new(t), &ctx).jam.is_active())
            .count();
        assert!((2_700..3_300).contains(&jams), "jams {jams}");
    }

    #[test]
    fn half_rate_jamming_delays_but_does_not_stop_broadcast() {
        let params = Params::builder(32).build().unwrap();
        let cfg = RunConfig::seeded(5).carol_budget(Budget::limited(5_000));
        let mut carol = RandomJammer::new(0.5, 11);
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(outcome.informed_fraction() > 0.9);
        assert!(outcome.carol_spend() > 0);
    }

    #[test]
    fn phase_plan_density_matches_p() {
        let mut carol = RandomJammer::new(0.25, 3);
        let ctx = PhaseCtx {
            round: 8,
            phase: rcb_core::PhaseKind::Request,
            phase_len: 100_000,
            budget_remaining: None,
            uninformed: 5,
        };
        let plan = carol.plan_phase(&ctx);
        let frac = plan.jam_slots as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }
}
