//! The random jammer: i.i.d. per-slot jamming.

use rand::{Rng, SeedableRng};
use rcb_core::fast::{PhaseAdversary, PhaseCtx, PhasePlan};
use rcb_core::fast_mc::{McPhaseCtx, McPhasePlan, PhaseJammer};
use rcb_radio::{Adversary, AdversaryCtx, AdversaryMove, Slot};
use rcb_rng::{Binomial, SimRng};

/// Jams each slot independently with probability `p` (cf. the random
/// fault models of Pelc & Peleg \[25\]).
///
/// Unlike the phase blockers this adversary is oblivious — it neither
/// reads the schedule nor adapts — making it the "weak" comparison point
/// in the E2 delivery table.
#[derive(Debug, Clone)]
pub struct RandomJammer {
    p: f64,
    rng: SimRng,
}

impl RandomJammer {
    /// Creates a jammer that jams each slot with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self {
            p,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The per-slot jam probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Adversary for RandomJammer {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        if self.rng.gen_bool(self.p) {
            AdversaryMove::jam_all()
        } else {
            AdversaryMove::idle()
        }
    }
}

impl PhaseAdversary for RandomJammer {
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
        let jam = Binomial::new(ctx.phase_len, self.p)
            .expect("validated probability")
            .sample(&mut self.rng);
        PhasePlan::jam(jam)
    }
}

impl PhaseJammer for RandomJammer {
    /// Multi-channel phase lowering: the slot adversary's `jam_all` is
    /// the single-channel "jam everything" of the source paper — it
    /// targets **channel 0 only**, at one unit per firing slot — so the
    /// lowering plans one binomial draw `J ~ Bin(phase_len, p)` on
    /// channel 0 and leaves the rest of the spectrum untouched, exactly
    /// like the slot pattern it aggregates.
    fn plan_phase(&mut self, ctx: &McPhaseCtx<'_>) -> McPhasePlan {
        let jam = Binomial::new(ctx.phase_len, self.p)
            .expect("validated probability")
            .sample(&mut self.rng);
        let mut plan = McPhasePlan::idle(ctx.spectrum);
        plan.set_jam(rcb_radio::ChannelId::ZERO, jam);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::{Params, RunConfig};

    use crate::test_util::run_broadcast;
    use rcb_radio::Budget;

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_bad_probability() {
        let _ = RandomJammer::new(1.5, 0);
    }

    #[test]
    fn jam_rate_tracks_p() {
        let mut carol = RandomJammer::new(0.3, 7);
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let jams = (0..10_000)
            .filter(|&t| carol.plan(Slot::new(t), &ctx).jam.is_active())
            .count();
        assert!((2_700..3_300).contains(&jams), "jams {jams}");
    }

    #[test]
    fn half_rate_jamming_delays_but_does_not_stop_broadcast() {
        let params = Params::builder(32).build().unwrap();
        let cfg = RunConfig::seeded(5).carol_budget(Budget::limited(5_000));
        let mut carol = RandomJammer::new(0.5, 11);
        let outcome = run_broadcast(&params, &mut carol, &cfg);
        assert!(outcome.informed_fraction() > 0.9);
        assert!(outcome.carol_spend() > 0);
    }

    #[test]
    fn phase_mc_plan_jams_channel_zero_at_density_p() {
        use rcb_core::fast_mc::{McPhaseCtx, PhaseJammer};
        use rcb_radio::{PhaseObservation, Spectrum};

        let spectrum = Spectrum::new(4);
        let mut carol = RandomJammer::new(0.25, 3);
        let empty = PhaseObservation::empty(spectrum);
        let ctx = McPhaseCtx {
            phase: 0,
            start_slot: 0,
            phase_len: 100_000,
            spectrum,
            budget_remaining: None,
            uninformed: 5,
            informed: 0,
            observation: &empty,
        };
        let plan = PhaseJammer::plan_phase(&mut carol, &ctx);
        let per_channel = plan.jam_slots();
        assert!(
            per_channel[1..].iter().all(|&j| j == 0),
            "jam_all never leaves channel 0: {per_channel:?}"
        );
        let frac = per_channel[0] as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn phase_plan_density_matches_p() {
        let mut carol = RandomJammer::new(0.25, 3);
        let ctx = PhaseCtx {
            round: 8,
            phase: rcb_core::PhaseKind::Request,
            phase_len: 100_000,
            budget_remaining: None,
            uninformed: 5,
        };
        let plan = PhaseAdversary::plan_phase(&mut carol, &ctx);
        let frac = plan.jam_slots as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }
}
