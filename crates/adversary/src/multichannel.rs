//! Channel-capable jamming strategies for multi-channel spectra.
//!
//! On `C > 1` channels a jammer faces a new dilemma (Chen & Zheng
//! 2019/2020): blanketing the whole spectrum costs `C` units per slot,
//! while concentrating on fewer channels lets hopping protocols slip
//! through on the rest. These three strategies realise the canonical
//! points of that trade-off:
//!
//! * [`SplitJammer`] — blanket every channel, splitting the budget
//!   uniformly; goes broke `C×` faster than a single-channel jammer;
//! * [`SweepJammer`] — concentrate on one channel at a time, sweeping
//!   the spectrum with a configurable dwell time;
//! * [`ChannelLaggedJammer`] — the multi-channel
//!   [`LaggedJammer`](crate::LaggedJammer): jam (in the next slot) every
//!   channel that carried correct traffic.
//!
//! All three are defined at slot and channel granularity for the exact
//! engine, and all three also run on the `fast_mc` phase-level hopping
//! simulator: [`SplitJammer`] and [`SweepJammer`] implement
//! `PhaseJammer` directly (their plans lower exactly to per-phase slot
//! counts), while the lagged jammer has the statistical lowering
//! [`ChannelLaggedPhaseJammer`](crate::ChannelLaggedPhaseJammer).
//! `rcb_sim::Scenario` rejects them on protocols that cannot host a
//! multi-channel spectrum.

use rcb_radio::{
    Adversary, AdversaryCtx, AdversaryMove, ChannelId, JamDirective, JamPlan, Slot,
    SlotObservation, Spectrum,
};

/// The budget-splitting uniform jammer: jams **every** channel of the
/// spectrum in every slot, until broke.
///
/// The multi-channel analogue of
/// [`ContinuousJammer`](crate::ContinuousJammer): with budget `T` and `C`
/// channels the blanket holds for only `T / C` slots — the engine charges
/// one unit per jammed channel and fizzles the remainder of the plan when
/// the pool runs dry mid-slot.
#[derive(Debug, Clone, Copy)]
pub struct SplitJammer {
    spectrum: Spectrum,
}

impl SplitJammer {
    /// Creates a jammer blanketing the given spectrum.
    #[must_use]
    pub fn new(spectrum: Spectrum) -> Self {
        Self { spectrum }
    }
}

impl Adversary for SplitJammer {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        AdversaryMove::jam_spectrum(self.spectrum)
    }
}

/// The channel-sweeping jammer: jams one channel at a time, hopping to
/// the next every `dwell` slots (wrapping around the spectrum).
///
/// Spends like a single-channel jammer (one unit per slot) but covers
/// each channel only a `1/C` fraction of the time — the concentrated
/// extreme of the split/concentrate trade-off.
#[derive(Debug, Clone, Copy)]
pub struct SweepJammer {
    spectrum: Spectrum,
    dwell: u64,
}

impl SweepJammer {
    /// Creates a sweeper dwelling `dwell` slots on each channel.
    ///
    /// # Panics
    ///
    /// Panics if `dwell == 0`.
    #[must_use]
    pub fn new(spectrum: Spectrum, dwell: u64) -> Self {
        assert!(dwell > 0, "dwell must be at least one slot");
        Self { spectrum, dwell }
    }

    /// The channel targeted in `slot`.
    #[must_use]
    pub fn target(&self, slot: Slot) -> ChannelId {
        let c = u64::from(self.spectrum.channel_count());
        ChannelId::new(((slot.index() / self.dwell) % c) as u16)
    }

    /// Slots spent on each channel before hopping to the next.
    #[must_use]
    pub fn dwell(&self) -> u64 {
        self.dwell
    }
}

impl Adversary for SweepJammer {
    fn plan(&mut self, slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        AdversaryMove {
            jam: JamPlan::on(self.target(slot), JamDirective::All),
            sends: Vec::new(),
        }
    }
}

/// The multi-channel lagged reactive jammer: jams, in slot `t + 1`, every
/// channel on which a correct device transmitted in slot `t`.
///
/// Like [`LaggedJammer`](crate::LaggedJammer) it models hardware without
/// in-slot CCA — detection costs one slot of latency — but its detector
/// is per-channel, so against a hopping protocol it pays one unit per
/// *previously* active channel while the protocol has already hopped
/// elsewhere.
#[derive(Debug, Clone, Default)]
pub struct ChannelLaggedJammer {
    /// Channels with correct traffic in the previous slot (sorted).
    pending: Vec<ChannelId>,
}

impl ChannelLaggedJammer {
    /// Creates a lagged jammer (no pending jam).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for ChannelLaggedJammer {
    fn plan(&mut self, _slot: Slot, ctx: &AdversaryCtx) -> AdversaryMove {
        let pending = std::mem::take(&mut self.pending);
        let affordable = match ctx.budget_remaining {
            None => pending.len(),
            Some(rem) => pending
                .len()
                .min(usize::try_from(rem).unwrap_or(usize::MAX)),
        };
        let mut jam = JamPlan::none();
        for &channel in &pending[..affordable] {
            jam.set(channel, JamDirective::All);
        }
        AdversaryMove {
            jam,
            sends: Vec::new(),
        }
    }

    fn observe(&mut self, _slot: Slot, observation: &SlotObservation<'_>) {
        self.pending.clear();
        self.pending
            .extend(observation.correct_sends.iter().map(|&(_, c, _)| c));
        self.pending.sort_unstable();
        self.pending.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_radio::{ParticipantId, PayloadKind};

    fn ctx() -> AdversaryCtx {
        AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        }
    }

    #[test]
    fn split_jammer_blankets_the_spectrum() {
        let mut carol = SplitJammer::new(Spectrum::new(4));
        let mv = carol.plan(Slot::ZERO, &ctx());
        assert_eq!(mv.jam.active_channel_count(), 4);
        for c in Spectrum::new(4).channels() {
            assert!(mv.jam.jams(c, ParticipantId::new(0)));
        }
    }

    #[test]
    fn sweep_jammer_cycles_channels_with_dwell() {
        let mut carol = SweepJammer::new(Spectrum::new(3), 2);
        let targets: Vec<u16> = (0..8)
            .map(|t| {
                let mv = carol.plan(Slot::new(t), &ctx());
                assert_eq!(mv.jam.active_channel_count(), 1);
                mv.jam.entries()[0].0.index()
            })
            .collect();
        assert_eq!(targets, vec![0, 0, 1, 1, 2, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "dwell must be at least one slot")]
    fn sweep_rejects_zero_dwell() {
        let _ = SweepJammer::new(Spectrum::new(2), 0);
    }

    #[test]
    fn channel_lagged_jams_exactly_the_previously_active_channels() {
        let mut carol = ChannelLaggedJammer::new();
        let sends = [
            (
                ParticipantId::new(0),
                ChannelId::new(2),
                PayloadKind::Broadcast,
            ),
            (ParticipantId::new(1), ChannelId::new(0), PayloadKind::Nack),
            (ParticipantId::new(2), ChannelId::new(2), PayloadKind::Nack),
        ];
        carol.observe(
            Slot::ZERO,
            &SlotObservation {
                correct_sends: &sends,
                listeners: &[],
                jam_executed: false,
                jammed_channels: &[],
                delivered: &[],
            },
        );
        let mv = carol.plan(Slot::new(1), &ctx());
        assert_eq!(mv.jam.active_channel_count(), 2, "channels deduplicated");
        assert!(mv.jam.jams(ChannelId::new(0), ParticipantId::new(9)));
        assert!(mv.jam.jams(ChannelId::new(2), ParticipantId::new(9)));
        assert!(!mv.jam.jams(ChannelId::new(1), ParticipantId::new(9)));
        // One slot of lag only: the next plan is idle.
        carol.observe(
            Slot::new(1),
            &SlotObservation {
                correct_sends: &[],
                listeners: &[],
                jam_executed: true,
                jammed_channels: &[ChannelId::new(0), ChannelId::new(2)],
                delivered: &[],
            },
        );
        assert!(!carol.plan(Slot::new(2), &ctx()).jam.is_active());
    }

    #[test]
    fn channel_lagged_respects_a_tight_budget() {
        let mut carol = ChannelLaggedJammer::new();
        let sends = [
            (ParticipantId::new(0), ChannelId::new(0), PayloadKind::Nack),
            (ParticipantId::new(1), ChannelId::new(1), PayloadKind::Nack),
            (ParticipantId::new(2), ChannelId::new(2), PayloadKind::Nack),
        ];
        carol.observe(
            Slot::ZERO,
            &SlotObservation {
                correct_sends: &sends,
                listeners: &[],
                jam_executed: false,
                jammed_channels: &[],
                delivered: &[],
            },
        );
        let tight = AdversaryCtx {
            budget_remaining: Some(2),
            spent: 0,
        };
        let mv = carol.plan(Slot::new(1), &tight);
        assert_eq!(
            mv.jam.active_channel_count(),
            2,
            "she only commits what she can afford"
        );
    }
}
