//! Content-addressed result cache: completed cell statistics keyed by
//! canonical fingerprint.
//!
//! Entries live in memory always and, when the cache is rooted at a
//! directory, in one small text file per fingerprint (`<hex>.cell`).
//! Floats are stored as IEEE-754 bit patterns in hex, so a disk
//! round-trip reproduces the in-memory accumulators **bit-exactly** —
//! a warm-cache sweep reports byte-identical aggregates to the run that
//! populated it. Files carry the [`ENGINE_ERA`] tag; entries from a
//! different era (or any unparsable file) are treated as misses, never
//! served.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use rcb_rng::stats::RunningStats;

use crate::fingerprint::{Fingerprint, ENGINE_ERA};
use crate::stats::{CellStats, Metric, METRIC_COUNT};

/// On-disk format version (the first line of every cell file).
const FORMAT: &str = "rcb-sweep-cell-v1";

/// One cached cell: the statistics a finished cell accumulated.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The cell's canonical fingerprint.
    pub fingerprint: Fingerprint,
    /// Human-readable cell label (diagnostic only; never part of the key).
    pub label: String,
    /// Trials the statistics aggregate.
    pub trials: u64,
    /// The accumulated per-metric statistics.
    pub stats: CellStats,
}

/// How a cache lookup resolved — the telemetry-facing classification
/// behind [`ResultCache::lookup`]'s `Option`.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A usable entry was found (in memory or on disk).
    Hit(Box<CacheEntry>),
    /// No entry exists for the fingerprint.
    Miss,
    /// A file exists for the fingerprint but was refused — stale engine
    /// era, corruption, or a fingerprint mismatch. Served as a miss, but
    /// worth distinguishing: a burst of these after an upgrade is the
    /// era guard working, not a cold cache.
    Invalidated,
}

/// A content-addressed store of completed cell statistics.
///
/// Lookups check the in-memory map first, then the directory (when
/// rooted); stores write through to both. The service keeps one cache
/// across submissions, so repeated cells — within a sweep, across
/// sweeps, or across process restarts via the directory — cost nothing.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<Fingerprint, CacheEntry>>,
    bound: Option<DiskBound>,
}

/// Compaction state for a size-bounded disk store.
///
/// `tracked_bytes` is the believed total size of the `.cell` files,
/// maintained incrementally across stores (initialized by one directory
/// scan, lazily). Compaction rescans, so external deletions only make
/// the estimate conservative, never unsafe.
#[derive(Debug)]
struct DiskBound {
    max_bytes: u64,
    tracked_bytes: Mutex<Option<u64>>,
    evicted: AtomicU64,
}

impl ResultCache {
    /// A purely in-memory cache (dies with the service).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            bound: None,
        }
    }

    /// A cache rooted at `dir` (created if absent); entries survive
    /// process restarts.
    ///
    /// # Errors
    ///
    /// Propagates the error when the directory cannot be created.
    pub fn at_dir(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: Some(dir),
            mem: Mutex::new(HashMap::new()),
            bound: None,
        })
    }

    /// A rooted cache whose disk footprint is compacted to at most
    /// `max_bytes` of `.cell` files, evicting the **oldest entries
    /// first** (by file modification time; evicted cells are simply
    /// recomputed on their next submission).
    ///
    /// Compaction runs once at open — so a restart against a directory
    /// that outgrew the bound shrinks it immediately — and after any
    /// store that pushes the tracked total past the bound. The store
    /// that triggered a compaction is the newest file and therefore the
    /// last eviction candidate; it only goes when `max_bytes` is smaller
    /// than that single entry.
    ///
    /// # Errors
    ///
    /// Propagates the error when the directory cannot be created or the
    /// opening compaction scan fails.
    pub fn at_dir_bounded(dir: impl Into<PathBuf>, max_bytes: u64) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = Self {
            dir: Some(dir),
            mem: Mutex::new(HashMap::new()),
            bound: Some(DiskBound {
                max_bytes,
                tracked_bytes: Mutex::new(None),
                evicted: AtomicU64::new(0),
            }),
        };
        cache.compact()?;
        Ok(cache)
    }

    /// Disk entries evicted by compaction over this cache's lifetime.
    #[must_use]
    pub fn evicted_entries(&self) -> u64 {
        self.bound
            .as_ref()
            .map_or(0, |b| b.evicted.load(Ordering::Relaxed))
    }

    /// The backing directory, when rooted.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of entries resident in memory (disk-only entries count
    /// after their first lookup).
    #[must_use]
    pub fn resident_len(&self) -> usize {
        self.mem.lock().expect("cache mutex poisoned").len()
    }

    /// Looks up a fingerprint; `None` on miss, era mismatch, or an
    /// unparsable file.
    #[must_use]
    pub fn lookup(&self, fingerprint: Fingerprint) -> Option<CacheEntry> {
        match self.lookup_classified(fingerprint) {
            CacheLookup::Hit(entry) => Some(*entry),
            CacheLookup::Miss | CacheLookup::Invalidated => None,
        }
    }

    /// Like [`lookup`](Self::lookup), but distinguishes a plain miss
    /// (no entry) from an invalidated one (a file that exists but was
    /// refused: stale era, corruption, fingerprint mismatch).
    #[must_use]
    pub fn lookup_classified(&self, fingerprint: Fingerprint) -> CacheLookup {
        if let Some(entry) = self
            .mem
            .lock()
            .expect("cache mutex poisoned")
            .get(&fingerprint)
        {
            return CacheLookup::Hit(Box::new(entry.clone()));
        }
        let Some(dir) = self.dir.as_ref() else {
            return CacheLookup::Miss;
        };
        let Ok(text) = fs::read_to_string(entry_path(dir, fingerprint)) else {
            return CacheLookup::Miss;
        };
        let Some(entry) = parse_entry(&text).filter(|e| e.fingerprint == fingerprint) else {
            return CacheLookup::Invalidated;
        };
        self.mem
            .lock()
            .expect("cache mutex poisoned")
            .insert(fingerprint, entry.clone());
        CacheLookup::Hit(Box::new(entry))
    }

    /// Stores a completed cell, writing through to disk when rooted.
    ///
    /// # Errors
    ///
    /// Propagates the write error; the in-memory copy is kept either way.
    pub fn store(&self, entry: CacheEntry) -> io::Result<()> {
        let rendered = self
            .dir
            .as_ref()
            .map(|dir| (entry_path(dir, entry.fingerprint), render_entry(&entry)));
        self.mem
            .lock()
            .expect("cache mutex poisoned")
            .insert(entry.fingerprint, entry);
        if let Some((path, text)) = rendered {
            let written = text.len() as u64;
            fs::write(path, text)?;
            self.note_written(written)?;
        }
        Ok(())
    }

    /// Adds `written` bytes to the tracked disk total (initializing it
    /// with one directory scan on first use) and compacts if the bound
    /// is now exceeded.
    fn note_written(&self, written: u64) -> io::Result<()> {
        let (Some(dir), Some(bound)) = (self.dir.as_ref(), self.bound.as_ref()) else {
            return Ok(());
        };
        let over = {
            let mut tracked = bound.tracked_bytes.lock().expect("cache mutex poisoned");
            let total = match *tracked {
                // `store` overwrites on a repeated fingerprint, so the
                // increment over-counts re-stores; compaction rescans,
                // which only makes this estimate trigger early, never
                // miss.
                Some(total) => total + written,
                None => scan_cells(dir)?.iter().map(|c| c.bytes).sum::<u64>(),
            };
            *tracked = Some(total);
            total > bound.max_bytes
        };
        if over {
            self.compact()?;
        }
        Ok(())
    }

    /// Evicts oldest-first until the `.cell` files fit the bound; a
    /// no-op for unbounded caches.
    fn compact(&self) -> io::Result<()> {
        let (Some(dir), Some(bound)) = (self.dir.as_ref(), self.bound.as_ref()) else {
            return Ok(());
        };
        let mut cells = scan_cells(dir)?;
        let mut total: u64 = cells.iter().map(|c| c.bytes).sum();
        // Oldest first; ties (e.g. coarse mtime clocks within one sweep)
        // break by file name so eviction order is deterministic.
        cells.sort_by(|a, b| {
            a.modified
                .cmp(&b.modified)
                .then_with(|| a.path.cmp(&b.path))
        });
        let mut evicted = 0u64;
        for cell in &cells {
            if total <= bound.max_bytes {
                break;
            }
            match fs::remove_file(&cell.path) {
                Ok(()) => {}
                // Already gone (another handle compacted): nothing to do.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            total -= cell.bytes;
            evicted += 1;
        }
        if evicted > 0 {
            bound.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        *bound.tracked_bytes.lock().expect("cache mutex poisoned") = Some(total);
        Ok(())
    }
}

/// One `.cell` file's eviction-relevant metadata.
struct CellFile {
    path: PathBuf,
    bytes: u64,
    modified: SystemTime,
}

fn scan_cells(dir: &Path) -> io::Result<Vec<CellFile>> {
    let mut cells = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_none_or(|ext| ext != "cell") {
            continue;
        }
        let meta = entry.metadata()?;
        if !meta.is_file() {
            continue;
        }
        cells.push(CellFile {
            path,
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
        });
    }
    Ok(cells)
}

fn entry_path(dir: &Path, fingerprint: Fingerprint) -> PathBuf {
    dir.join(format!("{fingerprint}.cell"))
}

fn render_stats(line: &mut String, metric: Metric, stats: &RunningStats) {
    let _ = writeln!(
        line,
        "stat.{}={} {:016x} {:016x} {:016x} {:016x}",
        metric.name(),
        stats.count(),
        stats.mean().to_bits(),
        stats.m2().to_bits(),
        stats.min().to_bits(),
        stats.max().to_bits(),
    );
}

fn render_entry(entry: &CacheEntry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{FORMAT}");
    let _ = writeln!(out, "era={ENGINE_ERA}");
    let _ = writeln!(out, "fingerprint={}", entry.fingerprint);
    let _ = writeln!(out, "label={}", entry.label);
    let _ = writeln!(out, "trials={}", entry.trials);
    for metric in Metric::ALL {
        render_stats(&mut out, metric, entry.stats.stats(metric));
    }
    out
}

fn parse_bits(field: &str) -> Option<f64> {
    u64::from_str_radix(field, 16).ok().map(f64::from_bits)
}

fn parse_stats_line(value: &str) -> Option<RunningStats> {
    let mut fields = value.split_ascii_whitespace();
    let count: u64 = fields.next()?.parse().ok()?;
    let mean = parse_bits(fields.next()?)?;
    let m2 = parse_bits(fields.next()?)?;
    let min = parse_bits(fields.next()?)?;
    let max = parse_bits(fields.next()?)?;
    if fields.next().is_some() {
        return None;
    }
    Some(RunningStats::from_raw_parts(count, mean, m2, min, max))
}

fn parse_entry(text: &str) -> Option<CacheEntry> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let mut era = None;
    let mut fingerprint = None;
    let mut label = String::new();
    let mut trials = None;
    let mut per: [Option<RunningStats>; METRIC_COUNT] = [None; METRIC_COUNT];
    for line in lines {
        let (key, value) = line.split_once('=')?;
        match key {
            "era" => era = Some(value.to_string()),
            "fingerprint" => fingerprint = value.parse::<Fingerprint>().ok(),
            "label" => label = value.to_string(),
            "trials" => trials = value.parse::<u64>().ok(),
            stat_key => {
                let name = stat_key.strip_prefix("stat.")?;
                let metric = Metric::from_name(name)?;
                per[metric as usize] = Some(parse_stats_line(value)?);
            }
        }
    }
    // The era guard: statistics from another engine era are stale.
    if era.as_deref() != Some(ENGINE_ERA) {
        return None;
    }
    let mut stats = [RunningStats::new(); METRIC_COUNT];
    for (slot, parsed) in stats.iter_mut().zip(per) {
        *slot = parsed?;
    }
    let trials = trials?;
    let stats = CellStats::from_raw(stats);
    if stats.count() != trials {
        return None;
    }
    Some(CacheEntry {
        fingerprint: fingerprint?,
        label,
        trials,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrialMetrics;
    use rcb_sim::{HoppingSpec, StrategySpec};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rcb-sweep-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> CacheEntry {
        sample_entry_seeded(3)
    }

    fn sample_entry_seeded(seed: u64) -> CacheEntry {
        let spec = crate::ScenarioSpec::hopping(HoppingSpec::new(16, 2_000))
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(500)
            .seed(seed);
        let scenario = spec.build().unwrap();
        let mut stats = CellStats::new();
        for outcome in scenario.run_batch(5) {
            stats.push(&TrialMetrics::from_outcome(&outcome));
        }
        CacheEntry {
            fingerprint: crate::fingerprint(&spec),
            label: spec.label(),
            trials: 5,
            stats,
        }
    }

    #[test]
    fn in_memory_round_trip() {
        let cache = ResultCache::in_memory();
        let entry = sample_entry();
        assert!(cache.lookup(entry.fingerprint).is_none());
        cache.store(entry.clone()).unwrap();
        assert_eq!(cache.lookup(entry.fingerprint), Some(entry));
    }

    #[test]
    fn disk_round_trip_is_bit_exact() {
        let dir = temp_dir("roundtrip");
        let entry = sample_entry();
        {
            let cache = ResultCache::at_dir(&dir).unwrap();
            cache.store(entry.clone()).unwrap();
        }
        // A fresh cache (cold memory) must reload identical bits.
        let cache = ResultCache::at_dir(&dir).unwrap();
        assert_eq!(cache.resident_len(), 0);
        let loaded = cache.lookup(entry.fingerprint).expect("disk hit");
        assert_eq!(loaded, entry);
        for metric in Metric::ALL {
            assert_eq!(
                loaded.stats.stats(metric).mean().to_bits(),
                entry.stats.stats(metric).mean().to_bits(),
            );
            assert_eq!(
                loaded.stats.stats(metric).m2().to_bits(),
                entry.stats.stats(metric).m2().to_bits(),
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn era_mismatch_and_corruption_are_misses() {
        let dir = temp_dir("guards");
        let entry = sample_entry();
        let cache = ResultCache::at_dir(&dir).unwrap();
        cache.store(entry.clone()).unwrap();
        let path = entry_path(&dir, entry.fingerprint);

        // Stale era: rewritten tag must be refused by a cold cache —
        // and classified as an invalidation, not a plain miss.
        let stale = fs::read_to_string(&path)
            .unwrap()
            .replace(ENGINE_ERA, "era0:ancient");
        fs::write(&path, stale).unwrap();
        let cold = ResultCache::at_dir(&dir).unwrap();
        assert!(cold.lookup(entry.fingerprint).is_none());
        assert_eq!(
            cold.lookup_classified(entry.fingerprint),
            CacheLookup::Invalidated
        );

        // Corruption: truncated file is a miss, not a panic.
        fs::write(&path, "rcb-sweep-cell-v1\nera=garbage").unwrap();
        let cold = ResultCache::at_dir(&dir).unwrap();
        assert!(cold.lookup(entry.fingerprint).is_none());
        assert_eq!(
            cold.lookup_classified(entry.fingerprint),
            CacheLookup::Invalidated
        );

        // An absent fingerprint is a plain miss.
        let other = sample_entry_seeded(99).fingerprint;
        assert_eq!(cold.lookup_classified(other), CacheLookup::Miss);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn era1_disk_cache_is_invalidated_loudly_not_corrupt_read() {
        use crate::fingerprint::{fingerprint_with_era, PREVIOUS_ENGINE_ERA};

        // Simulate a cache directory left behind by an era-1 build: one
        // entry stored under the era-1 fingerprint with the era-1 body
        // tag — exactly what `ResultCache::store` wrote before the PR-7
        // era bump.
        let dir = temp_dir("era1-upgrade");
        let spec = crate::ScenarioSpec::hopping(HoppingSpec::new(16, 2_000))
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(500)
            .seed(3);
        let entry = sample_entry();
        let era1_key = fingerprint_with_era(&spec, PREVIOUS_ENGINE_ERA);
        fs::create_dir_all(&dir).unwrap();
        let era1_body = render_entry(&CacheEntry {
            fingerprint: era1_key,
            ..entry.clone()
        })
        .replace(ENGINE_ERA, PREVIOUS_ENGINE_ERA);
        fs::write(entry_path(&dir, era1_key), era1_body).unwrap();

        let cache = ResultCache::at_dir(&dir).unwrap();
        // Layer 1: the era-2 key addresses a different file, so the cell
        // is recomputed rather than served from era-1 statistics.
        let era2_key = crate::fingerprint(&spec);
        assert_ne!(era2_key, era1_key);
        assert!(cache.lookup(era2_key).is_none());
        // Layer 2: even addressed directly (say, via a pinned key list
        // from an old report), the era-1 body is refused — a miss, never
        // a partial or reinterpreted read.
        assert!(cache.lookup(era1_key).is_none());
        assert_eq!(cache.resident_len(), 0, "nothing stale became resident");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_evicts_oldest_entries_to_fit_the_bound() {
        let dir = temp_dir("compaction");
        let entries: Vec<CacheEntry> = (0..4).map(sample_entry_seeded).collect();
        let cell_bytes = render_entry(&entries[0]).len() as u64;
        // Room for roughly two cells: storing four must evict the two
        // oldest from disk (the in-memory copies are untouched).
        let cache = ResultCache::at_dir_bounded(&dir, 2 * cell_bytes + cell_bytes / 2).unwrap();
        for (i, entry) in entries.iter().enumerate() {
            cache.store(entry.clone()).unwrap();
            // Distinct mtimes even on coarse filesystem clocks.
            let when = fs::FileTimes::new()
                .set_modified(SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(i as u64));
            fs::File::options()
                .append(true)
                .open(entry_path(&dir, entry.fingerprint))
                .unwrap()
                .set_times(when)
                .unwrap();
        }
        cache.compact().unwrap();
        assert_eq!(cache.evicted_entries(), 2, "two oldest cells evicted");
        assert!(!entry_path(&dir, entries[0].fingerprint).exists());
        assert!(!entry_path(&dir, entries[1].fingerprint).exists());
        assert!(entry_path(&dir, entries[2].fingerprint).exists());
        assert!(entry_path(&dir, entries[3].fingerprint).exists());
        // Memory still serves every entry this process stored...
        assert!(cache.lookup(entries[0].fingerprint).is_some());

        // ...but a restart sees only the survivors: evicted cells are
        // plain misses (recomputed on next submission), survivors load
        // bit-exactly.
        let cold = ResultCache::at_dir_bounded(&dir, 2 * cell_bytes + cell_bytes / 2).unwrap();
        assert_eq!(
            cold.lookup_classified(entries[0].fingerprint),
            CacheLookup::Miss
        );
        assert_eq!(
            cold.lookup_classified(entries[1].fingerprint),
            CacheLookup::Miss
        );
        assert_eq!(
            cold.lookup(entries[3].fingerprint),
            Some(entries[3].clone())
        );
        assert_eq!(cold.evicted_entries(), 0, "nothing left to evict at open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_bounded_cache_shrinks_an_overgrown_directory() {
        let dir = temp_dir("compaction-open");
        // Populate unbounded, past any bound we will set.
        {
            let unbounded = ResultCache::at_dir(&dir).unwrap();
            for seed in 0..5 {
                unbounded.store(sample_entry_seeded(seed)).unwrap();
            }
        }
        let cell_bytes = render_entry(&sample_entry()).len() as u64;
        let bounded = ResultCache::at_dir_bounded(&dir, 3 * cell_bytes).unwrap();
        assert_eq!(bounded.evicted_entries(), 2, "open-time compaction ran");
        let remaining = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "cell")
            })
            .count();
        assert_eq!(remaining, 3);
        // An unbounded handle over the same directory never compacts.
        let unbounded = ResultCache::at_dir(&dir).unwrap();
        unbounded.store(sample_entry_seeded(100)).unwrap();
        assert_eq!(unbounded.evicted_entries(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trials_stats_consistency_is_enforced() {
        let entry = sample_entry();
        let mut text = render_entry(&entry);
        text = text.replace("trials=5", "trials=9");
        assert!(parse_entry(&text).is_none());
    }
}
