//! The worker-pool scheduler: decomposes cells into trial shards,
//! executes them with work stealing, and aggregates deterministically.
//!
//! Determinism contract (pinned by `tests/determinism.rs` at the
//! workspace root): per-cell aggregates are **byte-identical** to a
//! sequential `run_trials` pass over the same seeds, at any worker
//! count and shard size. Three mechanisms deliver it:
//!
//! 1. per-trial seeds derive from the cell's master seed
//!    (`SeedTree::new(seed).leaf_seed("trial", i)`) — exactly the
//!    `Scenario::run_batch` tree, independent of scheduling;
//! 2. workers return raw per-trial metric vectors; the scheduler buffers
//!    out-of-order shards and pushes trials into the Welford
//!    accumulators strictly in trial-index order (float addition is not
//!    associative — completion-order merging would change bits);
//! 3. early stopping is evaluated only at the [`StopRule`]'s fixed
//!    checkpoints, and shards are never issued past the next
//!    checkpoint, so the stopped trial count is a pure function of the
//!    rule and the cell — never of shard size or worker count.

use std::collections::BTreeMap;
use std::sync::mpsc;

use rcb_rng::SeedTree;
use rcb_sim::{Scenario, ScenarioScratch, THREADS_ENV_VAR};
use rcb_telemetry::{Collector, MetricId};

use crate::progress::SweepProgress;
use crate::queue::ShardQueue;
use crate::stats::{CellStats, StopRule, TrialMetrics};

/// A contiguous batch of trials of one cell.
#[derive(Debug, Clone, Copy)]
struct Shard {
    /// Index into the scheduler's cell list.
    cell: usize,
    /// First trial index of the shard.
    start: u32,
    /// Number of trials.
    len: u32,
}

/// Scheduler-side state of one executing cell.
struct CellState {
    stats: CellStats,
    /// Completed shards waiting for their turn, keyed by start index.
    pending: BTreeMap<u32, Vec<TrialMetrics>>,
    /// Trials aggregated so far (the contiguous prefix).
    aggregated: u32,
    /// Trials issued as shards so far.
    issued: u32,
    /// The checkpoint the current wave runs to.
    target: u32,
    done: bool,
}

/// Resolves the worker count: explicit config, then the workspace's
/// `RCB_THREADS` convention, then `available_parallelism`.
fn resolve_workers(requested: Option<usize>) -> usize {
    requested
        .map(|w| w.max(1))
        .or_else(|| {
            std::env::var(THREADS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&w| w > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
}

/// Issues shards covering `[state.issued, state.target)`; returns how
/// many shards were pushed.
fn issue(queue: &ShardQueue<Shard>, cell: usize, state: &mut CellState, shard_size: u32) -> u64 {
    let mut pushed = 0u64;
    while state.issued < state.target {
        let len = shard_size.min(state.target - state.issued);
        queue.push(Shard {
            cell,
            start: state.issued,
            len,
        });
        state.issued += len;
        pushed += 1;
    }
    pushed
}

/// Executes `cells` under `rule`, returning `(stats, trials)` per cell in
/// input order. `progress` is updated in place; `on_progress` fires after
/// every checkpoint evaluation and cell completion. The collector (noop
/// by default at the service level) sees shard issues, checkpoint
/// evaluations, early stops, per-cell trial-count observations, and the
/// queue's final steal count — never anything that affects results.
pub(crate) fn execute(
    cells: &[(usize, Scenario)],
    rule: &StopRule,
    workers: Option<usize>,
    shard_size: u32,
    progress: &mut SweepProgress,
    on_progress: &mut dyn FnMut(&SweepProgress),
    collector: &dyn Collector,
) -> Vec<(CellStats, u32)> {
    if cells.is_empty() {
        return Vec::new();
    }
    let telemetry = collector.enabled();
    let shard_size = shard_size.max(1);
    let workers = resolve_workers(workers);
    if telemetry {
        collector.gauge(MetricId::SweepWorkers, workers as f64);
    }
    let queue: ShardQueue<Shard> = ShardQueue::new(workers);
    // (scenario, seed tree) per cell, shared immutably with the workers;
    // mutable aggregation state stays on the scheduler thread.
    let exec: Vec<(&Scenario, SeedTree)> = cells
        .iter()
        .map(|(_, scenario)| (scenario, SeedTree::new(scenario.seed())))
        .collect();
    let mut state: Vec<CellState> = cells
        .iter()
        .map(|_| CellState {
            stats: CellStats::new(),
            pending: BTreeMap::new(),
            aggregated: 0,
            issued: 0,
            target: rule.first_checkpoint(),
            done: false,
        })
        .collect();

    let (tx, rx) = mpsc::channel::<(usize, u32, Vec<TrialMetrics>)>();
    let mut shards_issued = 0u64;
    for (cell, cell_state) in state.iter_mut().enumerate() {
        shards_issued += issue(&queue, cell, cell_state, shard_size);
    }

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let exec = &exec;
            let tx = tx.clone();
            scope.spawn(move || {
                let mut scratch = ScenarioScratch::new();
                while let Some(shard) = queue.pop(worker) {
                    let (scenario, tree) = &exec[shard.cell];
                    let mut metrics = Vec::with_capacity(shard.len as usize);
                    for trial in shard.start..shard.start + shard.len {
                        let seed = tree.leaf_seed("trial", u64::from(trial));
                        let outcome = scenario.run_in(&mut scratch, seed);
                        metrics.push(TrialMetrics::from_outcome(&outcome));
                    }
                    if tx.send((shard.cell, shard.start, metrics)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut remaining = state.len();
        while remaining > 0 {
            let (cell, start, metrics) = rx
                .recv()
                .expect("workers cannot exit while shards are outstanding");
            let cell_state = &mut state[cell];
            cell_state.pending.insert(start, metrics);
            // Drain the contiguous prefix, strictly in trial order.
            while let Some(batch) = cell_state.pending.remove(&cell_state.aggregated) {
                for trial in &batch {
                    cell_state.stats.push(trial);
                }
                cell_state.aggregated += batch.len() as u32;
                progress.trials_executed += batch.len() as u64;
                if telemetry {
                    collector.add(MetricId::SweepTrials, batch.len() as u64);
                }
            }
            // Checkpoint reached: stop, or issue the next wave.
            if cell_state.aggregated == cell_state.target && !cell_state.done {
                if telemetry {
                    collector.add(MetricId::SweepCheckpoints, 1);
                }
                if rule.finished_by(&cell_state.stats) {
                    cell_state.done = true;
                    remaining -= 1;
                    progress.cells_done += 1;
                    progress.trials_saved_by_stopping +=
                        u64::from(rule.max_trials - cell_state.aggregated);
                    if telemetry {
                        if cell_state.aggregated < rule.max_trials {
                            collector.add(MetricId::SweepEarlyStops, 1);
                        }
                        collector
                            .observe(MetricId::SweepCellTrials, f64::from(cell_state.aggregated));
                    }
                } else {
                    cell_state.target = rule
                        .next_checkpoint(cell_state.aggregated)
                        .expect("finished_by is true at max_trials");
                    shards_issued += issue(&queue, cell, cell_state, shard_size);
                }
                on_progress(progress);
            }
        }
        queue.close();
    });
    if telemetry {
        collector.add(MetricId::SweepShards, shards_issued);
        collector.add(MetricId::SweepSteals, queue.steals());
    }

    state
        .into_iter()
        .map(|cell_state| {
            debug_assert!(cell_state.done && cell_state.pending.is_empty());
            (cell_state.stats, cell_state.aggregated)
        })
        .collect()
}
