//! Declarative scenario cells — the `Scenario` builder's inputs captured
//! as data, so a sweep can be described, fingerprinted, and replayed.

use rcb_adversary::StrategySpec;
use rcb_core::Params;
use rcb_sim::{
    Engine, EpidemicSpec, EpochHoppingSpec, HoppingSpec, KpsySpec, KsySpec, NaiveSpec, Scenario,
    ScenarioError, DEFAULT_MC_PHASE_LEN,
};

/// The protocol half of a [`ScenarioSpec`]: the same vocabulary as the
/// [`Scenario`] builder's entry points (`Scenario::broadcast`,
/// `::naive`, `::epidemic`, `::ksy`, `::hopping`), as a value.
#[derive(Debug, Clone)]
pub enum ProtocolSpec {
    /// ε-BROADCAST (Gilbert & Young, PODC 2012).
    Broadcast(Box<Params>),
    /// The §1.1 naive always-on strawman.
    Naive(NaiveSpec),
    /// Epidemic gossip without backoff.
    Epidemic(EpidemicSpec),
    /// The King–Saia–Young-style two-player comparator.
    Ksy(KsySpec),
    /// Multi-channel epidemic-style random-hopping broadcast.
    Hopping(HoppingSpec),
    /// Epoch-structured multi-channel hopping (the Chen–Zheng schedule).
    EpochHopping(EpochHoppingSpec),
    /// The KPSY `n`-player resource-competitive jamming defense.
    Kpsy(KpsySpec),
}

impl ProtocolSpec {
    /// Short stable name for labels and tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::Broadcast(_) => "broadcast",
            ProtocolSpec::Naive(_) => "naive",
            ProtocolSpec::Epidemic(_) => "epidemic",
            ProtocolSpec::Ksy(_) => "ksy",
            ProtocolSpec::Hopping(_) => "hopping",
            ProtocolSpec::EpochHopping(_) => "epoch-hopping",
            ProtocolSpec::Kpsy(_) => "kpsy",
        }
    }

    /// Number of receiver nodes (1 for the two-player KSY comparator).
    #[must_use]
    pub fn n(&self) -> u64 {
        match self {
            ProtocolSpec::Broadcast(params) => params.n(),
            ProtocolSpec::Naive(spec) => spec.n,
            ProtocolSpec::Epidemic(spec) => spec.n,
            ProtocolSpec::Ksy(_) => 1,
            ProtocolSpec::Hopping(spec) => spec.n,
            ProtocolSpec::EpochHopping(spec) => spec.n,
            ProtocolSpec::Kpsy(spec) => spec.n,
        }
    }
}

/// One sweep cell: everything that determines a scenario's distribution
/// of outcomes, captured declaratively.
///
/// This is the unit the sweep service schedules, fingerprints
/// ([`crate::fingerprint`]), and caches. [`build`](Self::build) lowers it
/// onto the validated [`Scenario`] API, so a spec that builds runs
/// exactly like its hand-built counterpart — per-trial seeds derive from
/// [`seed`](Self::seed) via `SeedTree::new(seed).leaf_seed("trial", i)`,
/// identical to `Scenario::run_batch`.
///
/// # Example
///
/// ```
/// use rcb_sweep::ScenarioSpec;
/// use rcb_sim::{Engine, HoppingSpec, StrategySpec};
///
/// let cell = ScenarioSpec::hopping(HoppingSpec::new(64, 4_000))
///     .engine(Engine::Fast)
///     .channels(4)
///     .adversary(StrategySpec::SplitUniform)
///     .carol_budget(2_000)
///     .seed(7);
/// let scenario = cell.build()?;
/// assert_eq!(scenario.channels(), 4);
/// # Ok::<(), rcb_sim::ScenarioError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Which protocol the cell runs.
    pub protocol: ProtocolSpec,
    /// Which engine executes it.
    pub engine: Engine,
    /// The adversary strategy.
    pub adversary: StrategySpec,
    /// Carol's pooled budget `T` (`None` = unlimited).
    pub carol_budget: Option<u64>,
    /// Number of radio channels (1 = the single-channel model).
    pub channels: u16,
    /// Phase length of the phase-level multi-channel engines (`None` =
    /// the engine default, [`DEFAULT_MC_PHASE_LEN`]). Only meaningful
    /// for hopping on [`Engine::Fast`] or [`Engine::Fluid`].
    pub phase_len: Option<u64>,
    /// Master seed — the root of the cell's per-trial seed lineage.
    pub seed: u64,
}

impl ScenarioSpec {
    fn new(protocol: ProtocolSpec) -> Self {
        Self {
            protocol,
            engine: Engine::Exact,
            adversary: StrategySpec::Silent,
            carol_budget: None,
            channels: 1,
            phase_len: None,
            seed: 0,
        }
    }

    /// Starts an ε-BROADCAST cell.
    #[must_use]
    pub fn broadcast(params: Params) -> Self {
        Self::new(ProtocolSpec::Broadcast(Box::new(params)))
    }

    /// Starts a naive always-on cell.
    #[must_use]
    pub fn naive(spec: NaiveSpec) -> Self {
        Self::new(ProtocolSpec::Naive(spec))
    }

    /// Starts an epidemic-gossip cell.
    #[must_use]
    pub fn epidemic(spec: EpidemicSpec) -> Self {
        Self::new(ProtocolSpec::Epidemic(spec))
    }

    /// Starts a KSY two-player cell.
    #[must_use]
    pub fn ksy(spec: KsySpec) -> Self {
        Self::new(ProtocolSpec::Ksy(spec))
    }

    /// Starts a multi-channel random-hopping cell.
    #[must_use]
    pub fn hopping(spec: HoppingSpec) -> Self {
        Self::new(ProtocolSpec::Hopping(spec))
    }

    /// Starts an epoch-structured hopping cell.
    #[must_use]
    pub fn epoch_hopping(spec: EpochHoppingSpec) -> Self {
        Self::new(ProtocolSpec::EpochHopping(spec))
    }

    /// Starts a KPSY jamming-defense cell.
    #[must_use]
    pub fn kpsy(spec: KpsySpec) -> Self {
        Self::new(ProtocolSpec::Kpsy(spec))
    }

    /// Selects the engine (default [`Engine::Exact`]).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the adversary (default `StrategySpec::Silent`).
    #[must_use]
    pub fn adversary(mut self, adversary: StrategySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Caps Carol's pooled budget (default unlimited).
    #[must_use]
    pub fn carol_budget(mut self, units: u64) -> Self {
        self.carol_budget = Some(units);
        self
    }

    /// Sets the channel count (default 1).
    #[must_use]
    pub fn channels(mut self, c: u16) -> Self {
        self.channels = c;
        self
    }

    /// Sets the fast-engine phase length (default: engine default).
    #[must_use]
    pub fn phase_len(mut self, slots: u64) -> Self {
        self.phase_len = Some(slots);
        self
    }

    /// Sets the master seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The canonical phase length this cell runs at: the explicit value
    /// when one applies, the engine default when the phase-level
    /// multi-channel engine is selected without one, and 0 (no phase
    /// structure) everywhere else. The fingerprint hashes this, so
    /// "default" and "explicitly the default" cannot key differently.
    #[must_use]
    pub fn canonical_phase_len(&self) -> u64 {
        match &self.protocol {
            ProtocolSpec::Hopping(_) if matches!(self.engine, Engine::Fast | Engine::Fluid) => {
                self.phase_len.unwrap_or(DEFAULT_MC_PHASE_LEN)
            }
            // The epoch schedule's phase length IS the epoch length,
            // which the protocol encoding already hashes.
            _ => 0,
        }
    }

    /// Lowers this spec onto the validated [`Scenario`] API.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError`] from `ScenarioBuilder::build` — the
    /// sweep service rejects invalid cells at submit time with the cell
    /// index attached.
    pub fn build(&self) -> Result<Scenario, ScenarioError> {
        let mut builder = match &self.protocol {
            ProtocolSpec::Broadcast(params) => Scenario::broadcast((**params).clone()),
            ProtocolSpec::Naive(spec) => Scenario::naive(*spec),
            ProtocolSpec::Epidemic(spec) => Scenario::epidemic(*spec),
            ProtocolSpec::Ksy(spec) => Scenario::ksy(*spec),
            ProtocolSpec::Hopping(spec) => Scenario::hopping(*spec),
            ProtocolSpec::EpochHopping(spec) => Scenario::epoch_hopping(*spec),
            ProtocolSpec::Kpsy(spec) => Scenario::kpsy(*spec),
        };
        builder = builder
            .engine(self.engine)
            .adversary(self.adversary)
            .channels(self.channels)
            .seed(self.seed);
        if let Some(units) = self.carol_budget {
            builder = builder.carol_budget(units);
        }
        if let Some(slots) = self.phase_len {
            builder = builder.phase_len(slots);
        }
        builder.build()
    }

    /// Human-readable cell label for tables and progress lines, e.g.
    /// `hopping/fast/C4/n65536/adaptive(w=8,r=0.5)/T24000/seed7`.
    #[must_use]
    pub fn label(&self) -> String {
        let engine = match self.engine {
            Engine::Exact => "exact",
            Engine::Fast => "fast",
            Engine::Fluid => "fluid",
        };
        let budget = match self.carol_budget {
            Some(t) => format!("T{t}"),
            None => "T∞".to_string(),
        };
        format!(
            "{}/{}/C{}/n{}/{}/{}/seed{}",
            self.protocol.name(),
            engine,
            self.channels,
            self.protocol.n(),
            self.adversary.name(),
            budget,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builds_the_equivalent_scenario() {
        let spec = ScenarioSpec::hopping(HoppingSpec::new(16, 2_000))
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(500)
            .seed(9);
        let scenario = spec.build().unwrap();
        assert_eq!(scenario.channels(), 4);
        assert_eq!(scenario.seed(), 9);
        // Outcomes match a hand-built scenario bit for bit.
        let hand = Scenario::hopping(HoppingSpec::new(16, 2_000))
            .channels(4)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(500)
            .seed(9)
            .build()
            .unwrap();
        let a = scenario.run();
        let b = hand.run();
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.broadcast.node_total_cost, b.broadcast.node_total_cost);
    }

    #[test]
    fn invalid_cells_surface_the_scenario_error() {
        let spec = ScenarioSpec::broadcast(Params::builder(16).build().unwrap()).channels(4);
        assert!(matches!(
            spec.build(),
            Err(ScenarioError::MultiChannelUnsupported { .. })
        ));
    }

    #[test]
    fn canonical_phase_len_rules() {
        let hop = ScenarioSpec::hopping(HoppingSpec::new(16, 100));
        assert_eq!(hop.clone().canonical_phase_len(), 0, "exact: no phases");
        assert_eq!(
            hop.clone().engine(Engine::Fast).canonical_phase_len(),
            DEFAULT_MC_PHASE_LEN
        );
        assert_eq!(
            hop.clone()
                .engine(Engine::Fast)
                .phase_len(64)
                .canonical_phase_len(),
            64
        );
        // The fluid tier shares the phase-length structure (and the
        // default) with fast_mc.
        assert_eq!(
            hop.clone().engine(Engine::Fluid).canonical_phase_len(),
            DEFAULT_MC_PHASE_LEN
        );
        assert_eq!(
            hop.engine(Engine::Fluid)
                .phase_len(64)
                .canonical_phase_len(),
            64
        );
    }

    #[test]
    fn labels_are_stable_and_descriptive() {
        let label = ScenarioSpec::hopping(HoppingSpec::new(64, 4_000))
            .channels(8)
            .adversary(StrategySpec::ChannelLagged)
            .carol_budget(2_000)
            .seed(3)
            .label();
        assert_eq!(label, "hopping/exact/C8/n64/channel-lagged/T2000/seed3");
    }
}
