//! The sweep service: validates submissions, serves cells from the
//! result cache, executes the rest through the scheduler, and stores
//! what it learns.
//!
//! This is the controller half of the controller/manager split the rest
//! of the workspace uses: [`SweepService`] owns policy (validation,
//! cache consultation, result assembly) and delegates mechanism (shard
//! execution) to the [`scheduler`](crate::scheduler). Callers hand it a
//! [`SweepSpec`] — a grid of cells plus one [`StopRule`] — and get back
//! a [`SweepReport`] with per-cell statistics and provenance.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rcb_sim::{Scenario, ScenarioError};
use rcb_telemetry::{Collector, MetricId, NoopCollector};

use crate::cache::{CacheEntry, CacheLookup, ResultCache};
use crate::fingerprint::{fingerprint, Fingerprint};
use crate::progress::SweepProgress;
use crate::scheduler;
use crate::spec::ScenarioSpec;
use crate::stats::{CellStats, StopRule};

/// Tuning knobs of a [`SweepService`].
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads. `None` defers to `RCB_THREADS`, then to
    /// `available_parallelism`. Results never depend on this.
    pub workers: Option<usize>,
    /// Trials per shard (clamped to ≥ 1). Coarser shards amortise
    /// queue traffic; finer shards balance load. Results never depend
    /// on this.
    pub shard_size: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            workers: None,
            shard_size: 8,
        }
    }
}

/// A sweep submission: the cells to measure and the precision to reach.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The grid cells, one scenario each.
    pub cells: Vec<ScenarioSpec>,
    /// The early-stop rule every cell runs under.
    pub stop: StopRule,
}

impl SweepSpec {
    /// Bundles cells with a stop rule.
    #[must_use]
    pub fn new(cells: Vec<ScenarioSpec>, stop: StopRule) -> Self {
        Self { cells, stop }
    }
}

/// Why a submission was rejected or failed.
#[derive(Debug)]
pub enum SweepError {
    /// The stop rule is degenerate.
    InvalidRule(String),
    /// A cell failed scenario validation.
    InvalidCell {
        /// Index of the offending cell in the submitted spec.
        index: usize,
        /// The underlying scenario error.
        error: ScenarioError,
    },
    /// The result cache could not persist a completed cell.
    Cache(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidRule(why) => write!(f, "invalid stop rule: {why}"),
            SweepError::InvalidCell { index, error } => {
                write!(f, "cell {index} is invalid: {error}")
            }
            SweepError::Cache(why) => write!(f, "result cache failure: {why}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One finished cell of a sweep report.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell as submitted.
    pub spec: ScenarioSpec,
    /// Its canonical fingerprint (the cache key).
    pub fingerprint: Fingerprint,
    /// Accumulated statistics.
    pub stats: CellStats,
    /// Trials the statistics aggregate.
    pub trials: u64,
    /// Whether the cell was served without executing a trial (from the
    /// cache, or deduplicated against an identical cell in the same
    /// submission).
    pub from_cache: bool,
}

impl CellResult {
    /// CI half-width of the rule's metric at the rule's critical value.
    #[must_use]
    pub fn half_width(&self, rule: &StopRule) -> f64 {
        self.stats.half_width(rule.metric, rule.z)
    }

    /// Whether the precision target was met (false only for cells that
    /// hit `max_trials` first).
    #[must_use]
    pub fn met_target(&self, rule: &StopRule) -> bool {
        rule.satisfied_by(&self.stats)
    }
}

/// The outcome of one submission: a result per cell (submission order)
/// plus the final progress snapshot.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell results, in submission order.
    pub cells: Vec<CellResult>,
    /// The final progress counters.
    pub progress: SweepProgress,
}

impl SweepReport {
    /// Trials actually executed for this submission.
    #[must_use]
    pub fn trials_executed(&self) -> u64 {
        self.progress.trials_executed
    }
}

/// The resident sweep service: one long-lived instance amortises its
/// result cache over every submission.
#[derive(Debug)]
pub struct SweepService {
    config: SweepConfig,
    cache: ResultCache,
    collector: Arc<dyn Collector>,
}

/// Submission-time classification of one cell.
enum CellPlan {
    /// Served from the cache; the entry is final under the rule.
    Cached(Box<CacheEntry>),
    /// Identical to an earlier cell of this submission (by index).
    Duplicate(usize),
    /// Must execute; index into the scheduler's run list.
    Run(usize),
}

impl SweepService {
    /// A service with an in-memory cache and default tuning.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(SweepConfig::default(), ResultCache::in_memory())
    }

    /// A service over an explicit cache and tuning.
    #[must_use]
    pub fn new(config: SweepConfig, cache: ResultCache) -> Self {
        Self {
            config,
            cache,
            collector: Arc::new(NoopCollector),
        }
    }

    /// Attaches a telemetry collector. Every submission then reports
    /// cell counts, cache hit/miss/invalidation/dedup classification,
    /// executed trials, shard issues, checkpoint evaluations, early
    /// stops, and worker steals. With the default [`NoopCollector`]
    /// every hook compiles to nothing; results never depend on the
    /// collector either way.
    #[must_use]
    pub fn with_collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = collector;
        self
    }

    /// The attached telemetry collector.
    #[must_use]
    pub fn collector(&self) -> &Arc<dyn Collector> {
        &self.collector
    }

    /// The backing cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Runs a sweep to completion.
    ///
    /// # Errors
    ///
    /// Rejects degenerate stop rules and invalid cells before executing
    /// anything; surfaces cache persistence failures.
    pub fn submit(&self, spec: &SweepSpec) -> Result<SweepReport, SweepError> {
        self.submit_streaming(spec, |_| {})
    }

    /// Runs a sweep, invoking `on_progress` with a fresh snapshot after
    /// every cache decision, checkpoint evaluation, and cell completion.
    ///
    /// # Errors
    ///
    /// Same contract as [`submit`](Self::submit).
    pub fn submit_streaming(
        &self,
        spec: &SweepSpec,
        mut on_progress: impl FnMut(&SweepProgress),
    ) -> Result<SweepReport, SweepError> {
        spec.stop.validate().map_err(SweepError::InvalidRule)?;
        let rule = spec.stop;
        let collector = &*self.collector;
        let telemetry = collector.enabled();
        let mut progress = SweepProgress {
            cells_total: spec.cells.len() as u64,
            ..SweepProgress::default()
        };
        if telemetry {
            collector.add(MetricId::SweepCells, spec.cells.len() as u64);
        }

        // Validate every cell up front — a submission is rejected whole,
        // never half-executed — and plan each one: cache hit, intra-sweep
        // duplicate, or run.
        let mut prints = Vec::with_capacity(spec.cells.len());
        for (index, cell) in spec.cells.iter().enumerate() {
            cell.build()
                .map_err(|error| SweepError::InvalidCell { index, error })?;
            prints.push(fingerprint(cell));
        }
        let mut plans: Vec<CellPlan> = Vec::with_capacity(spec.cells.len());
        let mut to_run: Vec<(usize, Scenario)> = Vec::new();
        let mut first_seen: HashMap<Fingerprint, usize> = HashMap::new();
        for (index, (cell, &print)) in spec.cells.iter().zip(&prints).enumerate() {
            if let Some(&earlier) = first_seen.get(&print) {
                // An intra-submission duplicate never consults the
                // cache: it is neither a hit nor a miss.
                plans.push(CellPlan::Duplicate(earlier));
                progress.dedup_hits += 1;
                if telemetry {
                    collector.add(MetricId::SweepDedupHits, 1);
                }
                continue;
            }
            first_seen.insert(print, index);
            let lookup = self.cache.lookup_classified(print);
            if telemetry {
                // A hit that is under-precise for this rule still forces
                // an execution, so it counts as a miss here.
                collector.add(
                    match &lookup {
                        CacheLookup::Hit(entry) if rule.finished_by(&entry.stats) => {
                            MetricId::SweepCacheHits
                        }
                        CacheLookup::Hit(_) | CacheLookup::Miss => MetricId::SweepCacheMisses,
                        CacheLookup::Invalidated => MetricId::SweepCacheInvalidations,
                    },
                    1,
                );
            }
            match lookup {
                CacheLookup::Hit(entry) if rule.finished_by(&entry.stats) => {
                    progress.cache_hits += 1;
                    progress.cells_from_cache += 1;
                    progress.cells_done += 1;
                    progress.trials_saved_by_cache += u64::from(rule.max_trials);
                    plans.push(CellPlan::Cached(entry));
                }
                _ => {
                    progress.cache_misses += 1;
                    plans.push(CellPlan::Run(to_run.len()));
                    let scenario = cell.build().expect("cell validated above");
                    to_run.push((index, scenario));
                }
            }
        }
        on_progress(&progress);

        // Execute the misses.
        let executed = scheduler::execute(
            &to_run,
            &rule,
            self.config.workers,
            self.config.shard_size,
            &mut progress,
            &mut on_progress,
            collector,
        );

        // Persist what was learned.
        for ((index, _), (stats, trials)) in to_run.iter().zip(&executed) {
            let entry = CacheEntry {
                fingerprint: prints[*index],
                label: spec.cells[*index].label(),
                trials: u64::from(*trials),
                stats: stats.clone(),
            };
            self.cache
                .store(entry)
                .map_err(|e| SweepError::Cache(e.to_string()))?;
        }

        // Assemble the report in submission order.
        let mut results: Vec<CellResult> = Vec::with_capacity(spec.cells.len());
        for (index, (cell, plan)) in spec.cells.iter().zip(&plans).enumerate() {
            let result = match plan {
                CellPlan::Cached(entry) => CellResult {
                    spec: cell.clone(),
                    fingerprint: prints[index],
                    stats: entry.stats.clone(),
                    trials: entry.trials,
                    from_cache: true,
                },
                CellPlan::Duplicate(earlier) => {
                    let twin = &results[*earlier];
                    progress.cells_done += 1;
                    progress.cells_from_cache += 1;
                    progress.trials_saved_by_cache += u64::from(rule.max_trials);
                    CellResult {
                        spec: cell.clone(),
                        fingerprint: prints[index],
                        stats: twin.stats.clone(),
                        trials: twin.trials,
                        from_cache: true,
                    }
                }
                CellPlan::Run(slot) => {
                    let (stats, trials) = &executed[*slot];
                    CellResult {
                        spec: cell.clone(),
                        fingerprint: prints[index],
                        stats: stats.clone(),
                        trials: u64::from(*trials),
                        from_cache: false,
                    }
                }
            };
            results.push(result);
        }
        on_progress(&progress);

        Ok(SweepReport {
            cells: results,
            progress,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Metric;
    use rcb_sim::{HoppingSpec, StrategySpec};

    fn small_cell(seed: u64) -> ScenarioSpec {
        ScenarioSpec::hopping(HoppingSpec::new(8, 200))
            .channels(2)
            .adversary(StrategySpec::SplitUniform)
            .carol_budget(100)
            .seed(seed)
    }

    fn loose_rule() -> StopRule {
        StopRule::new(Metric::NodeTotalCost, 1e18).trials(4, 4, 8)
    }

    #[test]
    fn degenerate_rule_is_rejected_before_running() {
        let service = SweepService::in_memory();
        let spec = SweepSpec::new(
            vec![small_cell(1)],
            StopRule::new(Metric::Slots, 1.0).trials(1, 1, 1),
        );
        assert!(matches!(
            service.submit(&spec),
            Err(SweepError::InvalidRule(_))
        ));
    }

    #[test]
    fn invalid_cell_rejects_the_whole_submission() {
        let service = SweepService::in_memory();
        // ε-BROADCAST is single-channel only; channels(4) cannot build.
        let bad =
            ScenarioSpec::broadcast(rcb_core::Params::builder(16).build().unwrap()).channels(4);
        let spec = SweepSpec::new(vec![small_cell(1), bad], loose_rule());
        match service.submit(&spec) {
            Err(SweepError::InvalidCell { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected InvalidCell, got {other:?}"),
        }
        // Nothing was cached: the valid cell did not execute.
        assert_eq!(service.cache().resident_len(), 0);
    }

    #[test]
    fn resubmission_executes_zero_trials() {
        let service = SweepService::in_memory();
        let spec = SweepSpec::new(vec![small_cell(1), small_cell(2)], loose_rule());
        let cold = service.submit(&spec).unwrap();
        assert!(cold.trials_executed() > 0);
        assert!(cold.cells.iter().all(|c| !c.from_cache));

        let warm = service.submit(&spec).unwrap();
        assert_eq!(warm.trials_executed(), 0, "warm submission must be free");
        assert!(warm.cells.iter().all(|c| c.from_cache));
        assert_eq!(warm.progress.cache_hits, 2);
        assert_eq!(warm.progress.dedup_hits, 0, "distinct cells, no dedup");
        // And the statistics are the same bits.
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.trials, b.trials);
        }
    }

    #[test]
    fn duplicate_cells_within_one_submission_execute_once() {
        let service = SweepService::in_memory();
        let spec = SweepSpec::new(vec![small_cell(7), small_cell(7)], loose_rule());
        let report = service.submit(&spec).unwrap();
        assert!(!report.cells[0].from_cache);
        assert!(report.cells[1].from_cache);
        assert_eq!(report.cells[0].stats, report.cells[1].stats);
        // Only the first copy's trials were executed.
        assert_eq!(report.trials_executed(), report.cells[0].trials);
        // The twin never consulted the cache: it is a dedup hit, not a
        // cache hit — and certainly not a miss.
        assert_eq!(report.progress.dedup_hits, 1);
        assert_eq!(report.progress.cache_hits, 0);
        assert_eq!(report.progress.cache_misses, 1);
    }

    #[test]
    fn attached_collector_sees_cache_and_dedup_classification() {
        use rcb_telemetry::RecordingCollector;

        let recorder = Arc::new(RecordingCollector::new());
        let service = SweepService::new(SweepConfig::default(), ResultCache::in_memory())
            .with_collector(recorder.clone());
        // Two distinct cells plus one duplicate, twice: cold then warm.
        let spec = SweepSpec::new(
            vec![small_cell(1), small_cell(2), small_cell(1)],
            loose_rule(),
        );
        service.submit(&spec).unwrap();
        service.submit(&spec).unwrap();

        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(MetricId::SweepCells), 6);
        assert_eq!(snap.counter(MetricId::SweepCacheMisses), 2);
        assert_eq!(snap.counter(MetricId::SweepCacheHits), 2);
        assert_eq!(snap.counter(MetricId::SweepDedupHits), 2);
        assert_eq!(snap.counter(MetricId::SweepCacheInvalidations), 0);
        assert!(snap.counter(MetricId::SweepTrials) > 0);
        assert!(snap.counter(MetricId::SweepShards) > 0);
        assert!(snap.gauge(MetricId::SweepWorkers).is_some());
        let trials = snap.histogram(MetricId::SweepCellTrials).unwrap();
        assert_eq!(trials.count, 2, "one observation per executed cell");
    }

    #[test]
    fn progress_callback_reaches_a_terminal_snapshot() {
        let service = SweepService::in_memory();
        let spec = SweepSpec::new(vec![small_cell(3)], loose_rule());
        let mut last = SweepProgress::default();
        service.submit_streaming(&spec, |p| last = *p).unwrap();
        assert_eq!(last.cells_total, 1);
        assert_eq!(last.cells_done, 1);
        assert_eq!(last.cells_running(), 0);
    }
}
