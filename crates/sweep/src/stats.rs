//! Streaming per-cell statistics and the CI-driven early-stop rule.
//!
//! Every trial collapses to a fixed vector of metrics
//! ([`TrialMetrics`]); a cell accumulates them in one Welford
//! accumulator per metric ([`CellStats`]). Aggregation happens strictly
//! in trial-index order — floating-point addition is not associative, so
//! order-invariance is what makes sweep aggregates byte-identical to a
//! sequential `run_trials` pass at any worker count or shard size.
//!
//! The [`StopRule`] drives early stopping: a cell stops at the first
//! *checkpoint* (fixed trial counts derived from the rule alone, never
//! from scheduling) where the chosen metric's CI half-width is at or
//! under target, or at `max_trials`. Because checkpoints are a pure
//! function of the rule, stopped trial counts are also invariant to
//! worker count and shard size, and monotone in the precision target.

use rcb_rng::stats::RunningStats;
use rcb_sim::ScenarioOutcome;

/// The per-trial measures a sweep tracks for every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fraction of nodes informed at stop.
    InformedFraction,
    /// Alice's total energy spend.
    AliceCost,
    /// Total energy spend across all nodes.
    NodeTotalCost,
    /// The most any single node spent (0 when the engine does not track
    /// per-node maxima).
    MaxNodeCost,
    /// Carol's realised spend.
    CarolSpend,
    /// Slots simulated.
    Slots,
}

/// Number of tracked metrics (the length of a [`TrialMetrics`] vector).
pub const METRIC_COUNT: usize = 6;

impl Metric {
    /// All metrics, in vector order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::InformedFraction,
        Metric::AliceCost,
        Metric::NodeTotalCost,
        Metric::MaxNodeCost,
        Metric::CarolSpend,
        Metric::Slots,
    ];

    /// Stable short name (also the cache-file key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::InformedFraction => "informed-fraction",
            Metric::AliceCost => "alice-cost",
            Metric::NodeTotalCost => "node-total-cost",
            Metric::MaxNodeCost => "max-node-cost",
            Metric::CarolSpend => "carol-spend",
            Metric::Slots => "slots",
        }
    }

    /// Parses a stable name back to the metric.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One trial's measurements, in [`Metric::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    values: [f64; METRIC_COUNT],
}

impl TrialMetrics {
    /// Collapses a scenario outcome to the tracked metric vector.
    #[must_use]
    pub fn from_outcome(outcome: &ScenarioOutcome) -> Self {
        Self {
            values: [
                outcome.informed_fraction(),
                outcome.broadcast.alice_cost.total() as f64,
                outcome.broadcast.node_total_cost.total() as f64,
                outcome.broadcast.max_node_cost.unwrap_or(0) as f64,
                outcome.carol_spend() as f64,
                outcome.slots as f64,
            ],
        }
    }

    /// The value of one metric.
    #[must_use]
    pub fn get(&self, metric: Metric) -> f64 {
        self.values[metric.index()]
    }
}

/// Streaming statistics of one cell: a Welford accumulator per metric,
/// fed strictly in trial-index order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellStats {
    per: [RunningStats; METRIC_COUNT],
}

impl CellStats {
    /// An empty accumulator set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one trial. Callers must push trials in index order for
    /// bit-reproducible aggregates (the scheduler guarantees this).
    pub fn push(&mut self, metrics: &TrialMetrics) {
        for (stats, value) in self.per.iter_mut().zip(metrics.values) {
            stats.push(value);
        }
    }

    /// Trials absorbed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.per[0].count()
    }

    /// The accumulator of one metric.
    #[must_use]
    pub fn stats(&self, metric: Metric) -> &RunningStats {
        &self.per[metric.index()]
    }

    /// Mean of one metric.
    #[must_use]
    pub fn mean(&self, metric: Metric) -> f64 {
        self.stats(metric).mean()
    }

    /// CI half-width of one metric at critical value `z`
    /// (`z · s / √count`; 0 until two trials exist — the stop rule's
    /// `min_trials ≥ 2` floor is what keeps that from triggering a stop
    /// on one sample).
    #[must_use]
    pub fn half_width(&self, metric: Metric, z: f64) -> f64 {
        z * self.stats(metric).std_error()
    }

    /// Raw accumulators in metric order (cache serialisation hook).
    #[must_use]
    pub fn raw(&self) -> &[RunningStats; METRIC_COUNT] {
        &self.per
    }

    /// Rebuilds from raw accumulators (cache deserialisation hook).
    #[must_use]
    pub fn from_raw(per: [RunningStats; METRIC_COUNT]) -> Self {
        Self { per }
    }
}

/// When a cell may stop executing trials.
///
/// A cell is evaluated only at **checkpoints**: `min_trials`, then every
/// `check_every` further trials, capped at `max_trials` (which is always
/// a checkpoint). At a checkpoint the cell stops iff the CI half-width
/// of [`metric`](Self::metric) at critical value [`z`](Self::z) is ≤
/// [`half_width`](Self::half_width), and unconditionally at
/// `max_trials`. Checkpoints depend on the rule alone, so stopping is
/// deterministic and scheduling-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// The metric whose confidence interval drives stopping.
    pub metric: Metric,
    /// Target CI half-width (absolute, in the metric's units).
    pub half_width: f64,
    /// Critical value of the normal CI (1.96 ≈ 95%).
    pub z: f64,
    /// Trials before the first checkpoint (≥ 2: variance needs two).
    pub min_trials: u32,
    /// Checkpoint spacing after `min_trials` (≥ 1).
    pub check_every: u32,
    /// Hard cap; the cell stops here even if the target was never met.
    pub max_trials: u32,
}

impl StopRule {
    /// A rule targeting `half_width` on `metric` at 95% confidence, with
    /// the default checkpoint ladder (min 8, every 8, max 256).
    #[must_use]
    pub fn new(metric: Metric, half_width: f64) -> Self {
        Self {
            metric,
            half_width,
            z: 1.96,
            min_trials: 8,
            check_every: 8,
            max_trials: 256,
        }
    }

    /// Overrides the checkpoint ladder.
    #[must_use]
    pub fn trials(mut self, min: u32, every: u32, max: u32) -> Self {
        self.min_trials = min;
        self.check_every = every;
        self.max_trials = max;
        self
    }

    /// Overrides the CI critical value.
    #[must_use]
    pub fn z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// Validates the rule.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_trials < 2 {
            return Err("min_trials must be at least 2 (variance needs two samples)".into());
        }
        if self.check_every == 0 {
            return Err("check_every must be at least 1".into());
        }
        if self.max_trials < self.min_trials {
            return Err(format!(
                "max_trials ({}) must be at least min_trials ({})",
                self.max_trials, self.min_trials
            ));
        }
        if !(self.half_width >= 0.0 && self.half_width.is_finite()) {
            return Err(format!(
                "half_width target must be finite and nonnegative, got {}",
                self.half_width
            ));
        }
        if !(self.z > 0.0 && self.z.is_finite()) {
            return Err(format!("z must be positive and finite, got {}", self.z));
        }
        Ok(())
    }

    /// The first checkpoint (trial count).
    #[must_use]
    pub fn first_checkpoint(&self) -> u32 {
        self.min_trials.min(self.max_trials)
    }

    /// The checkpoint after `current` trials, `None` past `max_trials`.
    #[must_use]
    pub fn next_checkpoint(&self, current: u32) -> Option<u32> {
        if current >= self.max_trials {
            None
        } else if current < self.min_trials {
            Some(self.first_checkpoint())
        } else {
            Some(
                current
                    .saturating_add(self.check_every)
                    .min(self.max_trials),
            )
        }
    }

    /// Whether the precision target is met by these statistics.
    #[must_use]
    pub fn satisfied_by(&self, stats: &CellStats) -> bool {
        stats.count() >= u64::from(self.min_trials)
            && stats.half_width(self.metric, self.z) <= self.half_width
    }

    /// Whether a cell with these statistics is finished (target met, or
    /// the trial cap reached).
    #[must_use]
    pub fn finished_by(&self, stats: &CellStats) -> bool {
        self.satisfied_by(stats) || stats.count() >= u64::from(self.max_trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(v: f64) -> TrialMetrics {
        TrialMetrics {
            values: [v; METRIC_COUNT],
        }
    }

    #[test]
    fn cell_stats_track_each_metric() {
        let mut stats = CellStats::new();
        for v in [1.0, 2.0, 3.0] {
            stats.push(&metrics(v));
        }
        assert_eq!(stats.count(), 3);
        for metric in Metric::ALL {
            assert!((stats.mean(metric) - 2.0).abs() < 1e-12);
        }
        assert!(stats.half_width(Metric::Slots, 1.96) > 0.0);
    }

    #[test]
    fn zero_variance_has_zero_half_width() {
        let mut stats = CellStats::new();
        for _ in 0..4 {
            stats.push(&metrics(5.0));
        }
        assert_eq!(stats.half_width(Metric::NodeTotalCost, 1.96), 0.0);
    }

    #[test]
    fn checkpoint_ladder_is_min_then_every_capped_at_max() {
        let rule = StopRule::new(Metric::NodeTotalCost, 1.0).trials(4, 3, 12);
        assert_eq!(rule.first_checkpoint(), 4);
        let mut points = Vec::new();
        let mut at = 0;
        while let Some(next) = rule.next_checkpoint(at) {
            points.push(next);
            at = next;
        }
        assert_eq!(points, vec![4, 7, 10, 12]);
        // max is always a checkpoint, even off the ladder.
        let rule = StopRule::new(Metric::NodeTotalCost, 1.0).trials(4, 100, 10);
        assert_eq!(rule.next_checkpoint(4), Some(10));
    }

    #[test]
    fn rule_validation_rejects_degenerate_ladders() {
        assert!(StopRule::new(Metric::Slots, 1.0).validate().is_ok());
        assert!(StopRule::new(Metric::Slots, 1.0)
            .trials(1, 4, 8)
            .validate()
            .is_err());
        assert!(StopRule::new(Metric::Slots, 1.0)
            .trials(4, 0, 8)
            .validate()
            .is_err());
        assert!(StopRule::new(Metric::Slots, 1.0)
            .trials(8, 4, 4)
            .validate()
            .is_err());
        assert!(StopRule::new(Metric::Slots, f64::NAN).validate().is_err());
        assert!(StopRule::new(Metric::Slots, 1.0).z(0.0).validate().is_err());
    }

    #[test]
    fn satisfaction_needs_min_trials_and_the_target() {
        let rule = StopRule::new(Metric::NodeTotalCost, 0.5).trials(3, 1, 100);
        let mut stats = CellStats::new();
        stats.push(&metrics(5.0));
        stats.push(&metrics(5.0));
        assert!(!rule.satisfied_by(&stats), "below min_trials");
        stats.push(&metrics(5.0));
        assert!(rule.satisfied_by(&stats), "zero variance at min_trials");
        // High variance: not satisfied, but finished at max.
        let noisy = StopRule::new(Metric::NodeTotalCost, 1e-9).trials(2, 1, 3);
        let mut stats = CellStats::new();
        for v in [1.0, 100.0, 1000.0] {
            stats.push(&metrics(v));
        }
        assert!(!noisy.satisfied_by(&stats));
        assert!(noisy.finished_by(&stats));
    }

    #[test]
    fn metric_names_round_trip() {
        for metric in Metric::ALL {
            assert_eq!(Metric::from_name(metric.name()), Some(metric));
        }
        assert_eq!(Metric::from_name("nope"), None);
    }
}
