//! `rcb-sweep` — a resident spectrum-sweep service over the unified
//! [`Scenario`](rcb_sim::Scenario) API.
//!
//! The workspace's one-shot path (`run_trials`, `Scenario::run_batch`)
//! answers "run N trials of this configuration". A sweep asks a bigger
//! question — "measure this *grid* of configurations to this
//! *precision*" — and a resident service can answer it much cheaper than
//! N one-shots, because it can stop cells early, balance the grid across
//! a worker pool, and remember every cell it has ever finished. This
//! crate is that service, in four layers:
//!
//! * **Specs and fingerprints** ([`ScenarioSpec`], [`fingerprint`]) — a
//!   declarative cell description and a canonical 128-bit content
//!   address over it, with an engine-era tag so cached statistics go
//!   stale loudly, never silently.
//! * **Streaming statistics** ([`CellStats`], [`StopRule`]) — one
//!   Welford accumulator per tracked metric, fed strictly in trial-index
//!   order, with CI-driven early stopping at deterministic checkpoints.
//! * **Execution** (the internal scheduler and work-stealing
//!   [`queue`](ShardQueue)) — cells decompose into trial shards executed
//!   by a scoped worker pool; aggregates are **byte-identical** to a
//!   sequential `run_trials` pass at any worker count or shard size.
//! * **Service and cache** ([`SweepService`], [`ResultCache`]) — the
//!   controller that validates a [`SweepSpec`], serves finished cells
//!   from the content-addressed cache (memory or disk), executes the
//!   rest, and reports per-cell [`CellResult`]s with a
//!   [`SweepProgress`] trail.
//!
//! The `sweepd` binary wraps the service for the command line; the
//! `rcb-analysis` E15 experiment and the `bench --sweep` mode drive it
//! in-process.
//!
//! # Example
//!
//! ```
//! use rcb_sim::{HoppingSpec, StrategySpec};
//! use rcb_sweep::{Metric, ScenarioSpec, StopRule, SweepService, SweepSpec};
//!
//! let cells: Vec<ScenarioSpec> = (0..3)
//!     .map(|c| {
//!         ScenarioSpec::hopping(HoppingSpec::new(8, 200))
//!             .channels(1 + c)
//!             .adversary(StrategySpec::SplitUniform)
//!             .carol_budget(100)
//!             .seed(7)
//!     })
//!     .collect();
//! let rule = StopRule::new(Metric::NodeTotalCost, 1e18).trials(4, 4, 8);
//! let service = SweepService::in_memory();
//!
//! let cold = service.submit(&SweepSpec::new(cells.clone(), rule))?;
//! assert!(cold.trials_executed() > 0);
//!
//! // Identical resubmission: every cell is served from the cache.
//! let warm = service.submit(&SweepSpec::new(cells, rule))?;
//! assert_eq!(warm.trials_executed(), 0);
//! # Ok::<(), rcb_sweep::SweepError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fingerprint;
mod progress;
mod queue;
mod scheduler;
mod service;
mod spec;
mod stats;

pub use cache::{CacheEntry, CacheLookup, ResultCache};
pub use fingerprint::{
    fingerprint, fingerprint_with_era, Fingerprint, ParseFingerprintError, ENGINE_ERA, SEED_LINEAGE,
};
pub use progress::SweepProgress;
pub use queue::ShardQueue;
pub use service::{CellResult, SweepConfig, SweepError, SweepReport, SweepService, SweepSpec};
pub use spec::{ProtocolSpec, ScenarioSpec};
pub use stats::{CellStats, Metric, StopRule, TrialMetrics, METRIC_COUNT};
