//! `sweepd` — the resident sweep service on the command line.
//!
//! Runs an E12-style spectrum grid (hopping broadcast, channel counts ×
//! adversaries) through [`SweepService`], printing per-cell statistics
//! and the cache/early-stop savings. Submitting the same grid twice
//! against a warm cache must execute zero trials — `--smoke` asserts
//! exactly that and exits nonzero otherwise, which is what the CI slow
//! lane runs.
//!
//! ```text
//! cargo run --release -p rcb-sweep --bin sweepd -- --smoke
//! cargo run --release -p rcb-sweep --bin sweepd -- --n 64 --budget 3000
//! cargo run --release -p rcb-sweep --bin sweepd -- --cache-dir /tmp/rcb-sweep
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use rcb_sim::{HoppingSpec, StrategySpec};
use rcb_sweep::{
    Metric, ResultCache, ScenarioSpec, StopRule, SweepConfig, SweepService, SweepSpec,
};
use rcb_telemetry::{MetricId, RecordingCollector};

/// Parsed command line.
struct Options {
    smoke: bool,
    cache_dir: Option<String>,
    workers: Option<usize>,
    shard: u32,
    n: u64,
    horizon: u64,
    budget: u64,
    half_width: f64,
}

impl Options {
    fn parse() -> Result<Self, String> {
        let mut opts = Self {
            smoke: false,
            cache_dir: None,
            workers: None,
            shard: 8,
            n: 32,
            horizon: 2_000,
            budget: 1_500,
            half_width: 250.0,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| -> Result<&str, String> {
                args.get(i + 1)
                    .map(String::as_str)
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--smoke" => opts.smoke = true,
                "--cache-dir" => {
                    opts.cache_dir = Some(value(i)?.to_string());
                    i += 1;
                }
                "--workers" => {
                    opts.workers = Some(value(i)?.parse().map_err(|e| format!("--workers: {e}"))?);
                    i += 1;
                }
                "--shard" => {
                    opts.shard = value(i)?.parse().map_err(|e| format!("--shard: {e}"))?;
                    i += 1;
                }
                "--n" => {
                    opts.n = value(i)?.parse().map_err(|e| format!("--n: {e}"))?;
                    i += 1;
                }
                "--horizon" => {
                    opts.horizon = value(i)?.parse().map_err(|e| format!("--horizon: {e}"))?;
                    i += 1;
                }
                "--budget" => {
                    opts.budget = value(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                    i += 1;
                }
                "--half-width" => {
                    opts.half_width = value(i)?
                        .parse()
                        .map_err(|e| format!("--half-width: {e}"))?;
                    i += 1;
                }
                "--help" | "-h" => {
                    println!(
                        "sweepd: run a spectrum sweep through the resident sweep service\n\n\
                         options:\n  \
                         --smoke            small grid, resubmit, assert zero warm trials\n  \
                         --cache-dir DIR    persist the result cache (default: in-memory)\n  \
                         --workers N        worker threads (default: RCB_THREADS or all cores)\n  \
                         --shard N          trials per shard (default 8)\n  \
                         --n N              receiver count of the grid (default 32)\n  \
                         --horizon SLOTS    hopping horizon (default 2000)\n  \
                         --budget T         Carol budget of the jammed cells (default 1500)\n  \
                         --half-width W     CI half-width target on node-total-cost (default 250)"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown option {other} (try --help)")),
            }
            i += 1;
        }
        Ok(opts)
    }
}

/// The E12-style grid: channel counts × adversary strategies, everything
/// else pinned.
fn grid(opts: &Options) -> Vec<ScenarioSpec> {
    let adversaries = [
        ("split-uniform", StrategySpec::SplitUniform),
        ("channel-lagged", StrategySpec::ChannelLagged),
        ("sweep", StrategySpec::ChannelSweep { dwell: 16 }),
    ];
    let mut cells = Vec::new();
    for channels in [1u16, 2, 4] {
        for (_, adversary) in &adversaries {
            cells.push(
                ScenarioSpec::hopping(HoppingSpec::new(opts.n, opts.horizon))
                    .channels(channels)
                    .adversary(*adversary)
                    .carol_budget(opts.budget)
                    .seed(12),
            );
        }
    }
    cells
}

fn run() -> Result<(), String> {
    let opts = Options::parse()?;
    let (n, horizon, budget, hw) = if opts.smoke {
        (16, 800, 600, opts.half_width)
    } else {
        (opts.n, opts.horizon, opts.budget, opts.half_width)
    };
    let opts = Options {
        n,
        horizon,
        budget,
        ..opts
    };

    let cache = match &opts.cache_dir {
        Some(dir) => ResultCache::at_dir(dir).map_err(|e| format!("cache dir: {e}"))?,
        None => ResultCache::in_memory(),
    };
    let config = SweepConfig {
        workers: opts.workers,
        shard_size: opts.shard,
    };
    let collector = Arc::new(RecordingCollector::new());
    let service = SweepService::new(config, cache).with_collector(collector.clone());

    let rule = StopRule::new(Metric::NodeTotalCost, hw).trials(8, 8, 96);
    let spec = SweepSpec::new(grid(&opts), rule);
    println!(
        "sweep: {} cells, stop at half-width ≤ {hw} on {} (z={}), max {} trials/cell",
        spec.cells.len(),
        rule.metric.name(),
        rule.z,
        rule.max_trials
    );

    let cold = service.submit(&spec).map_err(|e| e.to_string())?;
    println!("\ncold: {}", cold.progress);
    println!(
        "{:<46} {:>7} {:>12} {:>10} {:>6}",
        "cell", "trials", "mean(cost)", "±hw", "cache"
    );
    for cell in &cold.cells {
        println!(
            "{:<46} {:>7} {:>12.1} {:>10.1} {:>6}",
            cell.spec.label(),
            cell.trials,
            cell.stats.mean(rule.metric),
            cell.half_width(&rule),
            if cell.from_cache { "hit" } else { "miss" }
        );
    }

    let warm = service.submit(&spec).map_err(|e| e.to_string())?;
    println!("\nwarm: {}", warm.progress);

    if opts.smoke {
        if warm.trials_executed() != 0 {
            return Err(format!(
                "smoke failed: warm resubmission executed {} trials, expected 0",
                warm.trials_executed()
            ));
        }
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            if a.stats != b.stats {
                return Err(format!(
                    "smoke failed: warm statistics differ for {}",
                    a.spec.label()
                ));
            }
        }
        println!("smoke ok: warm resubmission executed 0 trials, statistics identical");
    }

    // Service-level telemetry over both submissions (see rcb-telemetry
    // for the full registry; this prints the cache-economy slice).
    println!(
        "\ntelemetry: {} cells seen, {} cache hits, {} misses, {} invalidated, {} deduped",
        collector.counter(MetricId::SweepCells),
        collector.counter(MetricId::SweepCacheHits),
        collector.counter(MetricId::SweepCacheMisses),
        collector.counter(MetricId::SweepCacheInvalidations),
        collector.counter(MetricId::SweepDedupHits),
    );
    println!(
        "telemetry: {} trials in {} shards ({} stolen), {} checkpoints, {} early stops",
        collector.counter(MetricId::SweepTrials),
        collector.counter(MetricId::SweepShards),
        collector.counter(MetricId::SweepSteals),
        collector.counter(MetricId::SweepCheckpoints),
        collector.counter(MetricId::SweepEarlyStops),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(why) => {
            eprintln!("sweepd: {why}");
            ExitCode::FAILURE
        }
    }
}
