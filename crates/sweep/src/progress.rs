//! Observability: a snapshot of where a sweep stands.

use std::fmt;

/// A point-in-time snapshot of a sweep submission.
///
/// The scheduler updates one of these as shards aggregate and cells
/// finish; [`SweepService::submit_streaming`](crate::SweepService::submit_streaming)
/// hands a copy to its callback after every state change, and the final
/// snapshot rides along in the [`SweepReport`](crate::SweepReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepProgress {
    /// Cells in the submitted spec.
    pub cells_total: u64,
    /// Cells finished (cached + executed).
    pub cells_done: u64,
    /// Cells served from the result cache without executing a trial.
    pub cells_from_cache: u64,
    /// Trials executed and aggregated so far.
    pub trials_executed: u64,
    /// Trials the early-stop rule avoided: `max_trials − executed`,
    /// summed over finished executed cells.
    pub trials_saved_by_stopping: u64,
    /// Trials the cache avoided: `max_trials` per cache-served cell.
    pub trials_saved_by_cache: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed (the cells that then executed).
    pub cache_misses: u64,
    /// Cells deduplicated against an identical earlier cell of the
    /// *same* submission. These never reach the cache, so they are
    /// neither hits nor misses.
    pub dedup_hits: u64,
}

impl SweepProgress {
    /// Cells still executing or queued.
    #[must_use]
    pub fn cells_running(&self) -> u64 {
        self.cells_total - self.cells_done
    }

    /// Fraction of cache lookups that hit (0 when none were made).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total trials avoided, by either mechanism.
    #[must_use]
    pub fn trials_saved(&self) -> u64 {
        self.trials_saved_by_stopping + self.trials_saved_by_cache
    }
}

impl fmt::Display for SweepProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells {}/{} done ({} cached), trials: {} run, {} saved ({} stopping + {} cache), \
             cache hit rate {:.0}%, {} deduped",
            self.cells_done,
            self.cells_total,
            self.cells_from_cache,
            self.trials_executed,
            self.trials_saved(),
            self.trials_saved_by_stopping,
            self.trials_saved_by_cache,
            self.cache_hit_rate() * 100.0,
            self.dedup_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_measures() {
        let progress = SweepProgress {
            cells_total: 10,
            cells_done: 7,
            cells_from_cache: 3,
            trials_executed: 40,
            trials_saved_by_stopping: 24,
            trials_saved_by_cache: 48,
            cache_hits: 3,
            cache_misses: 7,
            dedup_hits: 2,
        };
        assert_eq!(progress.cells_running(), 3);
        assert_eq!(progress.trials_saved(), 72);
        assert!((progress.cache_hit_rate() - 0.3).abs() < 1e-12);
        let line = progress.to_string();
        assert!(line.contains("7/10"));
        assert!(line.contains("30%"));
        assert!(line.contains("2 deduped"));
        assert_eq!(SweepProgress::default().cache_hit_rate(), 0.0);
    }
}
