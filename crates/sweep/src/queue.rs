//! Work-stealing shard queue for the sweep worker pool.
//!
//! Each worker owns a deque; the scheduler injects shards round-robin
//! across them. A worker pops LIFO from its own deque (fresh shards are
//! cache-warm: same cell, same scratch shape) and, when empty, steals
//! FIFO from the other deques — so a worker that finishes its share
//! drains the stragglers' backlogs instead of idling while one cell's
//! wave finishes. Blocking `pop` parks on a condvar until a shard
//! arrives or the queue closes.
//!
//! Shards are coarse (whole trial batches, milliseconds each), so a
//! single mutex over the deque set is plenty; the stealing structure is
//! about *load balance*, not lock-free throughput. Determinism does not
//! depend on who executes a shard — results are re-ordered by trial
//! index downstream — so stealing is free to be greedy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    /// One deque per worker, indexed by worker id.
    queues: Vec<VecDeque<T>>,
    /// Round-robin injection cursor.
    next: usize,
    closed: bool,
}

/// A closeable multi-queue with per-worker deques and work stealing.
pub struct ShardQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    /// Pops served from a victim's deque rather than the worker's own —
    /// the load-imbalance signal telemetry reports.
    steals: AtomicU64,
}

impl<T> ShardQueue<T> {
    /// Creates a queue for `workers` consumers (at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
                next: 0,
                closed: false,
            }),
            available: Condvar::new(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of pops that had to steal from another worker's deque.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Number of worker slots.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner
            .lock()
            .expect("queue mutex poisoned")
            .queues
            .len()
    }

    /// Injects one shard (round-robin across worker deques). Pushing to
    /// a closed queue is a no-op — by then every consumer has exited.
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return;
        }
        let slot = inner.next;
        inner.next = (slot + 1) % inner.queues.len();
        inner.queues[slot].push_back(item);
        drop(inner);
        self.available.notify_one();
    }

    /// Pops the next shard for `worker`: LIFO from its own deque, else
    /// FIFO-steal from the first non-empty victim (scanned round-robin
    /// from `worker + 1`), else block until work arrives. Returns `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            let own = worker % inner.queues.len();
            if let Some(item) = inner.queues[own].pop_back() {
                return Some(item);
            }
            let victims = inner.queues.len();
            for offset in 1..victims {
                let victim = (own + offset) % victims;
                if let Some(item) = inner.queues[victim].pop_front() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Closes the queue: blocked and future `pop`s return `None` once
    /// the remaining shards drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_item_is_consumed_exactly_once() {
        let queue = ShardQueue::new(4);
        for i in 0..100u32 {
            queue.push(i);
        }
        queue.close();
        let consumed = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let queue = &queue;
                let consumed = &consumed;
                scope.spawn(move || {
                    while let Some(item) = queue.pop(worker) {
                        consumed.lock().unwrap().push(item);
                    }
                });
            }
        });
        let mut items = consumed.into_inner().unwrap();
        items.sort_unstable();
        assert_eq!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn a_lone_worker_steals_the_other_deques() {
        // Round-robin injection spreads 10 items over 2 deques; a single
        // consumer with worker id 0 must still drain all 10 (5 of them
        // stolen from worker 1's deque).
        let queue = ShardQueue::new(2);
        for i in 0..10u32 {
            queue.push(i);
        }
        queue.close();
        let mut got = Vec::new();
        while let Some(item) = queue.pop(0) {
            got.push(item);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(queue.steals(), 5, "half the items came from the victim");
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let queue = ShardQueue::new(2);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..2 {
                let queue = &queue;
                let seen = &seen;
                scope.spawn(move || {
                    while queue.pop(worker).is_some() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Producers push after consumers are (likely) parked.
            for i in 0..8u32 {
                queue.push(i);
            }
            queue.close();
        });
        assert_eq!(seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn push_after_close_is_dropped() {
        let queue = ShardQueue::new(1);
        queue.close();
        queue.push(1u32);
        assert_eq!(queue.pop(0), None);
    }
}
