//! Canonical content-addressed fingerprints over [`ScenarioSpec`].
//!
//! A fingerprint is the cache key for a cell's completed statistics: two
//! specs share one iff they describe the same outcome distribution under
//! the current engines. The encoding is a fixed-order, field-tagged byte
//! stream (never a `Debug` render — formatting is not canonical), hashed
//! twice under independent keys into 128 bits. Three properties are
//! load-bearing and pinned by tests:
//!
//! * **field order is frozen** — the encoder writes fields in one
//!   documented order, and known specs hash to pinned hex digests, so a
//!   refactor that silently reorders or drops a field breaks a test, not
//!   the cache;
//! * **defaults are canonical** — an omitted fast-engine phase length
//!   encodes as the engine default ([`ScenarioSpec::canonical_phase_len`]),
//!   and the default single-channel spectrum encodes identically to an
//!   explicit `channels(1)`, so equal cells cannot key differently;
//! * **the engine era tag is inside the hash** — [`ENGINE_ERA`] names the
//!   current fingerprint era of the simulation engines; bumping it (e.g.
//!   the ROADMAP's SoA slot engine, or a vendor-rand swap) invalidates
//!   every cached cell at once instead of serving stale statistics.

use std::fmt;
use std::str::FromStr;

use rcb_auth::keyed_digest;
use rcb_core::{SizeKnowledge, Variant};
use rcb_sim::Engine;

use crate::spec::{ProtocolSpec, ScenarioSpec};
use rcb_adversary::StrategySpec;

/// The engine-version tag hashed into every fingerprint.
///
/// Bump this whenever a change reshapes any engine's seeded outcome
/// streams (new RNG, re-ordered draws, SoA rewrite …) — cached cell
/// statistics from earlier eras then miss instead of lying.
pub const ENGINE_ERA: &str = "era2:exact-soa-pr7/fast-pr7/fastmc-pr7";

/// The previous era tag, kept for the invalidation regression tests: the
/// PR-7 era bump covers both the exact-engine rewrite (SoA rosters,
/// counter RNG, sleep-skipping — new RNG streams for every slot-level
/// protocol) and the vendored-rand `gen_range` width change, which
/// shifted the fast engines' streams too.
#[cfg(test)]
pub(crate) const PREVIOUS_ENGINE_ERA: &str = "era1:exact-pr5/fast-pr1/fastmc-pr4";

/// The seed-lineage tag: how per-trial seeds derive from a cell's master
/// seed. Hashed into the fingerprint so a change to the derivation tree
/// (labels or structure) is a cache-invalidating event by construction.
pub const SEED_LINEAGE: &str = "seedtree-v1/trial";

/// A 128-bit content fingerprint; renders as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// The two 64-bit halves.
    #[must_use]
    pub fn as_parts(self) -> (u64, u64) {
        (self.hi, self.lo)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Error parsing a [`Fingerprint`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFingerprintError;

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a fingerprint is exactly 32 lowercase hex digits")
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseFingerprintError);
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|_| ParseFingerprintError)?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|_| ParseFingerprintError)?;
        Ok(Self { hi, lo })
    }
}

/// Field tags of the canonical encoding. Every field is written as
/// `tag byte || payload bytes`; the tag values and write order are frozen
/// (append new tags, never renumber).
#[repr(u8)]
enum Tag {
    Era = 0x01,
    SeedLineage = 0x02,
    Protocol = 0x10,
    Engine = 0x11,
    Adversary = 0x12,
    CarolBudget = 0x13,
    Channels = 0x14,
    PhaseLen = 0x15,
    Seed = 0x16,
}

/// Fixed-order byte encoder for the canonical stream.
#[derive(Default)]
struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    fn tag(&mut self, tag: Tag) {
        self.bytes.push(tag as u8);
    }

    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats encode as their IEEE-754 bit pattern: `0.5` and `0.50` are
    /// one value, but `0.1 + 0.2` and `0.3` are (correctly) not.
    fn f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

fn encode_protocol(enc: &mut Encoder, protocol: &ProtocolSpec) {
    match protocol {
        ProtocolSpec::Broadcast(params) => {
            enc.u8(0);
            enc.u64(params.n());
            enc.u32(params.k());
            enc.f64(params.epsilon_prime());
            enc.f64(params.c());
            enc.u8(match params.variant() {
                Variant::K2Paper => 0,
                Variant::GeneralK => 1,
            });
            enc.u32(params.start_round());
            enc.u32(params.min_termination_round());
            enc.u32(params.max_round());
            match params.decoys() {
                None => enc.u8(0),
                Some(decoys) => {
                    enc.u8(1);
                    enc.f64(decoys.rate);
                    enc.f64(decoys.listen_boost);
                }
            }
            match params.size_knowledge() {
                SizeKnowledge::Exact => enc.u8(0),
                SizeKnowledge::Approximate { n_hat } => {
                    enc.u8(1);
                    enc.u64(n_hat);
                }
                SizeKnowledge::PolynomialOverestimate { nu } => {
                    enc.u8(2);
                    enc.u64(nu);
                }
            }
            // The budget scale has no getter; the derived budgets pin it.
            enc.u64(params.node_budget());
            enc.u64(params.alice_budget());
        }
        ProtocolSpec::Naive(spec) => {
            enc.u8(1);
            enc.u64(spec.n);
            enc.u64(spec.horizon);
        }
        ProtocolSpec::Epidemic(spec) => {
            enc.u8(2);
            enc.u64(spec.n);
            enc.u64(spec.horizon);
            enc.f64(spec.listen_p);
            enc.f64(spec.relay_rate);
        }
        ProtocolSpec::Ksy(spec) => {
            enc.u8(3);
            enc.u32(spec.max_epochs);
        }
        ProtocolSpec::Hopping(spec) => {
            enc.u8(4);
            enc.u64(spec.n);
            enc.u64(spec.horizon);
            enc.f64(spec.listen_p);
            enc.f64(spec.relay_rate);
        }
        ProtocolSpec::EpochHopping(spec) => {
            enc.u8(5);
            enc.u64(spec.n);
            enc.u64(spec.horizon);
            enc.f64(spec.listen_p);
            enc.f64(spec.relay_rate);
            enc.u64(spec.epoch_len);
        }
        ProtocolSpec::Kpsy(spec) => {
            enc.u8(6);
            enc.u64(spec.n);
            enc.u64(spec.horizon);
        }
    }
}

fn encode_adversary(enc: &mut Encoder, adversary: &StrategySpec) {
    match *adversary {
        StrategySpec::Silent => enc.u8(0),
        StrategySpec::Continuous => enc.u8(1),
        StrategySpec::Random(p) => {
            enc.u8(2);
            enc.f64(p);
        }
        StrategySpec::Bursty { burst, gap } => {
            enc.u8(3);
            enc.u64(burst);
            enc.u64(gap);
        }
        StrategySpec::BlockDissemination(b) => {
            enc.u8(4);
            enc.f64(b);
        }
        StrategySpec::BlockRequest(b) => {
            enc.u8(5);
            enc.f64(b);
        }
        StrategySpec::BlockAll(b) => {
            enc.u8(6);
            enc.f64(b);
        }
        StrategySpec::Extract(x) => {
            enc.u8(7);
            enc.u32(x);
        }
        StrategySpec::Spoof(r) => {
            enc.u8(8);
            enc.f64(r);
        }
        StrategySpec::Reactive => enc.u8(9),
        StrategySpec::LaggedReactive => enc.u8(10),
        StrategySpec::SplitUniform => enc.u8(11),
        StrategySpec::ChannelSweep { dwell } => {
            enc.u8(12);
            enc.u64(dwell);
        }
        StrategySpec::ChannelLagged => enc.u8(13),
        StrategySpec::Adaptive { window, reactivity } => {
            enc.u8(14);
            enc.u32(window);
            enc.f64(reactivity);
        }
    }
}

/// Canonical byte encoding of a spec under an explicit era tag.
fn canonical_bytes(spec: &ScenarioSpec, era: &str) -> Vec<u8> {
    let mut enc = Encoder::default();
    enc.tag(Tag::Era);
    enc.str(era);
    enc.tag(Tag::SeedLineage);
    enc.str(SEED_LINEAGE);
    enc.tag(Tag::Protocol);
    encode_protocol(&mut enc, &spec.protocol);
    enc.tag(Tag::Engine);
    enc.u8(match spec.engine {
        Engine::Exact => 0,
        Engine::Fast => 1,
        // Appended discriminant (never renumber): existing Exact/Fast
        // keys are byte-identical across the fluid-tier addition.
        Engine::Fluid => 2,
    });
    enc.tag(Tag::Adversary);
    encode_adversary(&mut enc, &spec.adversary);
    enc.tag(Tag::CarolBudget);
    enc.opt_u64(spec.carol_budget);
    enc.tag(Tag::Channels);
    enc.u16(spec.channels);
    enc.tag(Tag::PhaseLen);
    enc.u64(spec.canonical_phase_len());
    enc.tag(Tag::Seed);
    enc.u64(spec.seed);
    enc.bytes
}

/// Independent digest keys for the two fingerprint halves.
const KEY_HI: u64 = 0x5243_4253_5745_4550; // "RCBSWEEP"
const KEY_LO: u64 = 0x4649_4e47_4552_5052; // "FINGERPR"

/// Fingerprint of a spec under an explicit era tag (test hook; the cache
/// always keys under [`ENGINE_ERA`] via [`fingerprint`]).
#[must_use]
pub fn fingerprint_with_era(spec: &ScenarioSpec, era: &str) -> Fingerprint {
    let bytes = canonical_bytes(spec, era);
    Fingerprint {
        hi: keyed_digest(KEY_HI, &bytes),
        lo: keyed_digest(KEY_LO, &bytes),
    }
}

/// The content-addressed cache key of a cell under the current
/// [`ENGINE_ERA`].
#[must_use]
pub fn fingerprint(spec: &ScenarioSpec) -> Fingerprint {
    fingerprint_with_era(spec, ENGINE_ERA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::Params;
    use rcb_sim::{EpochHoppingSpec, HoppingSpec, KpsySpec, KsySpec, NaiveSpec};

    fn hopping_cell() -> ScenarioSpec {
        ScenarioSpec::hopping(HoppingSpec::new(64, 4_000))
            .channels(4)
            .adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.5,
            })
            .carol_budget(2_000)
            .seed(7)
    }

    #[test]
    fn fingerprints_are_deterministic_and_spec_sensitive() {
        let base = fingerprint(&hopping_cell());
        assert_eq!(base, fingerprint(&hopping_cell()));
        // Every load-bearing field moves the key.
        assert_ne!(base, fingerprint(&hopping_cell().seed(8)));
        assert_ne!(base, fingerprint(&hopping_cell().channels(8)));
        assert_ne!(base, fingerprint(&hopping_cell().carol_budget(2_001)));
        assert_ne!(
            base,
            fingerprint(&hopping_cell().adversary(StrategySpec::Adaptive {
                window: 8,
                reactivity: 0.25,
            }))
        );
        assert_ne!(
            base,
            fingerprint(
                &ScenarioSpec::hopping(HoppingSpec::new(65, 4_000))
                    .channels(4)
                    .adversary(StrategySpec::Adaptive {
                        window: 8,
                        reactivity: 0.5,
                    })
                    .carol_budget(2_000)
                    .seed(7)
            )
        );
    }

    #[test]
    fn key_stability_is_pinned() {
        // Frozen digests: if any of these change, the canonical encoding
        // changed (field order, a default, a tag value, the era string)
        // and every on-disk cache silently mismatches. Bump ENGINE_ERA
        // and re-pin deliberately instead of letting keys drift.
        let pins: &[(ScenarioSpec, &str)] = &[
            (hopping_cell(), "8f370ba7d94b7696d85bf042b0d7a926"),
            (
                ScenarioSpec::broadcast(Params::builder(64).build().unwrap())
                    .adversary(StrategySpec::Continuous)
                    .carol_budget(2_000)
                    .seed(42),
                "0e014f90ec01c6eebe13df3bba83ffc6",
            ),
            (
                ScenarioSpec::naive(NaiveSpec { n: 8, horizon: 500 }).seed(1),
                "410ee2cf72195588fb392a2502835cfe",
            ),
            (
                ScenarioSpec::ksy(KsySpec::default())
                    .adversary(StrategySpec::Continuous)
                    .carol_budget(5_000)
                    .seed(11),
                "be74e98c96368378c9315da8ab740b9a",
            ),
            // PR-8 additions: the new protocol discriminants (5 and 6)
            // are appended, so every pre-existing pin above is untouched
            // — the proof that this PR needed no ENGINE_ERA bump.
            (
                ScenarioSpec::epoch_hopping(EpochHoppingSpec::new(64, 4_000, 32))
                    .channels(4)
                    .adversary(StrategySpec::ChannelSweep { dwell: 32 })
                    .carol_budget(2_000)
                    .seed(7),
                "2f0b999ba426bd4b8bfd0a86e9589760",
            ),
            (
                ScenarioSpec::kpsy(KpsySpec {
                    n: 8,
                    horizon: 2_000,
                })
                .adversary(StrategySpec::Continuous)
                .carol_budget(500)
                .seed(11),
                "5766c7c3b3b68131f496da3dc62cf15a",
            ),
            // PR-10 addition: the fluid engine discriminant (2) is
            // appended to the engine tag, so every pre-existing pin
            // above is untouched — no ENGINE_ERA bump needed.
            (
                ScenarioSpec::hopping(HoppingSpec::new(1 << 20, 8_000))
                    .engine(Engine::Fluid)
                    .channels(4)
                    .adversary(StrategySpec::Random(0.3))
                    .carol_budget(2_000)
                    .seed(7),
                "67ef9e7a9e8e0dfe3c61d80fc26ef9f2",
            ),
        ];
        for (spec, expect) in pins {
            assert_eq!(
                fingerprint(spec).to_string(),
                *expect,
                "canonical fingerprint drifted for {}",
                spec.label()
            );
        }
    }

    #[test]
    fn default_phase_len_is_canonical() {
        use rcb_sim::{Engine, DEFAULT_MC_PHASE_LEN};
        let implicit = hopping_cell().engine(Engine::Fast);
        let explicit = hopping_cell()
            .engine(Engine::Fast)
            .phase_len(DEFAULT_MC_PHASE_LEN);
        assert_eq!(fingerprint(&implicit), fingerprint(&explicit));
        let other = hopping_cell()
            .engine(Engine::Fast)
            .phase_len(DEFAULT_MC_PHASE_LEN * 2);
        assert_ne!(fingerprint(&implicit), fingerprint(&other));
        // On the exact engine there is no phase structure to key on.
        assert_eq!(fingerprint(&hopping_cell()), fingerprint(&hopping_cell()),);
    }

    #[test]
    fn single_channel_spectrum_repr_is_canonical() {
        // A spec that never touched channels and one that set channels(1)
        // describe the same single-channel model and must share a key.
        let implicit = ScenarioSpec::naive(NaiveSpec { n: 8, horizon: 100 }).seed(2);
        let explicit = ScenarioSpec::naive(NaiveSpec { n: 8, horizon: 100 })
            .channels(1)
            .seed(2);
        assert_eq!(fingerprint(&implicit), fingerprint(&explicit));
    }

    #[test]
    fn unlimited_budget_is_not_zero_budget() {
        let unlimited = ScenarioSpec::hopping(HoppingSpec::new(8, 100)).seed(1);
        let zero = ScenarioSpec::hopping(HoppingSpec::new(8, 100))
            .carol_budget(0)
            .seed(1);
        assert_ne!(fingerprint(&unlimited), fingerprint(&zero));
    }

    #[test]
    fn era_bump_invalidates_every_key() {
        let spec = hopping_cell();
        assert_ne!(
            fingerprint_with_era(&spec, ENGINE_ERA),
            fingerprint_with_era(&spec, "era3:hypothetical")
        );
        // The PR-7 era-2 bump moved every key: an era-1 store addresses a
        // file the era-2 cache never reads.
        assert_ne!(
            fingerprint(&spec),
            fingerprint_with_era(&spec, PREVIOUS_ENGINE_ERA)
        );
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let fp = fingerprint(&hopping_cell());
        let parsed: Fingerprint = fp.to_string().parse().unwrap();
        assert_eq!(fp, parsed);
        assert!("not-a-fingerprint".parse::<Fingerprint>().is_err());
        assert!("0123".parse::<Fingerprint>().is_err());
    }
}
