//! The adversary interface: adaptive by default, optionally reactive.
//!
//! Carol is a single logical adversary controlling her own device and all
//! Byzantine devices; the engine talks to her through this trait. Her
//! information model follows §1.1:
//!
//! * **adaptive** — [`Adversary::observe`] hands her complete information
//!   about every past slot: who sent what on which channel, who listened
//!   where, what the channel resolution was. She never sees the *current*
//!   slot's actions before committing… unless she is
//! * **reactive** — then [`Adversary::react`] is additionally called after
//!   the correct devices' actions are fixed, with the RSSI bit (is anyone
//!   transmitting right now, on any channel?) but **not** message
//!   content. This is the CCA/RSSI capability of §4.1: "while RSSI
//!   enables Carol to detect channel activity, it provides no information
//!   about the transmitted content."
//!
//! In a multi-channel [`Spectrum`](crate::Spectrum), her per-slot
//! [`AdversaryMove`] carries a [`JamPlan`] (one directive per targeted
//! channel, each costing one unit when it executes) and channel-tagged
//! Byzantine [`Transmission`]s — splitting her budget across channels is
//! now her problem, which is the point of the multi-channel model.

use crate::channel::JamPlan;
use crate::message::{Payload, PayloadKind};
use crate::participant::ParticipantId;
use crate::slot::Slot;
use crate::spectrum::{ChannelId, Spectrum};

/// One Byzantine frame: a payload aimed at a channel.
///
/// `From<Payload>` targets [`ChannelId::ZERO`], keeping single-channel
/// adversary code one `.into()` away from its original shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmission {
    /// The channel the frame airs on.
    pub channel: ChannelId,
    /// The frame itself.
    pub payload: Payload,
}

impl Transmission {
    /// A frame on an explicit channel.
    #[must_use]
    pub fn on(channel: ChannelId, payload: Payload) -> Self {
        Self { channel, payload }
    }
}

impl From<Payload> for Transmission {
    fn from(payload: Payload) -> Self {
        Self {
            channel: ChannelId::ZERO,
            payload,
        }
    }
}

/// What Carol decides to do in one slot.
#[derive(Debug, Clone, Default)]
pub struct AdversaryMove {
    /// Jamming decision across the spectrum. Every active channel entry
    /// costs one unit when it executes; if the pool goes broke mid-plan,
    /// the remaining channels' jams fizzle (ascending channel order).
    pub jam: JamPlan,
    /// Frames transmitted by Byzantine devices this slot (spoofed nacks,
    /// garbage, replayed `m`, …), each aimed at a channel. Each costs one
    /// unit; frames beyond the remaining budget are dropped.
    pub sends: Vec<Transmission>,
}

impl AdversaryMove {
    /// A move that does nothing.
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// A move that jams every listener on channel 0 — the single-channel
    /// "jam everything" of the source paper.
    #[must_use]
    pub fn jam_all() -> Self {
        Self {
            jam: crate::channel::JamDirective::All.into(),
            sends: Vec::new(),
        }
    }

    /// A move that jams every listener on every channel of `spectrum`
    /// (costs one unit per channel — the budget-splitting blanket).
    #[must_use]
    pub fn jam_spectrum(spectrum: Spectrum) -> Self {
        Self {
            jam: JamPlan::all_channels(spectrum),
            sends: Vec::new(),
        }
    }
}

/// What Carol learns about a slot after it resolves (full information).
///
/// This is the feedback loop the adaptive multi-channel adversary of
/// Chen & Zheng 2020 assumes: after every slot — at any channel count —
/// Carol legally consumes the complete prior-slot outcome, including
/// which channels carried traffic, where her jam landed, and which
/// listeners a clean frame actually reached. She still never sees the
/// *current* slot before committing (that is the separate reactive
/// capability, [`Adversary::react`]).
#[derive(Debug, Clone, Copy)]
pub struct SlotObservation<'a> {
    /// Which correct participants transmitted, on which channel, and what
    /// kind of frame.
    pub correct_sends: &'a [(ParticipantId, ChannelId, PayloadKind)],
    /// Which correct participants listened, and on which channel.
    pub listeners: &'a [(ParticipantId, ChannelId)],
    /// Whether any part of her jam plan actually took effect (budget
    /// permitting).
    pub jam_executed: bool,
    /// The channels on which her jam executed (ascending, empty when
    /// nothing executed).
    pub jammed_channels: &'a [ChannelId],
    /// Which listeners received a clean frame, and on which channel —
    /// the per-channel jam *outcome*: a delivery on a channel she jammed
    /// is impossible, so every entry marks a rendezvous she failed to
    /// block.
    pub delivered: &'a [(ParticipantId, ChannelId)],
}

impl SlotObservation<'_> {
    /// Number of correct transmissions that aired on `channel`.
    #[must_use]
    pub fn correct_sends_on(&self, channel: ChannelId) -> usize {
        self.correct_sends
            .iter()
            .filter(|&&(_, c, _)| c == channel)
            .count()
    }

    /// Number of clean frame receptions on `channel`.
    #[must_use]
    pub fn delivered_on(&self, channel: ChannelId) -> usize {
        self.delivered
            .iter()
            .filter(|&&(_, c)| c == channel)
            .count()
    }
}

/// Budget context handed to the adversary when planning.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryCtx {
    /// Units remaining in Carol's pool (`None` = unlimited).
    pub budget_remaining: Option<u64>,
    /// Units spent so far.
    pub spent: u64,
}

impl AdversaryCtx {
    /// Whether at least `units` more can be spent.
    #[must_use]
    pub fn can_afford(&self, units: u64) -> bool {
        match self.budget_remaining {
            None => true,
            Some(rem) => rem >= units,
        }
    }
}

/// Carol's strategy interface.
///
/// Implementations live in `rcb-adversary`; the engine only needs these
/// hooks. All methods have sensible defaults except [`plan`](Self::plan),
/// so a passive adversary is one line (see [`SilentAdversary`]).
pub trait Adversary {
    /// Decides this slot's move *before* seeing any current-slot activity.
    fn plan(&mut self, slot: Slot, ctx: &AdversaryCtx) -> AdversaryMove;

    /// Reactive override: called only when [`is_reactive`](Self::is_reactive)
    /// is true, after correct actions are committed. `activity` is the RSSI
    /// bit — “is at least one correct device transmitting right now, on
    /// any channel?”. Returns the final move (default: keep the planned
    /// one).
    fn react(&mut self, slot: Slot, activity: bool, planned: AdversaryMove) -> AdversaryMove {
        let _ = (slot, activity);
        planned
    }

    /// Whether this adversary gets the in-slot RSSI callback.
    fn is_reactive(&self) -> bool {
        false
    }

    /// Full-information feedback after the slot resolves (adaptive power).
    fn observe(&mut self, slot: Slot, observation: &SlotObservation<'_>) {
        let _ = (slot, observation);
    }

    /// Whether [`observe`](Self::observe) needs exact per-listener
    /// identity lists in every slot.
    ///
    /// The era-2 sleep-skipping engine settles provably-inert listens
    /// (slots where every listener would hear silence or undirected
    /// noise) in bulk, so its [`SlotObservation::listeners`] is empty in
    /// those slots even though nodes did pay for listens there —
    /// aggregate accounting stays exact, identities don't. An adversary
    /// whose strategy reads listener identities returns `true` here to
    /// force per-slot materialization (at era-1 cost). Sends, jams, and
    /// deliveries are always exact regardless.
    fn wants_listener_identities(&self) -> bool {
        false
    }
}

/// Per-channel rollup of a contiguous run of slots — the
/// phase-granularity aggregate of [`SlotObservation`].
///
/// Phase-level simulators (and any observer that wants whole-phase
/// summaries of an exact run) cannot hand the adversary one observation
/// per slot; they hand her one `PhaseObservation` per phase instead.
/// Every tally is a per-channel vector, index-aligned with the
/// [`Spectrum`]'s channels, and [`absorb_slot`](Self::absorb_slot) is the
/// exact rollup: feeding it every [`SlotObservation`] of a phase produces
/// the aggregate the phase-level engine synthesises directly.
///
/// # Example
///
/// ```
/// use rcb_radio::{ChannelId, ParticipantId, PayloadKind, PhaseObservation, SlotObservation, Spectrum};
///
/// let mut phase = PhaseObservation::empty(Spectrum::new(2));
/// let sends = [(ParticipantId::new(0), ChannelId::new(1), PayloadKind::Broadcast)];
/// phase.absorb_slot(&SlotObservation {
///     correct_sends: &sends,
///     listeners: &[],
///     jam_executed: false,
///     jammed_channels: &[],
///     delivered: &[],
/// });
/// assert_eq!(phase.slots, 1);
/// assert_eq!(phase.correct_sends, vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseObservation {
    /// Number of slots rolled into this observation (0 = "no phase has
    /// completed yet", the state before the first phase resolves).
    pub slots: u64,
    /// Frames sent by correct participants, per channel.
    pub correct_sends: Vec<u64>,
    /// Listen operations by correct participants, per channel.
    pub listens: Vec<u64>,
    /// Clean frame receptions, per channel — every one a rendezvous the
    /// jam failed to block.
    pub delivered: Vec<u64>,
    /// Slots in which the jam executed, per channel.
    pub jammed_slots: Vec<u64>,
}

impl PhaseObservation {
    /// An empty observation over `spectrum` (all tallies zero).
    #[must_use]
    pub fn empty(spectrum: Spectrum) -> Self {
        let c = spectrum.channel_count() as usize;
        Self {
            slots: 0,
            correct_sends: vec![0; c],
            listens: vec![0; c],
            delivered: vec![0; c],
            jammed_slots: vec![0; c],
        }
    }

    /// Number of channels the tallies cover.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.correct_sends.len()
    }

    /// Resets every tally to zero, keeping the allocations (per-phase
    /// reuse).
    pub fn clear(&mut self) {
        self.slots = 0;
        for tally in [
            &mut self.correct_sends,
            &mut self.listens,
            &mut self.delivered,
            &mut self.jammed_slots,
        ] {
            tally.iter_mut().for_each(|v| *v = 0);
        }
    }

    /// Rolls one slot's observation into the phase aggregate.
    ///
    /// Channels outside this observation's spectrum are ignored (a
    /// defensive no-op; the engine never produces them).
    pub fn absorb_slot(&mut self, observation: &SlotObservation<'_>) {
        let c = self.channel_count();
        self.slots += 1;
        for &(_, channel, _) in observation.correct_sends {
            if let Some(tally) = self.correct_sends.get_mut(channel.index() as usize) {
                *tally += 1;
            }
        }
        for &(_, channel) in observation.listeners {
            if let Some(tally) = self.listens.get_mut(channel.index() as usize) {
                *tally += 1;
            }
        }
        for &(_, channel) in observation.delivered {
            if let Some(tally) = self.delivered.get_mut(channel.index() as usize) {
                *tally += 1;
            }
        }
        for &channel in observation.jammed_channels {
            if (channel.index() as usize) < c {
                self.jammed_slots[channel.index() as usize] += 1;
            }
        }
    }

    /// Expected number of slots in which `channel` carried at least one
    /// correct transmission, under a Poisson model of the observed send
    /// count spread uniformly over the phase: `s · (1 − e^{−sends/s})`.
    ///
    /// This is the quantity a slot-level reactive jammer would have
    /// spent on the channel (one unit per active slot), which is how the
    /// phase-level lowerings of the lagged/adaptive jammers pace their
    /// budgets. Returns 0 for an empty observation.
    #[must_use]
    pub fn expected_active_slots(&self, channel: ChannelId) -> f64 {
        let i = channel.index() as usize;
        if self.slots == 0 || i >= self.channel_count() {
            return 0.0;
        }
        let s = self.slots as f64;
        let sends = self.correct_sends[i] as f64;
        s * (1.0 - (-sends / s).exp())
    }
}

/// An adversary that never acts. Useful as the no-attack baseline and in
/// tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentAdversary;

impl Adversary for SilentAdversary {
    fn plan(&mut self, _slot: Slot, _ctx: &AdversaryCtx) -> AdversaryMove {
        AdversaryMove::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_move_is_free() {
        let mv = AdversaryMove::idle();
        assert!(!mv.jam.is_active());
        assert!(mv.sends.is_empty());
    }

    #[test]
    fn jam_all_move_targets_channel_zero_only() {
        let mv = AdversaryMove::jam_all();
        assert!(mv.jam.is_active());
        assert_eq!(mv.jam.active_channel_count(), 1);
        assert!(mv.jam.jams(ChannelId::ZERO, ParticipantId::new(0)));
    }

    #[test]
    fn jam_spectrum_blankets_every_channel() {
        let mv = AdversaryMove::jam_spectrum(Spectrum::new(4));
        assert_eq!(mv.jam.active_channel_count(), 4);
    }

    #[test]
    fn transmission_defaults_to_channel_zero() {
        let tx: Transmission = Payload::Nack.into();
        assert_eq!(tx.channel, ChannelId::ZERO);
        let explicit = Transmission::on(ChannelId::new(3), Payload::Decoy);
        assert_eq!(explicit.channel.index(), 3);
    }

    #[test]
    fn ctx_affordability() {
        let unlimited = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        assert!(unlimited.can_afford(u64::MAX));
        let tight = AdversaryCtx {
            budget_remaining: Some(2),
            spent: 98,
        };
        assert!(tight.can_afford(2));
        assert!(!tight.can_afford(3));
    }

    #[test]
    fn silent_adversary_defaults() {
        let mut carol = SilentAdversary;
        assert!(!carol.is_reactive());
        let ctx = AdversaryCtx {
            budget_remaining: None,
            spent: 0,
        };
        let mv = carol.plan(Slot::ZERO, &ctx);
        assert!(!mv.jam.is_active());
        // Default react keeps the planned move.
        let kept = carol.react(Slot::ZERO, true, AdversaryMove::jam_all());
        assert!(kept.jam.is_active());
    }

    #[test]
    fn phase_observation_rolls_up_slots() {
        let mut phase = PhaseObservation::empty(Spectrum::new(3));
        assert_eq!(phase.slots, 0);
        assert_eq!(phase.channel_count(), 3);

        let sends = [
            (
                ParticipantId::new(0),
                ChannelId::new(1),
                crate::PayloadKind::Broadcast,
            ),
            (
                ParticipantId::new(1),
                ChannelId::new(1),
                crate::PayloadKind::Nack,
            ),
        ];
        let listeners = [(ParticipantId::new(2), ChannelId::new(0))];
        let delivered = [(ParticipantId::new(2), ChannelId::new(0))];
        phase.absorb_slot(&SlotObservation {
            correct_sends: &sends,
            listeners: &listeners,
            jam_executed: true,
            jammed_channels: &[ChannelId::new(2)],
            delivered: &delivered,
        });
        phase.absorb_slot(&SlotObservation {
            correct_sends: &[],
            listeners: &[],
            jam_executed: false,
            jammed_channels: &[],
            delivered: &[],
        });
        assert_eq!(phase.slots, 2);
        assert_eq!(phase.correct_sends, vec![0, 2, 0]);
        assert_eq!(phase.listens, vec![1, 0, 0]);
        assert_eq!(phase.delivered, vec![1, 0, 0]);
        assert_eq!(phase.jammed_slots, vec![0, 0, 1]);

        phase.clear();
        assert_eq!(phase, PhaseObservation::empty(Spectrum::new(3)));
    }

    #[test]
    fn expected_active_slots_poissonises_the_send_count() {
        let mut phase = PhaseObservation::empty(Spectrum::new(2));
        assert_eq!(phase.expected_active_slots(ChannelId::ZERO), 0.0);
        phase.slots = 100;
        phase.correct_sends = vec![100, 0];
        // 100 sends over 100 slots: ~63 active slots (1 − 1/e).
        let active = phase.expected_active_slots(ChannelId::ZERO);
        assert!((active - 100.0 * (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert_eq!(phase.expected_active_slots(ChannelId::new(1)), 0.0);
        // Out-of-spectrum channels report zero, not panic.
        assert_eq!(phase.expected_active_slots(ChannelId::new(9)), 0.0);
    }
}
