//! The exact per-node slot engine — ground truth for the whole workspace.
//!
//! Every participant's protocol state machine is driven slot-by-slot; the
//! spectrum is resolved per (listener, channel) — transmissions are
//! grouped by channel first, so each listener's resolution touches only
//! its own channel's bucket (n-uniform semantics within a channel, total
//! isolation across channels); every radio operation is charged against
//! the [`EnergyLedger`] with per-channel attribution. The faster
//! phase-level simulator in `rcb-core` is statistically cross-validated
//! against this engine on the single-channel model.

use rcb_rng::{SeedTree, SimRng};

use crate::adversary::{Adversary, AdversaryCtx, SlotObservation};
use crate::channel::{resolve_for_listener_on, ChannelLoad, JamPlan};
use crate::energy::{Budget, CostBreakdown, EnergyLedger, Op};
use crate::message::PayloadKind;
use crate::participant::{Action, NodeProtocol, ParticipantId, Reception};
use crate::slot::Slot;
use crate::spectrum::{ChannelId, Spectrum};
use crate::trace::{SlotRecord, Trace};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard stop after this many slots (protects against non-terminating
    /// protocols; the ε-BROADCAST cap is `O(n^{1+1/k})` so orchestration
    /// sets this comfortably above the final round).
    pub max_slots: u64,
    /// Retain at most this many slot records (0 disables tracing).
    pub trace_capacity: usize,
    /// Stop as soon as every participant reports
    /// [`has_terminated`](NodeProtocol::has_terminated).
    pub stop_when_all_terminated: bool,
    /// The channels available to this run (default: the single-channel
    /// model of the source paper).
    pub spectrum: Spectrum,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_slots: 10_000_000,
            trace_capacity: 0,
            stop_when_all_terminated: true,
            spectrum: Spectrum::single(),
        }
    }
}

/// Per-channel activity and spend tallies for one run.
///
/// Index-aligned with the spectrum's channels in
/// [`RunReport::channel_stats`]; the breakdown is what lets experiments
/// show how a jammer's budget was split across channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Frames sent by correct participants on this channel.
    pub correct_sends: u64,
    /// Listen operations by correct participants on this channel.
    pub correct_listens: u64,
    /// Byzantine frames Carol aired on this channel.
    pub byz_sends: u64,
    /// Slots in which Carol's jam executed on this channel.
    pub jammed_slots: u64,
    /// Clean frame receptions on this channel.
    pub delivered: u64,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every participant terminated its protocol.
    AllTerminated,
    /// The [`EngineConfig::max_slots`] cap was reached first.
    SlotCapReached,
}

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of slots simulated.
    pub slots_elapsed: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Per-participant spend (index-aligned with the roster).
    pub participant_costs: Vec<CostBreakdown>,
    /// Per-participant count of operations refused for lack of budget.
    pub participant_refusals: Vec<u64>,
    /// Carol's pooled spend.
    pub carol_cost: CostBreakdown,
    /// Per-participant informed flags at the end of the run.
    pub informed: Vec<bool>,
    /// Per-participant terminated flags at the end of the run.
    pub terminated: Vec<bool>,
    /// Slots in which Carol's jam executed (on at least one channel).
    pub jammed_slots: u64,
    /// Slots containing at least one transmission or an executed jam.
    pub noisy_slots: u64,
    /// Per-channel activity/spend tallies, index-aligned with the
    /// spectrum's channels (a single entry in the single-channel model).
    pub channel_stats: Vec<ChannelStats>,
    /// Optional slot trace (empty if tracing was disabled).
    pub trace: Trace,
}

impl RunReport {
    /// Number of participants that ended the run informed.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&b| b).count()
    }

    /// Number of participants that ended the run terminated.
    #[must_use]
    pub fn terminated_count(&self) -> usize {
        self.terminated.iter().filter(|&&b| b).count()
    }

    /// Whether every participant is either informed or (at least)
    /// terminated — the doc-example convenience.
    #[must_use]
    pub fn all_terminated_or_informed(&self) -> bool {
        self.informed
            .iter()
            .zip(&self.terminated)
            .all(|(&i, &t)| i || t)
    }

    /// The maximum total spend across participants (load-balance metric).
    #[must_use]
    pub fn max_participant_cost(&self) -> u64 {
        self.participant_costs
            .iter()
            .map(CostBreakdown::total)
            .max()
            .unwrap_or(0)
    }
}

/// Reusable cross-run scratch for the exact engine's hot path.
///
/// One run of the slot loop needs a handful of working buffers: the
/// per-participant RNG streams, the energy ledger, the per-channel
/// transmission buckets, the per-slot send/listen/delivery lists, and
/// the active-participant index set. A fresh `EngineScratch` starts
/// empty; every [`ExactEngine::run_with_roster_typed_in`] call re-shapes
/// it in place, so a scratch held by a batch worker stops allocating
/// after its first trial at a given roster shape.
///
/// Buffers escaping into the [`RunReport`] (cost/informed snapshots, the
/// trace) are necessarily fresh per run and are not held here.
#[derive(Debug, Default)]
pub struct EngineScratch {
    rngs: Vec<SimRng>,
    /// Indices of not-yet-terminated participants, ascending. Compacted
    /// in place at the top of every slot, so late-run slots iterate only
    /// the live roster instead of skip-scanning all `n` participants.
    active: Vec<u32>,
    ledger: EnergyLedger,
    load: ChannelLoad,
    correct_sends: Vec<(ParticipantId, ChannelId, PayloadKind)>,
    listeners: Vec<(ParticipantId, ChannelId)>,
    executed_jam: JamPlan,
    jammed_channels: Vec<ChannelId>,
    delivered_listeners: Vec<(ParticipantId, ChannelId)>,
    delivered_by_channel: Vec<u64>,
}

impl EngineScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The exact slot-by-slot engine.
///
/// See the [crate docs](crate) for a runnable example.
///
/// # Dispatch tiers
///
/// One slot loop serves every entry point, monomorphized over the
/// roster's element type:
///
/// * **Typed** ([`run_with_roster_typed`](Self::run_with_roster_typed)) —
///   a homogeneous roster (`&mut [P]` for a concrete `P`, typically a
///   small per-protocol enum) runs with every protocol hook statically
///   dispatched and inlinable. This is the hot path `rcb_sim::Scenario`
///   uses for all built-in workloads.
/// * **Dynamic** ([`run_with_roster`](Self::run_with_roster) /
///   [`run`](Self::run)) — mixed rosters keep full flexibility through
///   `&mut dyn NodeProtocol` / boxed trait objects; the same loop is
///   instantiated at the trait-object type.
#[derive(Debug, Clone)]
pub struct ExactEngine {
    config: EngineConfig,
}

impl ExactEngine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// Runs a roster of participants against an adversary.
    ///
    /// `budgets` must be index-aligned with `participants`; each
    /// participant's RNG stream is derived from `seeds` as
    /// `("participant", index)`, so runs are exactly reproducible from the
    /// master seed.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run(
        &self,
        mut participants: Vec<Box<dyn NodeProtocol>>,
        budgets: Vec<Budget>,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        self.run_with_carol_budget(
            &mut participants,
            budgets,
            Budget::unlimited(),
            adversary,
            seeds,
        )
    }

    /// Like [`run`](Self::run) but with a cap on Carol's pooled budget.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_carol_budget(
        &self,
        participants: &mut [Box<dyn NodeProtocol>],
        budgets: Vec<Budget>,
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        // Boxes implement `NodeProtocol` by delegation, so the boxed
        // roster runs on the shared loop directly — no intermediate
        // re-borrowed `Vec<&mut dyn NodeProtocol>` is ever built.
        self.run_with_roster_typed(participants, &budgets, carol_budget, adversary, seeds)
    }

    /// The allocation-light dynamic entry point: runs a roster of
    /// *borrowed* participants against an adversary.
    ///
    /// Unlike [`run_with_carol_budget`](Self::run_with_carol_budget), the
    /// engine takes no ownership — callers that execute many runs (batched
    /// trials) keep their participant state machines and budget vectors
    /// alive across runs and only reset them, instead of re-boxing
    /// `n + 1` trait objects per run. Homogeneous rosters should prefer
    /// [`run_with_roster_typed`](Self::run_with_roster_typed), which
    /// additionally removes the per-hook dynamic dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_roster(
        &self,
        participants: &mut [&mut dyn NodeProtocol],
        budgets: &[Budget],
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        self.run_with_roster_typed(participants, budgets, carol_budget, adversary, seeds)
    }

    /// The devirtualized entry point: runs a homogeneous roster with all
    /// protocol hooks statically dispatched.
    ///
    /// Byte-identical to the dynamic path for the same participants in
    /// the same order — the loop is the same code, monomorphized at `P`
    /// instead of at a trait object, and RNG streams are indexed by
    /// roster position either way (pinned by the fingerprint suites).
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_roster_typed<P: NodeProtocol>(
        &self,
        participants: &mut [P],
        budgets: &[Budget],
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        self.run_with_roster_typed_in(
            &mut EngineScratch::new(),
            participants,
            budgets,
            carol_budget,
            adversary,
            seeds,
        )
    }

    /// Like [`run_with_roster_typed`](Self::run_with_roster_typed), with
    /// caller-owned scratch: batched trials hand each worker one
    /// [`EngineScratch`] and the engine performs no per-run allocation
    /// beyond the buffers that escape into the [`RunReport`].
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_roster_typed_in<P: NodeProtocol>(
        &self,
        scratch: &mut EngineScratch,
        participants: &mut [P],
        budgets: &[Budget],
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        assert_eq!(
            participants.len(),
            budgets.len(),
            "one budget per participant required"
        );
        let n = participants.len();
        let spectrum = self.config.spectrum;
        let EngineScratch {
            rngs,
            active,
            ledger,
            load,
            correct_sends,
            listeners,
            executed_jam,
            jammed_channels,
            delivered_listeners,
            delivered_by_channel,
        } = scratch;

        // Re-shape every buffer in place (allocation-free once warm).
        ledger.reset_on(budgets, carol_budget, spectrum);
        rngs.clear();
        rngs.extend((0..n).map(|i| seeds.stream("participant", i as u64)));
        load.reset_for(spectrum);
        executed_jam.clear();
        jammed_channels.clear();
        correct_sends.clear();
        correct_sends.reserve(n);
        listeners.clear();
        listeners.reserve(n);
        delivered_listeners.clear();
        delivered_by_channel.clear();
        delivered_by_channel.resize(spectrum.channel_count() as usize, 0);
        active.clear();
        active.extend(0..n as u32);
        let mut trace = Trace::with_capacity(self.config.trace_capacity);

        let mut jammed_slots = 0u64;
        let mut noisy_slots = 0u64;
        let mut slot = Slot::ZERO;
        let stop_reason = loop {
            if slot.index() >= self.config.max_slots {
                break StopReason::SlotCapReached;
            }

            load.clear();
            correct_sends.clear();
            listeners.clear();
            executed_jam.clear();
            jammed_channels.clear();
            delivered_listeners.clear();

            // 1. Correct participants commit their actions; active actions
            //    are pinned to the channel the protocol reports, looked up
            //    exactly once per action. The walk doubles as the active-set
            //    compaction: participants that terminated (in a previous
            //    slot's act or reception) are dropped in place and never
            //    visited again. Terminated participants draw no RNG and
            //    ordering stays ascending, so compaction is invisible to
            //    the simulation — and a slot in which *everyone* turns out
            //    terminated performs no action and no RNG draw, exactly
            //    like the former top-of-slot all-terminated scan.
            let mut kept = 0usize;
            for cursor in 0..active.len() {
                let idx = active[cursor];
                let i = idx as usize;
                let participant = &mut participants[i];
                if participant.has_terminated() {
                    continue; // swept from the active set for good
                }
                active[kept] = idx;
                kept += 1;
                match participant.act(slot, &mut rngs[i]) {
                    Action::Sleep => {}
                    action => {
                        let id = ParticipantId::new(idx);
                        let channel = participant.channel(slot);
                        assert!(
                            spectrum.contains(channel),
                            "participant {id} tuned {channel} outside the {spectrum}"
                        );
                        let op = match action {
                            Action::Send(_) => Op::Send,
                            _ => Op::Listen,
                        };
                        if ledger.charge_participant_on(id, op, channel).is_charged() {
                            match action {
                                Action::Send(payload) => {
                                    correct_sends.push((id, channel, payload.kind()));
                                    load.push(channel, payload);
                                }
                                Action::Listen => listeners.push((id, channel)),
                                Action::Sleep => unreachable!("sleep matched above"),
                            }
                        } else {
                            participant.on_budget_exhausted(slot);
                        }
                    }
                }
            }
            active.truncate(kept);
            if self.config.stop_when_all_terminated && active.is_empty() {
                break StopReason::AllTerminated;
            }

            // 2. Carol plans; reactive Carol additionally sees the RSSI bit.
            let ctx = AdversaryCtx {
                budget_remaining: ledger.carol_remaining(),
                spent: ledger.carol_spend().total(),
            };
            let mut mv = adversary.plan(slot, &ctx);
            if adversary.is_reactive() {
                let activity = !load.is_quiet();
                mv = adversary.react(slot, activity, mv);
            }

            // 3. Charge Carol: Byzantine sends first, then the jam plan
            //    channel by channel (ascending) — when the pool goes
            //    broke mid-plan, the remaining channels' jams fizzle.
            for tx in mv.sends {
                assert!(
                    spectrum.contains(tx.channel),
                    "byzantine send targets {} outside the {spectrum}",
                    tx.channel
                );
                if ledger.charge_carol_on(Op::Send, tx.channel).is_charged() {
                    load.push(tx.channel, tx.payload);
                } // beyond budget: the frame never airs
            }
            for (channel, directive) in mv.jam {
                assert!(
                    spectrum.contains(channel),
                    "jam directive targets {channel} outside the {spectrum}"
                );
                if ledger.charge_carol_on(Op::Jam, channel).is_charged() {
                    executed_jam.set(channel, directive);
                    jammed_channels.push(channel);
                }
            }
            let jam_executed = executed_jam.is_active();
            if jam_executed {
                jammed_slots += 1;
            }
            if jam_executed || !load.is_quiet() {
                noisy_slots += 1;
            }

            // 4. Resolve per (listener, channel): only the listener's own
            //    channel bucket and directive are consulted.
            let mut delivered = 0u32;
            for &(listener, channel) in listeners.iter() {
                let reception = resolve_for_listener_on(listener, channel, load, executed_jam);
                if matches!(reception, Reception::Frame(_)) {
                    delivered += 1;
                    delivered_by_channel[channel.index() as usize] += 1;
                    delivered_listeners.push((listener, channel));
                }
                participants[listener.index() as usize].on_reception(slot, reception);
            }

            // 5. Full-information feedback to the adaptive adversary.
            adversary.observe(
                slot,
                &SlotObservation {
                    correct_sends: correct_sends.as_slice(),
                    listeners: listeners.as_slice(),
                    jam_executed,
                    jammed_channels: jammed_channels.as_slice(),
                    delivered: delivered_listeners.as_slice(),
                },
            );

            if self.config.trace_capacity > 0 {
                trace.push(SlotRecord {
                    slot: slot.index(),
                    transmissions: load.total().min(u16::MAX as usize) as u16,
                    jammed_channels: executed_jam.active_channel_count().min(u16::MAX as usize)
                        as u16,
                    listeners: listeners.len() as u32,
                    delivered,
                });
            }

            slot = slot.next();
        };

        let channel_stats = spectrum
            .channels()
            .map(|c| {
                let i = c.index() as usize;
                let correct = ledger.correct_channel_spend()[i];
                let carol = ledger.carol_channel_spend()[i];
                ChannelStats {
                    correct_sends: correct.sends,
                    correct_listens: correct.listens,
                    byz_sends: carol.sends,
                    jammed_slots: carol.jams,
                    delivered: delivered_by_channel[i],
                }
            })
            .collect();

        RunReport {
            slots_elapsed: slot.index(),
            stop_reason,
            participant_costs: ledger.all_participant_spend(),
            participant_refusals: (0..n).map(|i| ledger.participant_refusals(i)).collect(),
            carol_cost: ledger.carol_spend(),
            informed: participants.iter().map(|p| p.is_informed()).collect(),
            terminated: participants.iter().map(|p| p.has_terminated()).collect(),
            jammed_slots,
            noisy_slots,
            channel_stats,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryMove, SilentAdversary, Transmission};
    use crate::channel::{IdSet, JamDirective};
    use crate::message::Payload;

    /// Sends `payload` every slot, forever.
    struct Chatter(Payload);
    impl NodeProtocol for Chatter {
        fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
            Action::Send(self.0.clone())
        }
        fn on_reception(&mut self, _: Slot, _: Reception) {}
        fn has_terminated(&self) -> bool {
            false
        }
        fn is_informed(&self) -> bool {
            true
        }
    }

    /// Listens every slot, records everything heard, terminates on a frame.
    #[derive(Default)]
    struct Recorder {
        heard: Vec<Reception>,
        got_frame: bool,
    }
    impl NodeProtocol for Recorder {
        fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
            if self.got_frame {
                Action::Sleep
            } else {
                Action::Listen
            }
        }
        fn on_reception(&mut self, _: Slot, r: Reception) {
            if matches!(r, Reception::Frame(_)) {
                self.got_frame = true;
            }
            self.heard.push(r);
        }
        fn has_terminated(&self) -> bool {
            self.got_frame
        }
        fn is_informed(&self) -> bool {
            self.got_frame
        }
    }

    fn cfg(max_slots: u64) -> EngineConfig {
        EngineConfig {
            max_slots,
            trace_capacity: 1024,
            ..EngineConfig::default()
        }
    }

    fn cfg_on(max_slots: u64, spectrum: Spectrum) -> EngineConfig {
        EngineConfig {
            spectrum,
            ..cfg(max_slots)
        }
    }

    #[test]
    fn single_sender_single_listener_delivers_immediately() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(100)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(1),
        );
        // The recorder terminates after slot 0; the chatter never does, so
        // the run hits the cap — but the recorder is informed.
        assert_eq!(report.stop_reason, StopReason::SlotCapReached);
        assert!(report.informed[1]);
        assert_eq!(report.participant_costs[1].listens, 1);
        assert_eq!(report.noisy_slots, 100);
    }

    #[test]
    fn collision_of_two_senders_is_noise() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Chatter(Payload::Decoy)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(10)).run(
            participants,
            vec![Budget::unlimited(); 3],
            &mut SilentAdversary,
            &SeedTree::new(2),
        );
        assert!(!report.informed[2], "collisions must never deliver");
        assert_eq!(report.participant_costs[2].listens, 10);
    }

    #[test]
    fn silence_reaches_idle_channel_listener() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![Box::new(Recorder::default())];
        let report = ExactEngine::new(cfg(5)).run(
            participants,
            vec![Budget::unlimited()],
            &mut SilentAdversary,
            &SeedTree::new(3),
        );
        assert_eq!(report.noisy_slots, 0);
        assert!(!report.informed[0]);
    }

    /// Jams everything, forever.
    struct JamAllCarol;
    impl Adversary for JamAllCarol {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove::jam_all()
        }
    }

    #[test]
    fn jamming_blocks_delivery_and_is_charged() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = JamAllCarol;
        let report = ExactEngine::new(cfg(50)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(4),
        );
        assert!(!report.informed[1]);
        assert_eq!(report.jammed_slots, 50);
        assert_eq!(report.carol_cost.jams, 50);
    }

    #[test]
    fn broke_carol_jams_fizzle() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = JamAllCarol;
        let mut roster = participants;
        let report = ExactEngine::new(cfg(50)).run_with_carol_budget(
            &mut roster,
            vec![Budget::unlimited(); 2],
            Budget::limited(3),
            &mut carol,
            &SeedTree::new(5),
        );
        // Exactly 3 jams execute, then the listener receives in slot 3.
        assert_eq!(report.carol_cost.jams, 3);
        assert_eq!(report.jammed_slots, 3);
        assert!(report.informed[1]);
        assert_eq!(report.participant_costs[1].listens, 4);
    }

    /// Carol spares one chosen listener while jamming everyone else.
    struct NUniformCarol {
        spare: ParticipantId,
    }
    impl Adversary for NUniformCarol {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove {
                jam: JamDirective::AllExcept([self.spare].into_iter().collect::<IdSet>()).into(),
                sends: Vec::new(),
            }
        }
    }

    #[test]
    fn n_uniform_jamming_informs_only_the_spared_listener() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
            Box::new(Recorder::default()),
        ];
        let mut carol = NUniformCarol {
            spare: ParticipantId::new(1),
        };
        let report = ExactEngine::new(cfg(20)).run(
            participants,
            vec![Budget::unlimited(); 3],
            &mut carol,
            &SeedTree::new(6),
        );
        assert!(report.informed[1], "spared listener must receive");
        assert!(!report.informed[2], "jammed listener must not receive");
    }

    #[test]
    fn participant_budget_exhaustion_silences_it() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut roster = participants;
        let report = ExactEngine::new(cfg(10)).run_with_carol_budget(
            &mut roster,
            vec![Budget::limited(4), Budget::unlimited()],
            Budget::unlimited(),
            &mut SilentAdversary,
            &SeedTree::new(7),
        );
        assert_eq!(report.participant_costs[0].sends, 4);
        assert_eq!(report.participant_refusals[0], 6);
        // After the sender goes broke the channel falls silent.
        assert_eq!(report.noisy_slots, 4);
    }

    #[test]
    fn byzantine_sends_collide_with_correct_traffic() {
        struct NackSpammer;
        impl Adversary for NackSpammer {
            fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
                AdversaryMove {
                    jam: JamPlan::none(),
                    sends: vec![Payload::Garbage(0).into()],
                }
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = NackSpammer;
        let report = ExactEngine::new(cfg(10)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(8),
        );
        assert!(!report.informed[1], "constant collisions block delivery");
        assert_eq!(report.carol_cost.sends, 10);
    }

    #[test]
    fn runs_are_deterministic_given_equal_seeds() {
        fn run_once(seed: u64) -> RunReport {
            let participants: Vec<Box<dyn NodeProtocol>> = vec![
                Box::new(Chatter(Payload::Nack)),
                Box::new(Recorder::default()),
                Box::new(Recorder::default()),
            ];
            ExactEngine::new(cfg(30)).run(
                participants,
                vec![Budget::unlimited(); 3],
                &mut JamAllCarol,
                &SeedTree::new(seed),
            )
        }
        let a = run_once(11);
        let b = run_once(11);
        assert_eq!(a.slots_elapsed, b.slots_elapsed);
        assert_eq!(
            a.participant_costs[1].total(),
            b.participant_costs[1].total()
        );
        assert_eq!(a.informed, b.informed);
    }

    #[test]
    fn trace_records_slot_facts() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(5)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(9),
        );
        assert!(!report.trace.is_empty());
        let r0 = report.trace.get(Slot::ZERO).unwrap();
        assert_eq!(r0.transmissions, 1);
        assert_eq!(r0.listeners, 1);
        assert_eq!(r0.delivered, 1);
        assert!(!r0.jammed());
    }

    #[test]
    fn all_terminated_stops_early() {
        // Two recorders, one chatter that terminates after sending once.
        struct OneShot {
            sent: bool,
        }
        impl NodeProtocol for OneShot {
            fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
                if self.sent {
                    Action::Sleep
                } else {
                    self.sent = true;
                    Action::Send(Payload::Nack)
                }
            }
            fn on_reception(&mut self, _: Slot, _: Reception) {}
            fn has_terminated(&self) -> bool {
                self.sent
            }
            fn is_informed(&self) -> bool {
                true
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(OneShot { sent: false }),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(1000)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(10),
        );
        assert_eq!(report.stop_reason, StopReason::AllTerminated);
        assert!(report.slots_elapsed < 1000);
        assert!(report.all_terminated_or_informed());
    }

    /// A chatter pinned to a fixed channel.
    struct TunedChatter {
        payload: Payload,
        channel: ChannelId,
    }
    impl NodeProtocol for TunedChatter {
        fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
            Action::Send(self.payload.clone())
        }
        fn channel(&self, _: Slot) -> ChannelId {
            self.channel
        }
        fn on_reception(&mut self, _: Slot, _: Reception) {}
        fn has_terminated(&self) -> bool {
            false
        }
        fn is_informed(&self) -> bool {
            true
        }
    }

    /// A recorder pinned to a fixed channel.
    struct TunedRecorder {
        channel: ChannelId,
        inner: Recorder,
    }
    impl TunedRecorder {
        fn new(channel: ChannelId) -> Self {
            Self {
                channel,
                inner: Recorder::default(),
            }
        }
    }
    impl NodeProtocol for TunedRecorder {
        fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
            self.inner.act(slot, rng)
        }
        fn channel(&self, _: Slot) -> ChannelId {
            self.channel
        }
        fn on_reception(&mut self, slot: Slot, r: Reception) {
            self.inner.on_reception(slot, r);
        }
        fn has_terminated(&self) -> bool {
            self.inner.has_terminated()
        }
        fn is_informed(&self) -> bool {
            self.inner.is_informed()
        }
    }

    #[test]
    fn channels_are_isolated_traffic_on_one_never_reaches_another() {
        // Chatter on ch0; listeners on ch0 and ch1. Only the ch0 listener
        // ever hears a frame; the ch1 listener hears pure silence.
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(TunedChatter {
                payload: Payload::Nack,
                channel: ChannelId::new(0),
            }),
            Box::new(TunedRecorder::new(ChannelId::new(0))),
            Box::new(TunedRecorder::new(ChannelId::new(1))),
        ];
        let report = ExactEngine::new(cfg_on(10, Spectrum::new(2))).run(
            participants,
            vec![Budget::unlimited(); 3],
            &mut SilentAdversary,
            &SeedTree::new(20),
        );
        assert!(report.informed[1], "same-channel listener hears the frame");
        assert!(!report.informed[2], "cross-channel listener hears nothing");
        assert_eq!(report.channel_stats[0].delivered, 1);
        assert_eq!(report.channel_stats[1].delivered, 0);
        assert_eq!(report.channel_stats[0].correct_sends, 10);
        assert_eq!(report.channel_stats[1].correct_listens, 10);
    }

    /// Jams only the given channel, forever.
    struct ChannelJammer(ChannelId);
    impl Adversary for ChannelJammer {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove {
                jam: JamPlan::on(self.0, JamDirective::All),
                sends: Vec::new(),
            }
        }
    }

    #[test]
    fn jamming_one_channel_leaves_the_others_clean() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(TunedChatter {
                payload: Payload::Nack,
                channel: ChannelId::new(0),
            }),
            Box::new(TunedChatter {
                payload: Payload::Decoy,
                channel: ChannelId::new(1),
            }),
            Box::new(TunedRecorder::new(ChannelId::new(0))),
            Box::new(TunedRecorder::new(ChannelId::new(1))),
        ];
        let mut carol = ChannelJammer(ChannelId::new(0));
        let report = ExactEngine::new(cfg_on(20, Spectrum::new(2))).run(
            participants,
            vec![Budget::unlimited(); 4],
            &mut carol,
            &SeedTree::new(21),
        );
        assert!(!report.informed[2], "jammed channel delivers nothing");
        assert!(report.informed[3], "unjammed channel delivers in slot 0");
        assert_eq!(report.channel_stats[0].jammed_slots, 20);
        assert_eq!(report.channel_stats[1].jammed_slots, 0);
        assert_eq!(report.carol_cost.jams, 20);
    }

    #[test]
    fn blanket_jam_costs_one_unit_per_channel_and_fizzles_mid_plan() {
        // Spectrum of 4; Carol blankets all channels with budget 10: two
        // full slots (8 units) plus a partial third slot covering only
        // channels 0 and 1 before the pool is dry.
        struct Blanket;
        impl Adversary for Blanket {
            fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
                AdversaryMove::jam_spectrum(Spectrum::new(4))
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> =
            vec![Box::new(TunedRecorder::new(ChannelId::new(3)))];
        let mut roster = participants;
        let report = ExactEngine::new(cfg_on(5, Spectrum::new(4))).run_with_carol_budget(
            &mut roster,
            vec![Budget::unlimited()],
            Budget::limited(10),
            &mut Blanket,
            &SeedTree::new(22),
        );
        assert_eq!(report.carol_cost.jams, 10, "she spends the whole pool");
        // Channels 0 and 1 get the partial slot 2; channels 2 and 3 fizzle.
        assert_eq!(report.channel_stats[0].jammed_slots, 3);
        assert_eq!(report.channel_stats[1].jammed_slots, 3);
        assert_eq!(report.channel_stats[2].jammed_slots, 2);
        assert_eq!(report.channel_stats[3].jammed_slots, 2);
        // The ch3 listener hears noise in slots 0-1 and silence after.
        assert_eq!(report.trace.get(Slot::new(2)).unwrap().jammed_channels, 2);
        assert_eq!(report.trace.get(Slot::new(3)).unwrap().jammed_channels, 0);
    }

    #[test]
    fn byzantine_sends_land_on_their_target_channel() {
        struct CrossSender;
        impl Adversary for CrossSender {
            fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
                AdversaryMove {
                    jam: JamPlan::none(),
                    sends: vec![Transmission::on(ChannelId::new(1), Payload::Nack)],
                }
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(TunedRecorder::new(ChannelId::new(0))),
            Box::new(TunedRecorder::new(ChannelId::new(1))),
        ];
        let mut carol = CrossSender;
        let report = ExactEngine::new(cfg_on(5, Spectrum::new(2))).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(23),
        );
        assert!(!report.informed[0]);
        assert!(report.informed[1], "byzantine frame delivers on ch1");
        assert_eq!(report.channel_stats[1].byz_sends, 5);
        assert_eq!(report.channel_stats[0].byz_sends, 0);
    }

    /// A homogeneous roster type over the test protocols, mirroring the
    /// per-protocol enums the workloads use on the typed fast path.
    enum TestParticipant {
        Chatter(TunedChatter),
        Recorder(TunedRecorder),
    }

    impl NodeProtocol for TestParticipant {
        fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
            match self {
                TestParticipant::Chatter(c) => c.act(slot, rng),
                TestParticipant::Recorder(r) => r.act(slot, rng),
            }
        }
        fn channel(&self, slot: Slot) -> ChannelId {
            match self {
                TestParticipant::Chatter(c) => c.channel(slot),
                TestParticipant::Recorder(r) => r.channel(slot),
            }
        }
        fn on_reception(&mut self, slot: Slot, reception: Reception) {
            match self {
                TestParticipant::Chatter(c) => c.on_reception(slot, reception),
                TestParticipant::Recorder(r) => r.on_reception(slot, reception),
            }
        }
        fn has_terminated(&self) -> bool {
            match self {
                TestParticipant::Chatter(c) => c.has_terminated(),
                TestParticipant::Recorder(r) => r.has_terminated(),
            }
        }
        fn is_informed(&self) -> bool {
            match self {
                TestParticipant::Chatter(c) => c.is_informed(),
                TestParticipant::Recorder(r) => r.is_informed(),
            }
        }
    }

    /// Jams channel `slot % C` and airs a Byzantine frame on channel 0
    /// every third slot — deterministic multi-channel pressure that
    /// exercises jamming, collisions, and budget fizzle identically on
    /// every dispatch path.
    struct RotaryCarol {
        channels: u16,
    }

    impl Adversary for RotaryCarol {
        fn plan(&mut self, slot: Slot, _: &AdversaryCtx) -> AdversaryMove {
            let target = ChannelId::new((slot.index() % u64::from(self.channels)) as u16);
            let sends = if slot.index().is_multiple_of(3) {
                vec![Transmission::on(ChannelId::ZERO, Payload::Garbage(7))]
            } else {
                Vec::new()
            };
            AdversaryMove {
                jam: JamPlan::on(target, JamDirective::All),
                sends,
            }
        }
    }

    /// Full-report equality: every observable the engine produces.
    fn assert_reports_identical(label: &str, a: &RunReport, b: &RunReport) {
        assert_eq!(a.slots_elapsed, b.slots_elapsed, "{label}: slots");
        assert_eq!(a.stop_reason, b.stop_reason, "{label}: stop reason");
        assert_eq!(a.participant_costs, b.participant_costs, "{label}: costs");
        assert_eq!(
            a.participant_refusals, b.participant_refusals,
            "{label}: refusals"
        );
        assert_eq!(a.carol_cost, b.carol_cost, "{label}: carol");
        assert_eq!(a.informed, b.informed, "{label}: informed");
        assert_eq!(a.terminated, b.terminated, "{label}: terminated");
        assert_eq!(a.jammed_slots, b.jammed_slots, "{label}: jammed slots");
        assert_eq!(a.noisy_slots, b.noisy_slots, "{label}: noisy slots");
        assert_eq!(a.channel_stats, b.channel_stats, "{label}: channel stats");
        assert_eq!(a.trace.records(), b.trace.records(), "{label}: trace");
    }

    /// One roster shape, rebuilt fresh per dispatch path: chatters on the
    /// low channels, recorders spread across the spectrum (same-channel
    /// recorders terminate mid-run, exercising active-set compaction).
    fn test_roster_spec(channels: u16) -> Vec<(bool, u16)> {
        let mut spec = vec![(true, 0u16)];
        for i in 0..6u16 {
            spec.push((false, i % channels));
        }
        spec
    }

    fn build_typed(spec: &[(bool, u16)]) -> Vec<TestParticipant> {
        spec.iter()
            .map(|&(chatter, ch)| {
                if chatter {
                    TestParticipant::Chatter(TunedChatter {
                        payload: Payload::Nack,
                        channel: ChannelId::new(ch),
                    })
                } else {
                    TestParticipant::Recorder(TunedRecorder::new(ChannelId::new(ch)))
                }
            })
            .collect()
    }

    fn build_boxed(spec: &[(bool, u16)]) -> Vec<Box<dyn NodeProtocol>> {
        spec.iter()
            .map(|&(chatter, ch)| -> Box<dyn NodeProtocol> {
                if chatter {
                    Box::new(TunedChatter {
                        payload: Payload::Nack,
                        channel: ChannelId::new(ch),
                    })
                } else {
                    Box::new(TunedRecorder::new(ChannelId::new(ch)))
                }
            })
            .collect()
    }

    #[test]
    fn typed_and_dyn_paths_are_byte_identical() {
        // The monomorphized fast path, the `&mut dyn` path, and the boxed
        // path must be indistinguishable — same reports, down to the
        // trace — on both the single-channel and a multi-channel
        // spectrum, against a jamming + byzantine adversary with a
        // budget that goes broke mid-run.
        for channels in [1u16, 4] {
            let spectrum = Spectrum::new(channels);
            let spec = test_roster_spec(channels);
            let engine = ExactEngine::new(cfg_on(40, spectrum));
            let budgets = vec![Budget::unlimited(); spec.len()];
            let carol = Budget::limited(25);
            let seeds = SeedTree::new(99);

            let mut typed = build_typed(&spec);
            let typed_report = engine.run_with_roster_typed(
                &mut typed,
                &budgets,
                carol,
                &mut RotaryCarol { channels },
                &seeds,
            );

            let mut boxed = build_boxed(&spec);
            let mut dyn_refs: Vec<&mut dyn NodeProtocol> = boxed
                .iter_mut()
                .map(|p| &mut **p as &mut dyn NodeProtocol)
                .collect();
            let dyn_report = engine.run_with_roster(
                &mut dyn_refs,
                &budgets,
                carol,
                &mut RotaryCarol { channels },
                &seeds,
            );

            let boxed_report = engine.run_with_carol_budget(
                &mut build_boxed(&spec),
                budgets.clone(),
                carol,
                &mut RotaryCarol { channels },
                &seeds,
            );

            assert_reports_identical(
                &format!("C={channels} typed/dyn"),
                &typed_report,
                &dyn_report,
            );
            assert_reports_identical(
                &format!("C={channels} typed/boxed"),
                &typed_report,
                &boxed_report,
            );
        }
    }

    #[test]
    fn engine_scratch_reuse_is_invisible_across_spectra() {
        // One EngineScratch driven through runs of different spectra and
        // roster shapes must reproduce fresh-scratch runs byte for byte —
        // the reshaping in `run_with_roster_typed_in` leaks nothing.
        let mut scratch = EngineScratch::new();
        for channels in [4u16, 1, 4] {
            let spectrum = Spectrum::new(channels);
            let spec = test_roster_spec(channels);
            let engine = ExactEngine::new(cfg_on(40, spectrum));
            let budgets = vec![Budget::unlimited(); spec.len()];
            let carol = Budget::limited(25);
            let seeds = SeedTree::new(7);

            let reused = engine.run_with_roster_typed_in(
                &mut scratch,
                &mut build_typed(&spec),
                &budgets,
                carol,
                &mut RotaryCarol { channels },
                &seeds,
            );
            let fresh = engine.run_with_roster_typed(
                &mut build_typed(&spec),
                &budgets,
                carol,
                &mut RotaryCarol { channels },
                &seeds,
            );
            assert_reports_identical(&format!("C={channels} reuse"), &reused, &fresh);
        }
    }

    #[test]
    fn single_channel_stats_reconcile_with_totals() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = JamAllCarol;
        let report = ExactEngine::new(cfg(30)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(24),
        );
        assert_eq!(report.channel_stats.len(), 1);
        let stats = report.channel_stats[0];
        assert_eq!(stats.jammed_slots, report.jammed_slots);
        assert_eq!(stats.correct_sends, report.participant_costs[0].sends);
        assert_eq!(stats.correct_listens, report.participant_costs[1].listens);
    }
}
