//! The exact per-node slot engine — ground truth for the whole workspace.
//!
//! Every participant's protocol state machine is driven slot-by-slot; the
//! channel is resolved per listener (n-uniform semantics); every radio
//! operation is charged against the [`EnergyLedger`]. The faster
//! phase-level simulator in `rcb-core` is statistically cross-validated
//! against this engine.

use rcb_rng::{SeedTree, SimRng};

use crate::adversary::{Adversary, AdversaryCtx, SlotObservation};
use crate::channel::{resolve_for_listener, JamDirective};
use crate::energy::{Budget, CostBreakdown, EnergyLedger, Op};
use crate::message::{Payload, PayloadKind};
use crate::participant::{Action, NodeProtocol, ParticipantId, Reception};
use crate::slot::Slot;
use crate::trace::{SlotRecord, Trace};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard stop after this many slots (protects against non-terminating
    /// protocols; the ε-BROADCAST cap is `O(n^{1+1/k})` so orchestration
    /// sets this comfortably above the final round).
    pub max_slots: u64,
    /// Retain at most this many slot records (0 disables tracing).
    pub trace_capacity: usize,
    /// Stop as soon as every participant reports
    /// [`has_terminated`](NodeProtocol::has_terminated).
    pub stop_when_all_terminated: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_slots: 10_000_000,
            trace_capacity: 0,
            stop_when_all_terminated: true,
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every participant terminated its protocol.
    AllTerminated,
    /// The [`EngineConfig::max_slots`] cap was reached first.
    SlotCapReached,
}

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of slots simulated.
    pub slots_elapsed: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Per-participant spend (index-aligned with the roster).
    pub participant_costs: Vec<CostBreakdown>,
    /// Per-participant count of operations refused for lack of budget.
    pub participant_refusals: Vec<u64>,
    /// Carol's pooled spend.
    pub carol_cost: CostBreakdown,
    /// Per-participant informed flags at the end of the run.
    pub informed: Vec<bool>,
    /// Per-participant terminated flags at the end of the run.
    pub terminated: Vec<bool>,
    /// Slots in which Carol's jam executed.
    pub jammed_slots: u64,
    /// Slots containing at least one transmission or an executed jam.
    pub noisy_slots: u64,
    /// Optional slot trace (empty if tracing was disabled).
    pub trace: Trace,
}

impl RunReport {
    /// Number of participants that ended the run informed.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&b| b).count()
    }

    /// Number of participants that ended the run terminated.
    #[must_use]
    pub fn terminated_count(&self) -> usize {
        self.terminated.iter().filter(|&&b| b).count()
    }

    /// Whether every participant is either informed or (at least)
    /// terminated — the doc-example convenience.
    #[must_use]
    pub fn all_terminated_or_informed(&self) -> bool {
        self.informed
            .iter()
            .zip(&self.terminated)
            .all(|(&i, &t)| i || t)
    }

    /// The maximum total spend across participants (load-balance metric).
    #[must_use]
    pub fn max_participant_cost(&self) -> u64 {
        self.participant_costs
            .iter()
            .map(CostBreakdown::total)
            .max()
            .unwrap_or(0)
    }
}

/// The exact slot-by-slot engine.
///
/// See the [crate docs](crate) for a runnable example.
#[derive(Debug, Clone)]
pub struct ExactEngine {
    config: EngineConfig,
}

impl ExactEngine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// Runs a roster of participants against an adversary.
    ///
    /// `budgets` must be index-aligned with `participants`; each
    /// participant's RNG stream is derived from `seeds` as
    /// `("participant", index)`, so runs are exactly reproducible from the
    /// master seed.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run(
        &self,
        mut participants: Vec<Box<dyn NodeProtocol>>,
        budgets: Vec<Budget>,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        self.run_with_carol_budget(
            &mut participants,
            budgets,
            Budget::unlimited(),
            adversary,
            seeds,
        )
    }

    /// Like [`run`](Self::run) but with a cap on Carol's pooled budget.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_carol_budget(
        &self,
        participants: &mut [Box<dyn NodeProtocol>],
        budgets: Vec<Budget>,
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        let mut roster: Vec<&mut dyn NodeProtocol> = participants
            .iter_mut()
            .map(|p| &mut **p as &mut dyn NodeProtocol)
            .collect();
        self.run_with_roster(&mut roster, &budgets, carol_budget, adversary, seeds)
    }

    /// The allocation-light entry point: runs a roster of *borrowed*
    /// participants against an adversary.
    ///
    /// Unlike [`run_with_carol_budget`](Self::run_with_carol_budget), the
    /// engine takes no ownership — callers that execute many runs (batched
    /// trials) keep their participant state machines and budget vectors
    /// alive across runs and only reset them, instead of re-boxing
    /// `n + 1` trait objects per run.
    ///
    /// # Panics
    ///
    /// Panics if `participants` and `budgets` lengths differ.
    pub fn run_with_roster(
        &self,
        participants: &mut [&mut dyn NodeProtocol],
        budgets: &[Budget],
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seeds: &SeedTree,
    ) -> RunReport {
        assert_eq!(
            participants.len(),
            budgets.len(),
            "one budget per participant required"
        );
        let n = participants.len();
        let mut ledger = EnergyLedger::from_budgets(budgets, carol_budget);
        let mut rngs: Vec<SimRng> = (0..n)
            .map(|i| seeds.stream("participant", i as u64))
            .collect();
        let mut trace = Trace::with_capacity(self.config.trace_capacity);

        // Scratch buffers reused across slots.
        let mut transmissions: Vec<Payload> = Vec::new();
        let mut correct_sends: Vec<(ParticipantId, PayloadKind)> = Vec::new();
        let mut listeners: Vec<ParticipantId> = Vec::new();

        let mut jammed_slots = 0u64;
        let mut noisy_slots = 0u64;
        let mut slot = Slot::ZERO;
        let stop_reason = loop {
            if slot.index() >= self.config.max_slots {
                break StopReason::SlotCapReached;
            }
            if self.config.stop_when_all_terminated
                && participants.iter().all(|p| p.has_terminated())
            {
                break StopReason::AllTerminated;
            }

            transmissions.clear();
            correct_sends.clear();
            listeners.clear();

            // 1. Correct participants commit their actions.
            for (i, participant) in participants.iter_mut().enumerate() {
                if participant.has_terminated() {
                    continue;
                }
                let id = ParticipantId::new(i as u32);
                match participant.act(slot, &mut rngs[i]) {
                    Action::Sleep => {}
                    Action::Send(payload) => {
                        if ledger.charge_participant(id, Op::Send).is_charged() {
                            correct_sends.push((id, payload.kind()));
                            transmissions.push(payload);
                        } else {
                            participant.on_budget_exhausted(slot);
                        }
                    }
                    Action::Listen => {
                        if ledger.charge_participant(id, Op::Listen).is_charged() {
                            listeners.push(id);
                        } else {
                            participant.on_budget_exhausted(slot);
                        }
                    }
                }
            }

            // 2. Carol plans; reactive Carol additionally sees the RSSI bit.
            let ctx = AdversaryCtx {
                budget_remaining: ledger.carol_remaining(),
                spent: ledger.carol_spend().total(),
            };
            let mut mv = adversary.plan(slot, &ctx);
            if adversary.is_reactive() {
                let activity = !transmissions.is_empty();
                mv = adversary.react(slot, activity, mv);
            }

            // 3. Charge Carol: Byzantine sends first, then the jam.
            for payload in mv.sends {
                if ledger.charge_carol(Op::Send).is_charged() {
                    transmissions.push(payload);
                } // beyond budget: the frame never airs
            }
            let jam = if mv.jam.is_active() {
                if ledger.charge_carol(Op::Jam).is_charged() {
                    mv.jam
                } else {
                    JamDirective::None // broke: the jam fizzles
                }
            } else {
                JamDirective::None
            };
            let jam_executed = jam.is_active();
            if jam_executed {
                jammed_slots += 1;
            }
            if jam_executed || !transmissions.is_empty() {
                noisy_slots += 1;
            }

            // 4. Resolve the channel per listener (n-uniform semantics).
            let mut delivered = 0u32;
            for &listener in &listeners {
                let reception = resolve_for_listener(listener, &transmissions, &jam);
                if matches!(reception, Reception::Frame(_)) {
                    delivered += 1;
                }
                participants[listener.index() as usize].on_reception(slot, reception);
            }

            // 5. Full-information feedback to the adaptive adversary.
            adversary.observe(
                slot,
                &SlotObservation {
                    correct_sends: &correct_sends,
                    listeners: &listeners,
                    jam_executed,
                },
            );

            if self.config.trace_capacity > 0 {
                trace.push(SlotRecord {
                    slot: slot.index(),
                    transmissions: transmissions.len().min(u16::MAX as usize) as u16,
                    jammed: jam_executed,
                    listeners: listeners.len() as u32,
                    delivered,
                });
            }

            slot = slot.next();
        };

        RunReport {
            slots_elapsed: slot.index(),
            stop_reason,
            participant_costs: ledger.all_participant_spend(),
            participant_refusals: (0..n).map(|i| ledger.participant_refusals(i)).collect(),
            carol_cost: ledger.carol_spend(),
            informed: participants.iter().map(|p| p.is_informed()).collect(),
            terminated: participants.iter().map(|p| p.has_terminated()).collect(),
            jammed_slots,
            noisy_slots,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryMove, SilentAdversary};
    use crate::channel::IdSet;

    /// Sends `payload` every slot, forever.
    struct Chatter(Payload);
    impl NodeProtocol for Chatter {
        fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
            Action::Send(self.0.clone())
        }
        fn on_reception(&mut self, _: Slot, _: Reception) {}
        fn has_terminated(&self) -> bool {
            false
        }
        fn is_informed(&self) -> bool {
            true
        }
    }

    /// Listens every slot, records everything heard, terminates on a frame.
    #[derive(Default)]
    struct Recorder {
        heard: Vec<Reception>,
        got_frame: bool,
    }
    impl NodeProtocol for Recorder {
        fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
            if self.got_frame {
                Action::Sleep
            } else {
                Action::Listen
            }
        }
        fn on_reception(&mut self, _: Slot, r: Reception) {
            if matches!(r, Reception::Frame(_)) {
                self.got_frame = true;
            }
            self.heard.push(r);
        }
        fn has_terminated(&self) -> bool {
            self.got_frame
        }
        fn is_informed(&self) -> bool {
            self.got_frame
        }
    }

    fn cfg(max_slots: u64) -> EngineConfig {
        EngineConfig {
            max_slots,
            trace_capacity: 1024,
            stop_when_all_terminated: true,
        }
    }

    #[test]
    fn single_sender_single_listener_delivers_immediately() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(100)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(1),
        );
        // The recorder terminates after slot 0; the chatter never does, so
        // the run hits the cap — but the recorder is informed.
        assert_eq!(report.stop_reason, StopReason::SlotCapReached);
        assert!(report.informed[1]);
        assert_eq!(report.participant_costs[1].listens, 1);
        assert_eq!(report.noisy_slots, 100);
    }

    #[test]
    fn collision_of_two_senders_is_noise() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Chatter(Payload::Decoy)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(10)).run(
            participants,
            vec![Budget::unlimited(); 3],
            &mut SilentAdversary,
            &SeedTree::new(2),
        );
        assert!(!report.informed[2], "collisions must never deliver");
        assert_eq!(report.participant_costs[2].listens, 10);
    }

    #[test]
    fn silence_reaches_idle_channel_listener() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![Box::new(Recorder::default())];
        let report = ExactEngine::new(cfg(5)).run(
            participants,
            vec![Budget::unlimited()],
            &mut SilentAdversary,
            &SeedTree::new(3),
        );
        assert_eq!(report.noisy_slots, 0);
        assert!(!report.informed[0]);
    }

    /// Jams everything, forever.
    struct JamAllCarol;
    impl Adversary for JamAllCarol {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove::jam_all()
        }
    }

    #[test]
    fn jamming_blocks_delivery_and_is_charged() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = JamAllCarol;
        let report = ExactEngine::new(cfg(50)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(4),
        );
        assert!(!report.informed[1]);
        assert_eq!(report.jammed_slots, 50);
        assert_eq!(report.carol_cost.jams, 50);
    }

    #[test]
    fn broke_carol_jams_fizzle() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = JamAllCarol;
        let mut roster = participants;
        let report = ExactEngine::new(cfg(50)).run_with_carol_budget(
            &mut roster,
            vec![Budget::unlimited(); 2],
            Budget::limited(3),
            &mut carol,
            &SeedTree::new(5),
        );
        // Exactly 3 jams execute, then the listener receives in slot 3.
        assert_eq!(report.carol_cost.jams, 3);
        assert_eq!(report.jammed_slots, 3);
        assert!(report.informed[1]);
        assert_eq!(report.participant_costs[1].listens, 4);
    }

    /// Carol spares one chosen listener while jamming everyone else.
    struct NUniformCarol {
        spare: ParticipantId,
    }
    impl Adversary for NUniformCarol {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove {
                jam: JamDirective::AllExcept([self.spare].into_iter().collect::<IdSet>()),
                sends: Vec::new(),
            }
        }
    }

    #[test]
    fn n_uniform_jamming_informs_only_the_spared_listener() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
            Box::new(Recorder::default()),
        ];
        let mut carol = NUniformCarol {
            spare: ParticipantId::new(1),
        };
        let report = ExactEngine::new(cfg(20)).run(
            participants,
            vec![Budget::unlimited(); 3],
            &mut carol,
            &SeedTree::new(6),
        );
        assert!(report.informed[1], "spared listener must receive");
        assert!(!report.informed[2], "jammed listener must not receive");
    }

    #[test]
    fn participant_budget_exhaustion_silences_it() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut roster = participants;
        let report = ExactEngine::new(cfg(10)).run_with_carol_budget(
            &mut roster,
            vec![Budget::limited(4), Budget::unlimited()],
            Budget::unlimited(),
            &mut SilentAdversary,
            &SeedTree::new(7),
        );
        assert_eq!(report.participant_costs[0].sends, 4);
        assert_eq!(report.participant_refusals[0], 6);
        // After the sender goes broke the channel falls silent.
        assert_eq!(report.noisy_slots, 4);
    }

    #[test]
    fn byzantine_sends_collide_with_correct_traffic() {
        struct NackSpammer;
        impl Adversary for NackSpammer {
            fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
                AdversaryMove {
                    jam: JamDirective::None,
                    sends: vec![Payload::Garbage(0)],
                }
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let mut carol = NackSpammer;
        let report = ExactEngine::new(cfg(10)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut carol,
            &SeedTree::new(8),
        );
        assert!(!report.informed[1], "constant collisions block delivery");
        assert_eq!(report.carol_cost.sends, 10);
    }

    #[test]
    fn runs_are_deterministic_given_equal_seeds() {
        fn run_once(seed: u64) -> RunReport {
            let participants: Vec<Box<dyn NodeProtocol>> = vec![
                Box::new(Chatter(Payload::Nack)),
                Box::new(Recorder::default()),
                Box::new(Recorder::default()),
            ];
            ExactEngine::new(cfg(30)).run(
                participants,
                vec![Budget::unlimited(); 3],
                &mut JamAllCarol,
                &SeedTree::new(seed),
            )
        }
        let a = run_once(11);
        let b = run_once(11);
        assert_eq!(a.slots_elapsed, b.slots_elapsed);
        assert_eq!(
            a.participant_costs[1].total(),
            b.participant_costs[1].total()
        );
        assert_eq!(a.informed, b.informed);
    }

    #[test]
    fn trace_records_slot_facts() {
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(Chatter(Payload::Nack)),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(5)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(9),
        );
        assert!(!report.trace.is_empty());
        let r0 = report.trace.get(Slot::ZERO).unwrap();
        assert_eq!(r0.transmissions, 1);
        assert_eq!(r0.listeners, 1);
        assert_eq!(r0.delivered, 1);
        assert!(!r0.jammed);
    }

    #[test]
    fn all_terminated_stops_early() {
        // Two recorders, one chatter that terminates after sending once.
        struct OneShot {
            sent: bool,
        }
        impl NodeProtocol for OneShot {
            fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
                if self.sent {
                    Action::Sleep
                } else {
                    self.sent = true;
                    Action::Send(Payload::Nack)
                }
            }
            fn on_reception(&mut self, _: Slot, _: Reception) {}
            fn has_terminated(&self) -> bool {
                self.sent
            }
            fn is_informed(&self) -> bool {
                true
            }
        }
        let participants: Vec<Box<dyn NodeProtocol>> = vec![
            Box::new(OneShot { sent: false }),
            Box::new(Recorder::default()),
        ];
        let report = ExactEngine::new(cfg(1000)).run(
            participants,
            vec![Budget::unlimited(); 2],
            &mut SilentAdversary,
            &SeedTree::new(10),
        );
        assert_eq!(report.stop_reason, StopReason::AllTerminated);
        assert!(report.slots_elapsed < 1000);
        assert!(report.all_terminated_or_informed());
    }
}
