//! Time-slotted single-hop radio simulator — the network model of
//! Gilbert & Young (§1.1), implemented as an executable substrate and
//! generalised to a multi-channel spectrum.
//!
//! # The model
//!
//! Time is divided into discrete slots. In each slot every device either
//! **sleeps** (free), **sends** one frame, or **listens** (each costing one
//! energy unit). A listener perceives one of three outcomes:
//!
//! * **silence** — no transmissions, not jammed. Silence cannot be forged:
//!   no adversary action can make an active channel sound silent.
//! * **a frame** — exactly one transmission reached it un-jammed.
//! * **noise** — two or more transmissions collided, or the slot was jammed
//!   *for this listener*. Jamming is indistinguishable from collision.
//!
//! The adversary Carol is **n-uniform**: her [`JamDirective`] may target any
//! subset of listeners, so some devices hear noise while others receive the
//! same slot cleanly. She is **adaptive** (full information about all past
//! behaviour, via [`Adversary::observe`]) and optionally **reactive** (sees
//! the current slot's channel activity before committing to jam, via
//! [`Adversary::react`]).
//!
//! Every operation draws on an [`EnergyLedger`]: correct devices have
//! individual budgets, Carol has a pooled budget covering herself and her
//! Byzantine devices. When her budget is exhausted, jam directives fizzle —
//! this is the mechanism that makes resource competitiveness *observable*.
//!
//! # The spectrum: `C ≥ 1` channels
//!
//! Following the multi-channel successors of the source paper (Chen &
//! Zheng 2019/2020), every radio operation targets a channel
//! `c ∈ 0..C` of a [`Spectrum`]:
//!
//! * a device's [`NodeProtocol::channel`] hook names the channel its
//!   send/listen lands on (default: [`ChannelId::ZERO`]);
//! * transmissions are grouped by channel into a [`ChannelLoad`], and a
//!   listener tuned to channel `c` perceives **only** that channel's
//!   traffic and jamming — resolution inspects one bucket per listener
//!   (`O(active channels)` grouping, not `O(n)` scanning per listener);
//! * Carol's per-slot [`JamPlan`] names a [`JamDirective`] per targeted
//!   channel, **each costing one unit when it executes** — blanketing the
//!   spectrum costs `C` units per slot, so she must split her budget;
//! * the [`EnergyLedger`] attributes every charge to its channel, and the
//!   engine's [`RunReport::channel_stats`] reports the split.
//!
//! **The `C = 1` equivalence guarantee.** With [`Spectrum::single`] (the
//! default [`EngineConfig`]), every operation lands on channel 0, the
//! per-channel resolution degenerates to [`resolve_for_listener`], no
//! extra RNG draws occur, and runs are bit-for-bit identical to the
//! pre-spectrum engine — the single-channel model of the source paper is
//! a special case, not a compatibility mode.
//!
//! # Quick start
//!
//! ```
//! use rcb_radio::{
//!     Action, Budget, EngineConfig, ExactEngine, NodeProtocol, Reception,
//!     SilentAdversary, Slot,
//! };
//! use rcb_rng::{SeedTree, SimRng};
//!
//! /// A sender that transmits in every slot until slot 10.
//! struct Beacon;
//! impl NodeProtocol for Beacon {
//!     fn act(&mut self, slot: Slot, _rng: &mut SimRng) -> Action {
//!         Action::Send(rcb_radio::Payload::Nack)
//!     }
//!     fn on_reception(&mut self, _: Slot, _: Reception) {}
//!     fn has_terminated(&self) -> bool { false }
//!     fn is_informed(&self) -> bool { true }
//! }
//!
//! /// A receiver that listens until it hears anything.
//! struct Ear { heard: bool }
//! impl NodeProtocol for Ear {
//!     fn act(&mut self, _: Slot, _: &mut SimRng) -> Action {
//!         if self.heard { Action::Sleep } else { Action::Listen }
//!     }
//!     fn on_reception(&mut self, _: Slot, r: Reception) {
//!         if matches!(r, Reception::Frame(_)) { self.heard = true; }
//!     }
//!     fn has_terminated(&self) -> bool { self.heard }
//!     fn is_informed(&self) -> bool { self.heard }
//! }
//!
//! let participants: Vec<Box<dyn NodeProtocol>> =
//!     vec![Box::new(Beacon), Box::new(Ear { heard: false })];
//! let budgets = vec![Budget::unlimited(); 2];
//! let report = ExactEngine::new(EngineConfig::default())
//!     .run(participants, budgets, &mut SilentAdversary, &SeedTree::new(1));
//! assert!(report.all_terminated_or_informed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod channel;
mod energy;
mod engine;
mod message;
mod participant;
mod slot;
mod soa;
mod spectrum;
mod trace;

pub use adversary::{
    Adversary, AdversaryCtx, AdversaryMove, PhaseObservation, SilentAdversary, SlotObservation,
    Transmission,
};
pub use channel::{
    resolve_for_listener, resolve_for_listener_on, ChannelLoad, IdSet, JamDirective, JamPlan,
    JamPlanIntoIter,
};
pub use energy::{Budget, ChargeOutcome, CostBreakdown, EnergyLedger, Op};
pub use engine::{ChannelStats, EngineConfig, EngineScratch, ExactEngine, RunReport, StopReason};
pub use message::{Payload, PayloadKind};
pub use participant::{Action, NodeProtocol, ParticipantId, Reception};
pub use slot::Slot;
pub use soa::{run_gossip_soa_in, run_gossip_soa_with, GossipSoaScratch, GossipSpec, WakeQueue};
pub use spectrum::{ChannelId, Spectrum};
pub use trace::{SlotRecord, Trace};
