//! Energy accounting: budgets, meters, and the ledger.
//!
//! Energy is *the* resource in resource-competitive analysis: the paper's
//! guarantees are statements about how much each side spends. The ledger
//! enforces budgets strictly — a correct node whose budget is exhausted
//! sleeps (the engine notifies its protocol), and a broke Carol's jam
//! directives fizzle, which is precisely how the protocol eventually
//! reaches an unblockable round (Lemma 11).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::spectrum::{ChannelId, Spectrum};

/// An energy budget: a cap on total units spendable, or unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget(Option<u64>);

impl Budget {
    /// A budget of `units`.
    #[must_use]
    pub const fn limited(units: u64) -> Self {
        Budget(Some(units))
    }

    /// No cap.
    #[must_use]
    pub const fn unlimited() -> Self {
        Budget(None)
    }

    /// The cap, if any.
    #[must_use]
    pub const fn cap(self) -> Option<u64> {
        self.0
    }

    /// Whether `spent + 1` would exceed this budget.
    #[must_use]
    pub fn allows(self, spent: u64) -> bool {
        match self.0 {
            None => true,
            Some(cap) => spent < cap,
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => write!(f, "∞"),
            Some(cap) => write!(f, "{cap}"),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// The chargeable operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Transmitting a frame.
    Send,
    /// Receiving for one slot.
    Listen,
    /// Jamming one slot (adversary only).
    Jam,
}

/// Result of a charge attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeOutcome {
    /// The unit was charged.
    Charged,
    /// The budget is exhausted; the operation must not take effect.
    Refused,
}

impl ChargeOutcome {
    /// Whether the charge went through.
    #[must_use]
    pub fn is_charged(self) -> bool {
        matches!(self, ChargeOutcome::Charged)
    }
}

/// Per-participant spend, broken down by operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Units spent transmitting.
    pub sends: u64,
    /// Units spent listening.
    pub listens: u64,
    /// Units spent jamming (zero for correct participants).
    pub jams: u64,
}

impl CostBreakdown {
    /// Total units spent.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sends + self.listens + self.jams
    }

    /// Adds another breakdown (for pooling Byzantine devices).
    pub fn absorb(&mut self, other: &CostBreakdown) {
        self.sends += other.sends;
        self.listens += other.listens;
        self.jams += other.jams;
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} units (send {}, listen {}, jam {})",
            self.total(),
            self.sends,
            self.listens,
            self.jams
        )
    }
}

/// A single participant's meter: budget plus running breakdown.
#[derive(Debug, Clone, Copy, Default)]
struct Meter {
    budget: Budget,
    spent: CostBreakdown,
    refusals: u64,
}

impl Meter {
    fn try_charge(&mut self, op: Op) -> ChargeOutcome {
        if !self.budget.allows(self.spent.total()) {
            self.refusals += 1;
            return ChargeOutcome::Refused;
        }
        match op {
            Op::Send => self.spent.sends += 1,
            Op::Listen => self.spent.listens += 1,
            Op::Jam => self.spent.jams += 1,
        }
        ChargeOutcome::Charged
    }

    /// Charges up to `count` units of `op` in one step, returning how many
    /// were granted; the shortfall is recorded as refusals one-for-one.
    fn try_charge_many(&mut self, op: Op, count: u64) -> u64 {
        let granted = match self.budget.cap() {
            None => count,
            Some(cap) => cap.saturating_sub(self.spent.total()).min(count),
        };
        match op {
            Op::Send => self.spent.sends += granted,
            Op::Listen => self.spent.listens += granted,
            Op::Jam => self.spent.jams += granted,
        }
        self.refusals += count - granted;
        granted
    }
}

/// The simulation's energy ledger: one meter per correct participant plus
/// Carol's pooled meter, with per-channel spend breakdowns on both sides.
///
/// Budgets are pooled across channels (energy is energy), but every
/// charge names the channel it lands on, so "making evildoers pay"
/// accounting survives the multi-channel split: after a run,
/// [`carol_channel_spend`](Self::carol_channel_spend) shows exactly how
/// her budget was divided across the spectrum. The channel-less
/// [`charge_participant`](Self::charge_participant) /
/// [`charge_carol`](Self::charge_carol) shims land on
/// [`ChannelId::ZERO`].
///
/// # Example
///
/// ```
/// use rcb_radio::{Budget, EnergyLedger, Op, ParticipantId};
///
/// let mut ledger = EnergyLedger::new(vec![Budget::limited(2)], Budget::limited(1));
/// let p = ParticipantId::new(0);
/// assert!(ledger.charge_participant(p, Op::Listen).is_charged());
/// assert!(ledger.charge_participant(p, Op::Send).is_charged());
/// assert!(!ledger.charge_participant(p, Op::Send).is_charged()); // broke
/// assert!(ledger.charge_carol(Op::Jam).is_charged());
/// assert!(!ledger.charge_carol(Op::Jam).is_charged()); // Carol broke too
/// ```
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    participants: Vec<Meter>,
    carol: Meter,
    spectrum: Spectrum,
    /// Aggregate correct-side spend per channel (all participants pooled).
    correct_by_channel: Vec<CostBreakdown>,
    /// Carol's spend per channel.
    carol_by_channel: Vec<CostBreakdown>,
}

impl Default for EnergyLedger {
    /// An empty single-channel ledger (no participants, unlimited Carol) —
    /// the placeholder state scratch holders start from before the first
    /// [`reset_on`](Self::reset_on).
    fn default() -> Self {
        Self::from_budgets_on(&[], Budget::unlimited(), Spectrum::single())
    }
}

impl EnergyLedger {
    /// Creates a single-channel ledger with the given per-participant
    /// budgets and Carol's pooled budget.
    #[must_use]
    pub fn new(participant_budgets: Vec<Budget>, carol_budget: Budget) -> Self {
        Self::from_budgets(&participant_budgets, carol_budget)
    }

    /// Like [`new`](Self::new), but borrowing the budgets — callers that
    /// keep a budget vector alive across runs (batched trials) build each
    /// run's ledger without an intermediate copy of it.
    #[must_use]
    pub fn from_budgets(participant_budgets: &[Budget], carol_budget: Budget) -> Self {
        Self::from_budgets_on(participant_budgets, carol_budget, Spectrum::single())
    }

    /// A ledger accounting over an explicit [`Spectrum`].
    #[must_use]
    pub fn from_budgets_on(
        participant_budgets: &[Budget],
        carol_budget: Budget,
        spectrum: Spectrum,
    ) -> Self {
        let channels = spectrum.channel_count() as usize;
        Self {
            participants: participant_budgets
                .iter()
                .map(|&budget| Meter {
                    budget,
                    ..Meter::default()
                })
                .collect(),
            carol: Meter {
                budget: carol_budget,
                ..Meter::default()
            },
            spectrum,
            correct_by_channel: vec![CostBreakdown::default(); channels],
            carol_by_channel: vec![CostBreakdown::default(); channels],
        }
    }

    /// Rewinds this ledger to the pre-run state of
    /// [`from_budgets_on`](Self::from_budgets_on) **in place**: meters and
    /// per-channel tables are rebuilt inside their existing allocations.
    /// This is the batched-trials path — one ledger per worker, reset per
    /// trial, zero allocation after the first run at a given shape.
    pub fn reset_on(
        &mut self,
        participant_budgets: &[Budget],
        carol_budget: Budget,
        spectrum: Spectrum,
    ) {
        self.participants.clear();
        self.participants
            .extend(participant_budgets.iter().map(|&budget| Meter {
                budget,
                ..Meter::default()
            }));
        self.carol = Meter {
            budget: carol_budget,
            ..Meter::default()
        };
        self.spectrum = spectrum;
        let channels = spectrum.channel_count() as usize;
        self.correct_by_channel.clear();
        self.correct_by_channel
            .resize(channels, CostBreakdown::default());
        self.carol_by_channel.clear();
        self.carol_by_channel
            .resize(channels, CostBreakdown::default());
    }

    /// Number of correct participants tracked.
    #[must_use]
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// The spectrum this ledger accounts over.
    #[must_use]
    pub fn spectrum(&self) -> Spectrum {
        self.spectrum
    }

    /// Attempts to charge one unit to a correct participant, on channel 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this ledger.
    pub fn charge_participant(&mut self, id: impl ParticipantIdLike, op: Op) -> ChargeOutcome {
        self.charge_participant_on(id, op, ChannelId::ZERO)
    }

    /// Attempts to charge one unit to a correct participant for an
    /// operation on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, or `channel` is outside the
    /// ledger's spectrum.
    pub fn charge_participant_on(
        &mut self,
        id: impl ParticipantIdLike,
        op: Op,
        channel: ChannelId,
    ) -> ChargeOutcome {
        let idx = id.into_index();
        let outcome = self.participants[idx].try_charge(op);
        if outcome.is_charged() {
            charge_channel(&mut self.correct_by_channel, channel, op);
        }
        outcome
    }

    /// Bulk-charges `count` units of `op` to a correct participant on
    /// `channel` in one call, returning how many units were actually
    /// charged.
    ///
    /// This is the era-2 engine's settlement path: a sleep-skipping run
    /// defers a dormant node's provably-inert listens and charges the
    /// binomially-sampled total here when the node leaves the dormant
    /// pool. Budget enforcement matches the unit path in aggregate — up
    /// to the remaining budget is granted and every unit beyond it is
    /// recorded as a refusal — though *which* of an interleaved
    /// sequence's units get refused is coarser than charging one at a
    /// time (the gossip workloads that use this run nodes on unlimited
    /// budgets, where the two are indistinguishable).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, or `channel` is outside the
    /// ledger's spectrum.
    pub fn charge_participant_many_on(
        &mut self,
        id: impl ParticipantIdLike,
        op: Op,
        count: u64,
        channel: ChannelId,
    ) -> u64 {
        let idx = id.into_index();
        let granted = self.participants[idx].try_charge_many(op, count);
        if granted > 0 {
            let entry = &mut self.correct_by_channel[channel.index() as usize];
            match op {
                Op::Send => entry.sends += granted,
                Op::Listen => entry.listens += granted,
                Op::Jam => entry.jams += granted,
            }
        }
        granted
    }

    /// Attempts to charge one unit to Carol's pool, on channel 0.
    pub fn charge_carol(&mut self, op: Op) -> ChargeOutcome {
        self.charge_carol_on(op, ChannelId::ZERO)
    }

    /// Attempts to charge one unit to Carol's pool for an operation on
    /// `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the ledger's spectrum.
    pub fn charge_carol_on(&mut self, op: Op, channel: ChannelId) -> ChargeOutcome {
        let outcome = self.carol.try_charge(op);
        if outcome.is_charged() {
            charge_channel(&mut self.carol_by_channel, channel, op);
        }
        outcome
    }

    /// A participant's spend so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn participant_spend(&self, id: impl ParticipantIdLike) -> CostBreakdown {
        self.participants[id.into_index()].spent
    }

    /// How many operations a participant had refused for lack of budget.
    #[must_use]
    pub fn participant_refusals(&self, id: impl ParticipantIdLike) -> u64 {
        self.participants[id.into_index()].refusals
    }

    /// Carol's pooled spend so far.
    #[must_use]
    pub fn carol_spend(&self) -> CostBreakdown {
        self.carol.spent
    }

    /// Carol's remaining budget, if capped.
    #[must_use]
    pub fn carol_remaining(&self) -> Option<u64> {
        self.carol
            .budget
            .cap()
            .map(|cap| cap.saturating_sub(self.carol.spent.total()))
    }

    /// Snapshot of every participant's spend.
    #[must_use]
    pub fn all_participant_spend(&self) -> Vec<CostBreakdown> {
        self.participants.iter().map(|m| m.spent).collect()
    }

    /// Aggregate correct-side spend per channel (index = channel index).
    #[must_use]
    pub fn correct_channel_spend(&self) -> &[CostBreakdown] {
        &self.correct_by_channel
    }

    /// Carol's spend per channel (index = channel index) — how her
    /// budget was split across the spectrum.
    #[must_use]
    pub fn carol_channel_spend(&self) -> &[CostBreakdown] {
        &self.carol_by_channel
    }
}

/// Records a successful charge in a per-channel breakdown table.
fn charge_channel(table: &mut [CostBreakdown], channel: ChannelId, op: Op) {
    let entry = &mut table[channel.index() as usize];
    match op {
        Op::Send => entry.sends += 1,
        Op::Listen => entry.listens += 1,
        Op::Jam => entry.jams += 1,
    }
}

/// Anything convertible to a roster index (lets the ledger be used with
/// either raw indices or [`crate::ParticipantId`]).
pub trait ParticipantIdLike: Copy {
    /// The roster index.
    fn into_index(self) -> usize;
}

impl ParticipantIdLike for usize {
    fn into_index(self) -> usize {
        self
    }
}

impl ParticipantIdLike for crate::participant::ParticipantId {
    fn into_index(self) -> usize {
        self.index() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantId;

    #[test]
    fn budget_semantics() {
        assert!(Budget::unlimited().allows(u64::MAX - 1));
        assert!(Budget::limited(3).allows(2));
        assert!(!Budget::limited(3).allows(3));
        assert_eq!(Budget::limited(3).cap(), Some(3));
        assert_eq!(Budget::unlimited().to_string(), "∞");
        assert_eq!(Budget::limited(5).to_string(), "5");
    }

    #[test]
    fn breakdown_totals_and_absorb() {
        let mut a = CostBreakdown {
            sends: 1,
            listens: 2,
            jams: 0,
        };
        let b = CostBreakdown {
            sends: 0,
            listens: 5,
            jams: 7,
        };
        a.absorb(&b);
        assert_eq!(a.total(), 15);
        assert_eq!(a.listens, 7);
        assert_eq!(a.jams, 7);
    }

    #[test]
    fn ledger_enforces_participant_budget() {
        let mut ledger = EnergyLedger::new(vec![Budget::limited(2)], Budget::unlimited());
        let p = ParticipantId::new(0);
        assert!(ledger.charge_participant(p, Op::Listen).is_charged());
        assert!(ledger.charge_participant(p, Op::Listen).is_charged());
        assert!(!ledger.charge_participant(p, Op::Listen).is_charged());
        assert_eq!(ledger.participant_spend(p).total(), 2);
        assert_eq!(ledger.participant_refusals(p), 1);
    }

    #[test]
    fn ledger_enforces_carol_budget() {
        let mut ledger = EnergyLedger::new(vec![], Budget::limited(2));
        assert!(ledger.charge_carol(Op::Jam).is_charged());
        assert_eq!(ledger.carol_remaining(), Some(1));
        assert!(ledger.charge_carol(Op::Send).is_charged());
        assert!(!ledger.charge_carol(Op::Jam).is_charged());
        assert_eq!(ledger.carol_spend().total(), 2);
        assert_eq!(ledger.carol_spend().jams, 1);
        assert_eq!(ledger.carol_spend().sends, 1);
        assert_eq!(ledger.carol_remaining(), Some(0));
    }

    #[test]
    fn unlimited_budget_never_refuses() {
        let mut ledger = EnergyLedger::new(vec![Budget::unlimited()], Budget::unlimited());
        for _ in 0..10_000 {
            assert!(ledger.charge_participant(0usize, Op::Send).is_charged());
        }
        assert_eq!(ledger.participant_spend(0usize).sends, 10_000);
    }

    #[test]
    fn per_channel_breakdowns_track_where_energy_lands() {
        let mut ledger = EnergyLedger::from_budgets_on(
            &[Budget::unlimited()],
            Budget::limited(3),
            Spectrum::new(3),
        );
        assert_eq!(ledger.spectrum().channel_count(), 3);
        let c0 = ChannelId::new(0);
        let c2 = ChannelId::new(2);
        assert!(ledger
            .charge_participant_on(0usize, Op::Listen, c2)
            .is_charged());
        assert!(ledger.charge_carol_on(Op::Jam, c0).is_charged());
        assert!(ledger.charge_carol_on(Op::Jam, c2).is_charged());
        assert!(ledger.charge_carol_on(Op::Send, c2).is_charged());
        // Pool is now exhausted: the refused charge must not leak into
        // the per-channel table.
        assert!(!ledger.charge_carol_on(Op::Jam, c0).is_charged());
        assert_eq!(ledger.correct_channel_spend()[2].listens, 1);
        assert_eq!(ledger.correct_channel_spend()[0].total(), 0);
        assert_eq!(ledger.carol_channel_spend()[0].jams, 1);
        assert_eq!(ledger.carol_channel_spend()[2].jams, 1);
        assert_eq!(ledger.carol_channel_spend()[2].sends, 1);
        // Per-channel totals reconcile with the pooled meter.
        let by_channel: u64 = ledger
            .carol_channel_spend()
            .iter()
            .map(CostBreakdown::total)
            .sum();
        assert_eq!(by_channel, ledger.carol_spend().total());
    }

    #[test]
    fn channel_zero_shims_are_the_single_channel_path() {
        let mut ledger = EnergyLedger::new(vec![Budget::unlimited()], Budget::unlimited());
        assert!(ledger.charge_participant(0usize, Op::Send).is_charged());
        assert!(ledger.charge_carol(Op::Jam).is_charged());
        assert_eq!(ledger.correct_channel_spend().len(), 1);
        assert_eq!(ledger.correct_channel_spend()[0].sends, 1);
        assert_eq!(ledger.carol_channel_spend()[0].jams, 1);
    }

    #[test]
    fn bulk_charge_matches_unit_charges_in_aggregate() {
        let mut unit = EnergyLedger::from_budgets_on(
            &[Budget::limited(5)],
            Budget::unlimited(),
            Spectrum::new(2),
        );
        let mut bulk = unit.clone();
        let ch = ChannelId::new(1);
        for _ in 0..8 {
            let _ = unit.charge_participant_on(0usize, Op::Listen, ch);
        }
        let granted = bulk.charge_participant_many_on(0usize, Op::Listen, 8, ch);
        assert_eq!(granted, 5);
        assert_eq!(
            unit.participant_spend(0usize),
            bulk.participant_spend(0usize)
        );
        assert_eq!(
            unit.participant_refusals(0usize),
            bulk.participant_refusals(0usize)
        );
        assert_eq!(unit.correct_channel_spend(), bulk.correct_channel_spend());
        // Unlimited budgets grant everything, touching only the named
        // channel.
        let mut free = EnergyLedger::from_budgets_on(
            &[Budget::unlimited()],
            Budget::unlimited(),
            Spectrum::new(2),
        );
        assert_eq!(
            free.charge_participant_many_on(0usize, Op::Listen, 1_000, ch),
            1_000
        );
        assert_eq!(free.correct_channel_spend()[1].listens, 1_000);
        assert_eq!(free.correct_channel_spend()[0].total(), 0);
        assert_eq!(free.participant_refusals(0usize), 0);
    }

    #[test]
    fn independent_meters() {
        let mut ledger = EnergyLedger::new(
            vec![Budget::limited(1), Budget::limited(1)],
            Budget::unlimited(),
        );
        assert!(ledger.charge_participant(0usize, Op::Send).is_charged());
        // Participant 0 being broke must not affect participant 1.
        assert!(!ledger.charge_participant(0usize, Op::Send).is_charged());
        assert!(ledger.charge_participant(1usize, Op::Send).is_charged());
    }
}
