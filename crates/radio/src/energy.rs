//! Energy accounting: budgets, meters, and the ledger.
//!
//! Energy is *the* resource in resource-competitive analysis: the paper's
//! guarantees are statements about how much each side spends. The ledger
//! enforces budgets strictly — a correct node whose budget is exhausted
//! sleeps (the engine notifies its protocol), and a broke Carol's jam
//! directives fizzle, which is precisely how the protocol eventually
//! reaches an unblockable round (Lemma 11).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An energy budget: a cap on total units spendable, or unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget(Option<u64>);

impl Budget {
    /// A budget of `units`.
    #[must_use]
    pub const fn limited(units: u64) -> Self {
        Budget(Some(units))
    }

    /// No cap.
    #[must_use]
    pub const fn unlimited() -> Self {
        Budget(None)
    }

    /// The cap, if any.
    #[must_use]
    pub const fn cap(self) -> Option<u64> {
        self.0
    }

    /// Whether `spent + 1` would exceed this budget.
    #[must_use]
    pub fn allows(self, spent: u64) -> bool {
        match self.0 {
            None => true,
            Some(cap) => spent < cap,
        }
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => write!(f, "∞"),
            Some(cap) => write!(f, "{cap}"),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// The chargeable operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Transmitting a frame.
    Send,
    /// Receiving for one slot.
    Listen,
    /// Jamming one slot (adversary only).
    Jam,
}

/// Result of a charge attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeOutcome {
    /// The unit was charged.
    Charged,
    /// The budget is exhausted; the operation must not take effect.
    Refused,
}

impl ChargeOutcome {
    /// Whether the charge went through.
    #[must_use]
    pub fn is_charged(self) -> bool {
        matches!(self, ChargeOutcome::Charged)
    }
}

/// Per-participant spend, broken down by operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Units spent transmitting.
    pub sends: u64,
    /// Units spent listening.
    pub listens: u64,
    /// Units spent jamming (zero for correct participants).
    pub jams: u64,
}

impl CostBreakdown {
    /// Total units spent.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sends + self.listens + self.jams
    }

    /// Adds another breakdown (for pooling Byzantine devices).
    pub fn absorb(&mut self, other: &CostBreakdown) {
        self.sends += other.sends;
        self.listens += other.listens;
        self.jams += other.jams;
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} units (send {}, listen {}, jam {})",
            self.total(),
            self.sends,
            self.listens,
            self.jams
        )
    }
}

/// A single participant's meter: budget plus running breakdown.
#[derive(Debug, Clone, Copy, Default)]
struct Meter {
    budget: Budget,
    spent: CostBreakdown,
    refusals: u64,
}

impl Meter {
    fn try_charge(&mut self, op: Op) -> ChargeOutcome {
        if !self.budget.allows(self.spent.total()) {
            self.refusals += 1;
            return ChargeOutcome::Refused;
        }
        match op {
            Op::Send => self.spent.sends += 1,
            Op::Listen => self.spent.listens += 1,
            Op::Jam => self.spent.jams += 1,
        }
        ChargeOutcome::Charged
    }
}

/// The simulation's energy ledger: one meter per correct participant plus
/// Carol's pooled meter.
///
/// # Example
///
/// ```
/// use rcb_radio::{Budget, EnergyLedger, Op, ParticipantId};
///
/// let mut ledger = EnergyLedger::new(vec![Budget::limited(2)], Budget::limited(1));
/// let p = ParticipantId::new(0);
/// assert!(ledger.charge_participant(p, Op::Listen).is_charged());
/// assert!(ledger.charge_participant(p, Op::Send).is_charged());
/// assert!(!ledger.charge_participant(p, Op::Send).is_charged()); // broke
/// assert!(ledger.charge_carol(Op::Jam).is_charged());
/// assert!(!ledger.charge_carol(Op::Jam).is_charged()); // Carol broke too
/// ```
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    participants: Vec<Meter>,
    carol: Meter,
}

impl EnergyLedger {
    /// Creates a ledger with the given per-participant budgets and Carol's
    /// pooled budget.
    #[must_use]
    pub fn new(participant_budgets: Vec<Budget>, carol_budget: Budget) -> Self {
        Self::from_budgets(&participant_budgets, carol_budget)
    }

    /// Like [`new`](Self::new), but borrowing the budgets — callers that
    /// keep a budget vector alive across runs (batched trials) build each
    /// run's ledger without an intermediate copy of it.
    #[must_use]
    pub fn from_budgets(participant_budgets: &[Budget], carol_budget: Budget) -> Self {
        Self {
            participants: participant_budgets
                .iter()
                .map(|&budget| Meter {
                    budget,
                    ..Meter::default()
                })
                .collect(),
            carol: Meter {
                budget: carol_budget,
                ..Meter::default()
            },
        }
    }

    /// Number of correct participants tracked.
    #[must_use]
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Attempts to charge one unit to a correct participant.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this ledger.
    pub fn charge_participant(&mut self, id: impl ParticipantIdLike, op: Op) -> ChargeOutcome {
        let idx = id.into_index();
        self.participants[idx].try_charge(op)
    }

    /// Attempts to charge one unit to Carol's pool.
    pub fn charge_carol(&mut self, op: Op) -> ChargeOutcome {
        self.carol.try_charge(op)
    }

    /// A participant's spend so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn participant_spend(&self, id: impl ParticipantIdLike) -> CostBreakdown {
        self.participants[id.into_index()].spent
    }

    /// How many operations a participant had refused for lack of budget.
    #[must_use]
    pub fn participant_refusals(&self, id: impl ParticipantIdLike) -> u64 {
        self.participants[id.into_index()].refusals
    }

    /// Carol's pooled spend so far.
    #[must_use]
    pub fn carol_spend(&self) -> CostBreakdown {
        self.carol.spent
    }

    /// Carol's remaining budget, if capped.
    #[must_use]
    pub fn carol_remaining(&self) -> Option<u64> {
        self.carol
            .budget
            .cap()
            .map(|cap| cap.saturating_sub(self.carol.spent.total()))
    }

    /// Snapshot of every participant's spend.
    #[must_use]
    pub fn all_participant_spend(&self) -> Vec<CostBreakdown> {
        self.participants.iter().map(|m| m.spent).collect()
    }
}

/// Anything convertible to a roster index (lets the ledger be used with
/// either raw indices or [`crate::ParticipantId`]).
pub trait ParticipantIdLike: Copy {
    /// The roster index.
    fn into_index(self) -> usize;
}

impl ParticipantIdLike for usize {
    fn into_index(self) -> usize {
        self
    }
}

impl ParticipantIdLike for crate::participant::ParticipantId {
    fn into_index(self) -> usize {
        self.index() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantId;

    #[test]
    fn budget_semantics() {
        assert!(Budget::unlimited().allows(u64::MAX - 1));
        assert!(Budget::limited(3).allows(2));
        assert!(!Budget::limited(3).allows(3));
        assert_eq!(Budget::limited(3).cap(), Some(3));
        assert_eq!(Budget::unlimited().to_string(), "∞");
        assert_eq!(Budget::limited(5).to_string(), "5");
    }

    #[test]
    fn breakdown_totals_and_absorb() {
        let mut a = CostBreakdown {
            sends: 1,
            listens: 2,
            jams: 0,
        };
        let b = CostBreakdown {
            sends: 0,
            listens: 5,
            jams: 7,
        };
        a.absorb(&b);
        assert_eq!(a.total(), 15);
        assert_eq!(a.listens, 7);
        assert_eq!(a.jams, 7);
    }

    #[test]
    fn ledger_enforces_participant_budget() {
        let mut ledger = EnergyLedger::new(vec![Budget::limited(2)], Budget::unlimited());
        let p = ParticipantId::new(0);
        assert!(ledger.charge_participant(p, Op::Listen).is_charged());
        assert!(ledger.charge_participant(p, Op::Listen).is_charged());
        assert!(!ledger.charge_participant(p, Op::Listen).is_charged());
        assert_eq!(ledger.participant_spend(p).total(), 2);
        assert_eq!(ledger.participant_refusals(p), 1);
    }

    #[test]
    fn ledger_enforces_carol_budget() {
        let mut ledger = EnergyLedger::new(vec![], Budget::limited(2));
        assert!(ledger.charge_carol(Op::Jam).is_charged());
        assert_eq!(ledger.carol_remaining(), Some(1));
        assert!(ledger.charge_carol(Op::Send).is_charged());
        assert!(!ledger.charge_carol(Op::Jam).is_charged());
        assert_eq!(ledger.carol_spend().total(), 2);
        assert_eq!(ledger.carol_spend().jams, 1);
        assert_eq!(ledger.carol_spend().sends, 1);
        assert_eq!(ledger.carol_remaining(), Some(0));
    }

    #[test]
    fn unlimited_budget_never_refuses() {
        let mut ledger = EnergyLedger::new(vec![Budget::unlimited()], Budget::unlimited());
        for _ in 0..10_000 {
            assert!(ledger.charge_participant(0usize, Op::Send).is_charged());
        }
        assert_eq!(ledger.participant_spend(0usize).sends, 10_000);
    }

    #[test]
    fn independent_meters() {
        let mut ledger = EnergyLedger::new(
            vec![Budget::limited(1), Budget::limited(1)],
            Budget::unlimited(),
        );
        assert!(ledger.charge_participant(0usize, Op::Send).is_charged());
        // Participant 0 being broke must not affect participant 1.
        assert!(!ledger.charge_participant(0usize, Op::Send).is_charged());
        assert!(ledger.charge_participant(1usize, Op::Send).is_charged());
    }
}
