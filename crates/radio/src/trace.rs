//! Slot-level event tracing.
//!
//! A [`Trace`] records one compact [`SlotRecord`] per slot, capped so long
//! runs cannot exhaust memory. Traces support debugging, the blocked-phase
//! post-mortems in tests, and the EXPERIMENTS.md narrative plots.

use serde::{Deserialize, Serialize};

use crate::slot::Slot;

/// Compact per-slot summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// The slot index.
    pub slot: u64,
    /// Number of frames transmitted (correct + Byzantine), saturating.
    pub transmissions: u16,
    /// Number of channels on which Carol's jam executed (0 or 1 in the
    /// single-channel model).
    pub jammed_channels: u16,
    /// Number of correct participants listening.
    pub listeners: u32,
    /// Number of listeners that received a frame cleanly.
    pub delivered: u32,
}

impl SlotRecord {
    /// Whether any of Carol's jam plan executed this slot.
    #[must_use]
    pub fn jammed(&self) -> bool {
        self.jammed_channels > 0
    }

    /// Whether the slot was noisy for at least some listener (activity or
    /// jamming present).
    #[must_use]
    pub fn had_activity(&self) -> bool {
        self.transmissions > 0 || self.jammed()
    }
}

/// A bounded in-memory trace of slot records.
///
/// # Example
///
/// ```
/// use rcb_radio::{SlotRecord, Trace};
/// let mut trace = Trace::with_capacity(2);
/// for i in 0..5 {
///     trace.push(SlotRecord {
///         slot: i, transmissions: 0, jammed_channels: 0, listeners: 0, delivered: 0,
///     });
/// }
/// assert_eq!(trace.len(), 2);           // capped
/// assert_eq!(trace.dropped(), 3);       // but counted
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<SlotRecord>,
    cap: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `cap` records (the earliest ones).
    ///
    /// `cap == 0` (tracing disabled — the engine's default) is guaranteed
    /// to allocate nothing; a nonzero cap pre-reserves the record buffer
    /// up front (bounded, so an absurd cap cannot OOM before a single
    /// record exists), sparing the slot loop incremental regrowth.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        /// Pre-reservation bound: 24 bytes/record ⇒ at most ~6 MiB up
        /// front; larger traces grow on demand.
        const MAX_PREALLOC_RECORDS: usize = 1 << 18;
        let records = if cap == 0 {
            Vec::new()
        } else {
            Vec::with_capacity(cap.min(MAX_PREALLOC_RECORDS))
        };
        Self {
            records,
            cap,
            dropped: 0,
        }
    }

    /// Appends a record (dropped silently past the cap, but counted).
    pub fn push(&mut self, record: SlotRecord) {
        if self.records.len() < self.cap {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Records retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records dropped due to the cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records.
    #[must_use]
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Looks up the record for a slot (only works within the retained
    /// prefix).
    #[must_use]
    pub fn get(&self, slot: Slot) -> Option<&SlotRecord> {
        self.records
            .binary_search_by_key(&slot.index(), |r| r.slot)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Count of retained records where the jam executed.
    #[must_use]
    pub fn jammed_slots(&self) -> usize {
        self.records.iter().filter(|r| r.jammed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64, jammed: bool) -> SlotRecord {
        SlotRecord {
            slot,
            transmissions: 0,
            jammed_channels: u16::from(jammed),
            listeners: 0,
            delivered: 0,
        }
    }

    #[test]
    fn cap_is_enforced_and_counted() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.push(rec(i, false));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert!(!t.is_empty());
    }

    #[test]
    fn get_by_slot() {
        let mut t = Trace::with_capacity(10);
        for i in 0..5 {
            t.push(rec(i * 2, i % 2 == 0));
        }
        assert!(t.get(Slot::new(4)).is_some());
        assert!(t.get(Slot::new(5)).is_none());
    }

    #[test]
    fn jam_counting_and_activity() {
        let mut t = Trace::with_capacity(10);
        t.push(rec(0, true));
        t.push(rec(1, false));
        t.push(rec(2, true));
        assert_eq!(t.jammed_slots(), 2);
        assert!(rec(0, true).had_activity());
        assert!(!rec(1, false).had_activity());
        let active = SlotRecord {
            slot: 3,
            transmissions: 2,
            jammed_channels: 0,
            listeners: 0,
            delivered: 0,
        };
        assert!(active.had_activity());
    }
}
