//! Frames carried over the simulated channel.
//!
//! Radio frames carry no trustworthy origin: any device can put any bytes
//! on the air. Authenticity is carried *inside* the payload (the broadcast
//! message `m` travels as an [`rcb_auth::Signed`]), which is why
//! [`Payload`] has no sender field — exactly the paper's model, where
//! "correct nodes may be spoofed".

use std::fmt;

use rcb_auth::Signed;

/// A frame payload as heard on the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The authenticated broadcast message `m` (only Alice can mint a
    /// verifying instance; Carol can at most replay or tamper it).
    Broadcast(Signed),
    /// An unauthenticated negative acknowledgement ("I do not have `m`
    /// yet"). Spoofable by Carol — the request phase is designed around
    /// this.
    Nack,
    /// Unauthenticated decoy traffic (§4.1): content-free noise correct
    /// nodes emit so a reactive jammer cannot tell `m`-slots from chaff.
    Decoy,
    /// Arbitrary Byzantine junk: tampered copies of `m`, garbage bytes,
    /// fake look-alike traffic. The discriminant distinguishes variants so
    /// adversaries can emit distinct junk frames.
    Garbage(u64),
}

impl Payload {
    /// The kind of this payload, without its content.
    #[must_use]
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Broadcast(_) => PayloadKind::Broadcast,
            Payload::Nack => PayloadKind::Nack,
            Payload::Decoy => PayloadKind::Decoy,
            Payload::Garbage(_) => PayloadKind::Garbage,
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Broadcast(s) => write!(f, "broadcast({s})"),
            Payload::Nack => write!(f, "nack"),
            Payload::Decoy => write!(f, "decoy"),
            Payload::Garbage(x) => write!(f, "garbage({x})"),
        }
    }
}

/// Payload discriminant, for observation records and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// The broadcast message `m`.
    Broadcast,
    /// A negative acknowledgement.
    Nack,
    /// A decoy frame.
    Decoy,
    /// Byzantine junk.
    Garbage,
}

impl fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PayloadKind::Broadcast => "broadcast",
            PayloadKind::Nack => "nack",
            PayloadKind::Decoy => "decoy",
            PayloadKind::Garbage => "garbage",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_auth::{Authority, Payload as Bytes};

    #[test]
    fn kind_mapping() {
        let mut auth = Authority::new(0);
        let key = auth.issue_key();
        let signed = key.sign(&Bytes::from_static(b"m"));
        assert_eq!(Payload::Broadcast(signed).kind(), PayloadKind::Broadcast);
        assert_eq!(Payload::Nack.kind(), PayloadKind::Nack);
        assert_eq!(Payload::Decoy.kind(), PayloadKind::Decoy);
        assert_eq!(Payload::Garbage(3).kind(), PayloadKind::Garbage);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Payload::Nack.to_string(), "nack");
        assert_eq!(PayloadKind::Garbage.to_string(), "garbage");
    }
}
