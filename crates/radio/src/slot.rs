//! Slot indices.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A discrete time slot index.
///
/// Newtype over `u64` so slot arithmetic cannot be confused with counts or
/// energy units.
///
/// # Example
///
/// ```
/// use rcb_radio::Slot;
/// let s = Slot::new(10) + 5;
/// assert_eq!(s.index(), 15);
/// assert_eq!(s - Slot::new(10), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Slot(u64);

impl Slot {
    /// The first slot.
    pub const ZERO: Slot = Slot(0);

    /// Creates a slot from its index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Slot(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The next slot.
    #[must_use]
    pub const fn next(self) -> Self {
        Slot(self.0 + 1)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl From<u64> for Slot {
    fn from(v: u64) -> Self {
        Slot(v)
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl AddAssign<u64> for Slot {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Slot> for Slot {
    type Output = u64;
    /// Number of slots from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Slot) -> u64 {
        debug_assert!(rhs.0 <= self.0, "slot subtraction underflow");
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let s = Slot::new(5);
        assert_eq!((s + 3).index(), 8);
        assert_eq!(s.next().index(), 6);
        assert_eq!(Slot::new(9) - Slot::new(4), 5);
        let mut t = Slot::ZERO;
        t += 7;
        assert_eq!(t, Slot::new(7));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Slot::new(1) < Slot::new(2));
        assert_eq!(Slot::new(3).to_string(), "slot 3");
    }
}
