//! The era-2 sleep-skipping slot engine for gossip-shaped workloads.
//!
//! The era-1 engine ([`ExactEngine`](crate::ExactEngine)) walks every
//! live participant every slot — `O(n)` per slot even when almost every
//! node sleeps, which is the common case for the gossip baselines (an
//! uninformed node acts with probability `listen_p`, an informed relayer
//! with probability `λ/n`). This module re-architects that hot path
//! around structure-of-arrays state and event scheduling:
//!
//! * **SoA rosters** — informed flags, draw counters, and scheduling
//!   state live in contiguous arrays indexed by node id instead of being
//!   scattered across per-node state machines.
//! * **Counter-based RNG** ([`CounterRng`]) — a node's stream is a pure
//!   function of `(key, draw index)`, so skipping a node for thousands
//!   of slots costs nothing and never perturbs its stream.
//! * **Sleep-skipping senders** — each sender samples the gap to its
//!   next transmission geometrically and parks in a bucketed
//!   [`WakeQueue`]; the engine touches only nodes that act this slot.
//! * **Deferred listener settlement** — in a slot where no channel
//!   carries exactly one un-blanket-jammed transmission, every listener
//!   provably hears silence or noise, neither of which changes gossip
//!   state. Such *inert* slots are counted, not simulated; when a node
//!   leaves the dormant pool its inert listens are sampled in one
//!   binomial draw and bulk-charged. Slots where a frame *could*
//!   deliver materialize the full listener set exactly.
//!
//! The result is statistically equivalent to a naive per-slot roster
//! walk (the retired era-1 loop) but runs in time proportional to the
//! *events* in a run rather than `n × slots`. It is **not**
//! stream-compatible with that loop — fingerprints bumped to era 2.
//!
//! Exactness boundaries: per-slot listener *identities* are not
//! materialized in inert slots, so [`SlotObservation::listeners`] is
//! empty there (aggregate energy accounting is still exact). Tracing
//! (`trace_capacity > 0`) or an adversary returning `true` from
//! [`Adversary::wants_listener_identities`] forces full per-slot
//! materialization, restoring era-1 observability at era-1-like cost.
//! Traced and untraced runs of one seed are identically distributed but
//! not bit-identical.

use rand::Rng;
use rcb_rng::subset::sample_distinct;
use rcb_rng::{Binomial, CounterRng, Geometric, SeedTree};
use rcb_telemetry::{Collector, EngineProfile, MetricId, NoopCollector};

use crate::adversary::{Adversary, AdversaryCtx, SlotObservation};
use crate::channel::{resolve_for_listener_on, ChannelLoad, JamDirective, JamPlan};
use crate::energy::{Budget, EnergyLedger, Op};
use crate::engine::{ChannelStats, EngineConfig, RunReport, StopReason};
use crate::message::Payload;
use crate::participant::{ParticipantId, Reception};
use crate::slot::Slot;
use crate::spectrum::ChannelId;
use crate::trace::{SlotRecord, Trace};

/// Upper bound on wheel size — beyond this, far-future wakes alias into
/// earlier buckets and are skipped during drains (correctly, at a small
/// re-scan cost).
const MAX_BUCKETS: u64 = 1 << 16;

/// A calendar queue over slots: each pending wakeup is parked in the
/// bucket `slot & mask` of a power-of-two wheel.
///
/// The authoritative schedule is the `next_wake` array — one slot per
/// node, `u64::MAX` meaning unscheduled — so rescheduling or cancelling
/// is O(1): stale bucket entries are detected (entry slot ≠ the node's
/// authoritative slot) and dropped lazily during drains. Scheduling at
/// or past the queue's horizon is a no-op, which is how protocol
/// deadlines ("senders stop at the horizon") are enforced without a
/// per-wake branch at drain time.
#[derive(Debug, Default)]
pub struct WakeQueue {
    buckets: Vec<Vec<(u64, u32)>>,
    mask: u64,
    next_wake: Vec<u64>,
    horizon: u64,
}

impl WakeQueue {
    /// Creates an empty queue; [`reset`](Self::reset) shapes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-shapes the queue in place for `nodes` participants and wakes
    /// strictly below `horizon`, reusing bucket allocations.
    pub fn reset(&mut self, nodes: usize, horizon: u64) {
        let buckets = horizon.max(1).next_power_of_two().min(MAX_BUCKETS);
        self.reset_with_buckets(nodes, horizon, buckets);
    }

    /// [`reset`](Self::reset) with an explicit power-of-two bucket count
    /// (test hook for exercising bucket aliasing on short horizons).
    pub fn reset_with_buckets(&mut self, nodes: usize, horizon: u64, buckets: u64) {
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        self.buckets.resize_with(buckets as usize, Vec::new);
        self.buckets.truncate(buckets as usize);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.mask = buckets - 1;
        self.next_wake.clear();
        self.next_wake.resize(nodes, u64::MAX);
        self.horizon = horizon;
    }

    /// Schedules `node` to wake at `slot`, replacing any pending wake.
    /// Requests at or past the horizon leave the node unscheduled.
    pub fn schedule(&mut self, node: u32, slot: u64) {
        if slot >= self.horizon {
            self.next_wake[node as usize] = u64::MAX;
            return;
        }
        self.next_wake[node as usize] = slot;
        self.buckets[(slot & self.mask) as usize].push((slot, node));
    }

    /// Unschedules `node` (lazily — any bucket entry goes stale).
    pub fn cancel(&mut self, node: u32) {
        self.next_wake[node as usize] = u64::MAX;
    }

    /// The slot `node` will next wake at, if scheduled.
    #[must_use]
    pub fn next_wake(&self, node: u32) -> Option<u64> {
        let slot = self.next_wake[node as usize];
        (slot != u64::MAX).then_some(slot)
    }

    /// Moves every wake due exactly at `slot` into `out`, sorted by node
    /// id (ascending — the engine processes wakes in roster order).
    /// Stale entries encountered along the way are discarded; entries
    /// for future slots aliased into this bucket are kept.
    pub fn drain_due(&mut self, slot: u64, out: &mut Vec<(u64, u32)>) {
        out.clear();
        let bucket = &mut self.buckets[(slot & self.mask) as usize];
        let mut i = 0;
        while i < bucket.len() {
            let (s, node) = bucket[i];
            if self.next_wake[node as usize] != s {
                bucket.swap_remove(i);
            } else if s == slot {
                bucket.swap_remove(i);
                self.next_wake[node as usize] = u64::MAX;
                out.push((s, node));
            } else {
                i += 1;
            }
        }
        out.sort_unstable();
    }
}

/// Parameters of a gossip-shaped broadcast for the sleep-skipping
/// engine.
///
/// One driver covers the three gossip baselines:
///
/// | workload | `alice_send_p` | `listen_p` | `relay_p` | `hop_channels` | `terminate_on_inform` |
/// |----------|---------------:|-----------:|----------:|:--------------:|:---------------------:|
/// | naive    | 1.0            | 1.0        | 0.0       | no             | yes                   |
/// | epidemic | 0.5            | `listen_p` | `λ/n`     | no             | no                    |
/// | hopping  | 0.5            | `listen_p` | `λ/n`     | yes            | no                    |
#[derive(Debug, Clone)]
pub struct GossipSpec {
    /// Number of receiver nodes (the roster is `n + 1` with Alice at
    /// index 0).
    pub n: u64,
    /// Senders transmit only in slots `< horizon`; in the
    /// horizon-terminated mode (`terminate_on_inform = false`) every
    /// participant terminates once slot `horizon` has been acted.
    pub horizon: u64,
    /// Alice's per-slot transmit probability.
    pub alice_send_p: f64,
    /// An uninformed node's per-slot listen probability.
    pub listen_p: f64,
    /// An informed node's per-slot relay probability.
    pub relay_p: f64,
    /// Whether devices retune to a uniformly random channel per action
    /// (the hopping workload); otherwise everything lands on channel 0.
    pub hop_channels: bool,
    /// Naive mode: a node terminates the moment it is informed, and
    /// uninformed nodes keep listening past the horizon (up to the
    /// engine's slot cap) instead of stopping at the horizon.
    pub terminate_on_inform: bool,
    /// Epoch length in slots for epoch-structured hopping (the
    /// Chen–Zheng 2019 schedule). When nonzero (requires
    /// `hop_channels`), every device holds one channel for `epoch_len`
    /// consecutive slots and redraws only at epoch boundaries; an
    /// uninformed node that sampled noise on its channel during an
    /// epoch excludes that channel from its next draw (listener-side
    /// jam evasion — senders redraw uniformly, since a half-duplex
    /// radio senses nothing while transmitting). `0` disables the
    /// epoch structure (memoryless per-action hopping).
    pub epoch_len: u64,
    /// The frame Alice transmits and informed nodes relay.
    pub payload: Payload,
}

/// Reusable cross-run scratch for [`run_gossip_soa_in`] — the SoA state
/// arrays plus the per-slot buffers shared with the era-1 engine shape.
#[derive(Debug, Default)]
pub struct GossipSoaScratch {
    ledger: EnergyLedger,
    load: ChannelLoad,
    correct_sends: Vec<(ParticipantId, ChannelId, crate::message::PayloadKind)>,
    listeners: Vec<(ParticipantId, ChannelId)>,
    executed_jam: JamPlan,
    jammed_channels: Vec<ChannelId>,
    delivered_listeners: Vec<(ParticipantId, ChannelId)>,
    delivered_by_channel: Vec<u64>,
    rngs: Vec<CounterRng>,
    informed: Vec<bool>,
    pool: Vec<u32>,
    pool_pos: Vec<u32>,
    wake: WakeQueue,
    due: Vec<(u64, u32)>,
    ids: Vec<u32>,
    epoch_channel: Vec<u16>,
    epoch_detected: Vec<bool>,
    epoch_noisy: Vec<u64>,
}

impl GossipSoaScratch {
    /// Creates an empty scratch; buffers are shaped on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Draws the channel an action lands on.
#[inline]
fn pick_channel(rng: &mut CounterRng, hop: bool, channels: u16) -> ChannelId {
    if hop && channels > 1 {
        ChannelId::new(rng.gen_range(0..channels))
    } else {
        ChannelId::ZERO
    }
}

/// Samples and bulk-charges a node's listens over `inert` deferred
/// slots: total via one binomial, split across channels via the chained
/// conditional binomials of a uniform multinomial. Returns the listens
/// charged.
fn settle_inert(
    ledger: &mut EnergyLedger,
    rng: &mut CounterRng,
    node: u32,
    inert: u64,
    listen_p: f64,
    hop: bool,
    channels: u16,
) -> u64 {
    if inert == 0 || listen_p <= 0.0 {
        return 0;
    }
    let total = if listen_p >= 1.0 {
        inert
    } else {
        Binomial::new(inert, listen_p)
            .expect("listen_p is a probability")
            .sample(rng)
    };
    if total == 0 {
        return 0;
    }
    if !hop || channels == 1 {
        ledger.charge_participant_many_on(node as usize, Op::Listen, total, ChannelId::ZERO);
        return total;
    }
    let mut rem = total;
    for c in 0..channels - 1 {
        if rem == 0 {
            return total;
        }
        let take = Binomial::new(rem, 1.0 / f64::from(channels - c))
            .expect("1/(C-c) is a probability")
            .sample(rng);
        if take > 0 {
            ledger.charge_participant_many_on(node as usize, Op::Listen, take, ChannelId::new(c));
        }
        rem -= take;
    }
    if rem > 0 {
        ledger.charge_participant_many_on(
            node as usize,
            Op::Listen,
            rem,
            ChannelId::new(channels - 1),
        );
    }
    total
}

/// Epoch-mode settlement: a dormant node's deferred listens within one
/// epoch all land on its epoch channel, so the multinomial split of
/// [`settle_inert`] collapses to two binomials — one over the epoch's
/// noisy inert slots (which doubles as the node's jam-detection sample)
/// and one over the quiet remainder. Returns whether any noisy slot was
/// sampled, and the listens charged.
fn settle_epoch_inert(
    ledger: &mut EnergyLedger,
    rng: &mut CounterRng,
    node: u32,
    channel: u16,
    inert: u64,
    noisy: u64,
    listen_p: f64,
) -> (bool, u64) {
    if inert == 0 || listen_p <= 0.0 {
        return (false, 0);
    }
    let noisy = noisy.min(inert);
    let draw = |rng: &mut CounterRng, trials: u64| -> u64 {
        if trials == 0 {
            0
        } else if listen_p >= 1.0 {
            trials
        } else {
            Binomial::new(trials, listen_p)
                .expect("listen_p is a probability")
                .sample(rng)
        }
    };
    let heard_noise = draw(rng, noisy);
    let quiet = draw(rng, inert - noisy);
    let total = heard_noise + quiet;
    if total > 0 {
        ledger.charge_participant_many_on(
            node as usize,
            Op::Listen,
            total,
            ChannelId::new(channel),
        );
    }
    (heard_noise > 0, total)
}

/// Runs a gossip-shaped broadcast on the sleep-skipping engine and
/// returns a [`RunReport`] of the era-1 shape.
///
/// `is_informing` decides whether a delivered frame informs an
/// uninformed node (signature verification lives with the caller, which
/// keeps this driver payload-agnostic). `config` supplies the spectrum,
/// slot cap, and trace capacity exactly as for the era-1 engine; per
/// the module docs, `trace_capacity > 0` or an adversary that
/// [`wants_listener_identities`](Adversary::wants_listener_identities)
/// switches the run to full per-slot listener materialization.
///
/// # Panics
///
/// Panics if `budgets` is not `n + 1` long or a probability parameter
/// is outside `[0, 1]`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_soa_in(
    config: &EngineConfig,
    spec: &GossipSpec,
    budgets: &[Budget],
    carol_budget: Budget,
    adversary: &mut dyn Adversary,
    seeds: &SeedTree,
    is_informing: &mut dyn FnMut(&Payload) -> bool,
    scratch: &mut GossipSoaScratch,
) -> RunReport {
    run_gossip_soa_with(
        config,
        spec,
        budgets,
        carol_budget,
        adversary,
        seeds,
        is_informing,
        scratch,
        &NoopCollector,
    )
}

/// [`run_gossip_soa_in`] with a telemetry collector attached.
///
/// Telemetry is purely observational: the collector never draws from
/// the run's RNG streams, so instrumented and uninstrumented runs of
/// one seed are byte-identical. Hot-path counts accumulate in a plain
/// [`EngineProfile`] gated on one hoisted `enabled` bool and flush once
/// at run end; with the default [`NoopCollector`] the whole apparatus
/// folds away.
#[must_use]
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_gossip_soa_with<C: Collector + ?Sized>(
    config: &EngineConfig,
    spec: &GossipSpec,
    budgets: &[Budget],
    carol_budget: Budget,
    adversary: &mut dyn Adversary,
    seeds: &SeedTree,
    is_informing: &mut dyn FnMut(&Payload) -> bool,
    scratch: &mut GossipSoaScratch,
    collector: &C,
) -> RunReport {
    let n = spec.n as usize;
    assert_eq!(budgets.len(), n + 1, "one budget per participant required");
    for (label, p) in [
        ("alice_send_p", spec.alice_send_p),
        ("listen_p", spec.listen_p),
        ("relay_p", spec.relay_p),
    ] {
        assert!((0.0..=1.0).contains(&p), "{label} must be a probability");
    }
    assert!(
        spec.epoch_len == 0 || spec.hop_channels,
        "epoch_len requires hop_channels"
    );
    let spectrum = config.spectrum;
    let channels = spectrum.channel_count();
    let hop = spec.hop_channels;
    let materialize_all = config.trace_capacity > 0 || adversary.wants_listener_identities();
    // Telemetry: one hoisted bool gates all bookkeeping; counts batch in
    // a plain-integer profile and flush once after the loop.
    let telemetry = collector.enabled();
    let mut prof = EngineProfile::new();

    let GossipSoaScratch {
        ledger,
        load,
        correct_sends,
        listeners,
        executed_jam,
        jammed_channels,
        delivered_listeners,
        delivered_by_channel,
        rngs,
        informed,
        pool,
        pool_pos,
        wake,
        due,
        ids,
        epoch_channel,
        epoch_detected,
        epoch_noisy,
    } = scratch;

    // Re-shape every buffer in place (allocation-free once warm).
    ledger.reset_on(budgets, carol_budget, spectrum);
    load.reset_for(spectrum);
    executed_jam.clear();
    jammed_channels.clear();
    correct_sends.clear();
    listeners.clear();
    delivered_listeners.clear();
    delivered_by_channel.clear();
    delivered_by_channel.resize(channels as usize, 0);
    rngs.clear();
    rngs.extend((0..=n).map(|i| CounterRng::new(seeds.leaf_seed("participant", i as u64))));
    let mut engine_rng = CounterRng::new(seeds.leaf_seed("era2-engine", 0));
    informed.clear();
    informed.resize(n + 1, false);
    informed[0] = true;
    pool.clear();
    pool.extend(1..=n as u32);
    pool_pos.clear();
    pool_pos.resize(n + 1, u32::MAX);
    for (pos, &node) in pool.iter().enumerate() {
        pool_pos[node as usize] = pos as u32;
    }
    wake.reset(n + 1, spec.horizon);
    // Epoch-structured hopping: with one channel the schedule degenerates
    // to single-channel gossip and draws nothing — the stream stays
    // identical to the memoryless C=1 run.
    let epoch_mode = spec.epoch_len > 0 && hop && channels > 1;
    epoch_channel.clear();
    epoch_detected.clear();
    epoch_noisy.clear();
    let mut epoch_inert = 0u64;
    if epoch_mode {
        epoch_channel.extend((0..=n).map(|i| rngs[i].gen_range(0..channels)));
        epoch_detected.resize(n + 1, false);
        epoch_noisy.resize(channels as usize, 0);
    }
    let mut trace = Trace::with_capacity(config.trace_capacity);

    let alice_geo = (spec.alice_send_p > 0.0)
        .then(|| Geometric::new(spec.alice_send_p).expect("validated above"));
    let relay_geo =
        (spec.relay_p > 0.0).then(|| Geometric::new(spec.relay_p).expect("validated above"));
    if let Some(geo) = &alice_geo {
        let first = geo.sample(&mut rngs[0]);
        wake.schedule(0, first);
    }

    let mut inert_slots = 0u64;
    let mut jammed_slots = 0u64;
    let mut noisy_slots = 0u64;
    let mut slot_idx = 0u64;
    let stop_reason = loop {
        if slot_idx >= config.max_slots {
            break StopReason::SlotCapReached;
        }
        // Era-1 termination shape: Alice and (in horizon mode) the nodes
        // set their done flags while acting slot `horizon`, so from the
        // next slot's perspective everyone is terminated. Naive-mode
        // nodes terminate individually on informing.
        let alice_terminated = slot_idx > spec.horizon;
        let nodes_terminated = if spec.terminate_on_inform {
            pool.is_empty()
        } else {
            slot_idx > spec.horizon
        };
        if config.stop_when_all_terminated && alice_terminated && nodes_terminated {
            break StopReason::AllTerminated;
        }
        // Epoch boundary: settle every dormant node's deferred listens
        // for the finished epoch and redraw channels, in roster order.
        // An uninformed node that sampled noise evades its old channel;
        // everyone else redraws uniformly.
        if epoch_mode && slot_idx > 0 && slot_idx.is_multiple_of(spec.epoch_len) {
            if telemetry {
                // Every node redraws its epoch channel at the boundary.
                prof.rng_draws += n as u64 + 1;
            }
            for node in 0..=n as u32 {
                let i = node as usize;
                let prev = epoch_channel[i];
                if node > 0 && pool_pos[i] != u32::MAX {
                    let (heard, charged) = settle_epoch_inert(
                        ledger,
                        &mut rngs[i],
                        node,
                        prev,
                        epoch_inert,
                        epoch_noisy[prev as usize],
                        spec.listen_p,
                    );
                    if telemetry {
                        prof.settled_listens += charged;
                    }
                    let detected = epoch_detected[i] || heard;
                    let rng = &mut rngs[i];
                    epoch_channel[i] = if detected {
                        let r = rng.gen_range(0..channels - 1);
                        if r >= prev {
                            r + 1
                        } else {
                            r
                        }
                    } else {
                        rng.gen_range(0..channels)
                    };
                } else {
                    epoch_channel[i] = rngs[i].gen_range(0..channels);
                }
                epoch_detected[i] = false;
            }
            epoch_inert = 0;
            for count in epoch_noisy.iter_mut() {
                *count = 0;
            }
        }

        let slot = Slot::new(slot_idx);
        load.clear();
        correct_sends.clear();
        listeners.clear();
        executed_jam.clear();
        jammed_channels.clear();
        delivered_listeners.clear();

        // 1. Senders due this slot transmit and re-draw their next wake.
        wake.drain_due(slot_idx, due);
        if telemetry && !due.is_empty() {
            prof.wake_drains += 1;
            prof.wake_drained += due.len() as u64;
            collector.observe(MetricId::EngineWakeDrainBatch, due.len() as f64);
            // Each drained sender redraws its gap (when its rate is
            // nonzero) and, off the epoch schedule, its channel.
            let has_alice = u64::from(due.iter().any(|&(_, node)| node == 0));
            if alice_geo.is_some() {
                prof.rng_draws += has_alice;
            }
            if relay_geo.is_some() {
                prof.rng_draws += due.len() as u64 - has_alice;
            }
            if !epoch_mode && hop && channels > 1 {
                prof.rng_draws += due.len() as u64;
            }
        }
        for &(_, node) in due.iter() {
            let rng = &mut rngs[node as usize];
            let channel = if epoch_mode {
                ChannelId::new(epoch_channel[node as usize])
            } else {
                pick_channel(rng, hop, channels)
            };
            if ledger
                .charge_participant_on(node as usize, Op::Send, channel)
                .is_charged()
            {
                correct_sends.push((ParticipantId::new(node), channel, spec.payload.kind()));
                load.push(channel, spec.payload.clone());
            }
            let geo = if node == 0 { &alice_geo } else { &relay_geo };
            if let Some(geo) = geo {
                let gap = geo.sample(rng);
                wake.schedule(node, slot_idx.saturating_add(1).saturating_add(gap));
            }
        }

        // 2. Carol plans; reactive Carol additionally sees the RSSI bit.
        let ctx = AdversaryCtx {
            budget_remaining: ledger.carol_remaining(),
            spent: ledger.carol_spend().total(),
        };
        let mut mv = adversary.plan(slot, &ctx);
        if adversary.is_reactive() {
            let activity = !load.is_quiet();
            mv = adversary.react(slot, activity, mv);
        }
        for tx in mv.sends {
            assert!(
                spectrum.contains(tx.channel),
                "byzantine send targets {} outside the {spectrum}",
                tx.channel
            );
            if ledger.charge_carol_on(Op::Send, tx.channel).is_charged() {
                load.push(tx.channel, tx.payload);
            }
        }
        for (channel, directive) in mv.jam {
            assert!(
                spectrum.contains(channel),
                "jam directive targets {channel} outside the {spectrum}"
            );
            if ledger.charge_carol_on(Op::Jam, channel).is_charged() {
                executed_jam.set(channel, directive);
                jammed_channels.push(channel);
            }
        }
        let jam_executed = executed_jam.is_active();
        if jam_executed {
            jammed_slots += 1;
        }
        if jam_executed || !load.is_quiet() {
            noisy_slots += 1;
        }

        // 3. Listeners. A slot can change listener state (or deliver any
        //    frame) only if some channel carries exactly one transmission
        //    not blanket-jammed; otherwise every listen resolves to
        //    silence or noise and is deferred to settlement.
        let listen_open = spec.terminate_on_inform || slot_idx < spec.horizon;
        let mut delivered = 0u32;
        if listen_open && !pool.is_empty() {
            let mut interesting = materialize_all;
            if !interesting {
                for c in 0..channels {
                    let ch = ChannelId::new(c);
                    if load.on(ch).len() == 1
                        && !matches!(executed_jam.directive_on(ch), JamDirective::All)
                    {
                        interesting = true;
                        break;
                    }
                }
            }
            if interesting {
                // Materialize the exact listener set: count, identities,
                // and per-listener channels, in roster order.
                let u = pool.len() as u64;
                let k = if spec.listen_p >= 1.0 {
                    u
                } else if spec.listen_p <= 0.0 {
                    0
                } else {
                    Binomial::new(u, spec.listen_p)
                        .expect("validated above")
                        .sample(&mut engine_rng)
                };
                ids.clear();
                if k == u {
                    ids.extend_from_slice(pool);
                } else {
                    ids.extend(
                        sample_distinct(&mut engine_rng, u, k)
                            .into_iter()
                            .map(|i| pool[i as usize]),
                    );
                }
                ids.sort_unstable();
                if telemetry {
                    prof.listener_passes += 1;
                    prof.listeners_resolved += ids.len() as u64;
                    // One binomial for the count, one subset sample for
                    // identities, one channel pick per listener when
                    // hopping off the epoch schedule.
                    prof.rng_draws += 2;
                    if !epoch_mode && hop && channels > 1 {
                        prof.rng_draws += ids.len() as u64;
                    }
                }
                for &node in ids.iter() {
                    let rng = &mut rngs[node as usize];
                    let channel = if epoch_mode {
                        ChannelId::new(epoch_channel[node as usize])
                    } else {
                        pick_channel(rng, hop, channels)
                    };
                    if ledger
                        .charge_participant_on(node as usize, Op::Listen, channel)
                        .is_charged()
                    {
                        listeners.push((ParticipantId::new(node), channel));
                    }
                }
                for &(pid, channel) in listeners.iter() {
                    let reception = resolve_for_listener_on(pid, channel, load, executed_jam);
                    if epoch_mode && reception.is_noisy() {
                        epoch_detected[pid.index() as usize] = true;
                    }
                    if let Reception::Frame(payload) = reception {
                        delivered += 1;
                        delivered_by_channel[channel.index() as usize] += 1;
                        delivered_listeners.push((pid, channel));
                        let node = pid.index();
                        if !informed[node as usize] && is_informing(&payload) {
                            informed[node as usize] = true;
                            let pos = pool_pos[node as usize] as usize;
                            pool.swap_remove(pos);
                            if pos < pool.len() {
                                pool_pos[pool[pos] as usize] = pos as u32;
                            }
                            pool_pos[node as usize] = u32::MAX;
                            let charged = if epoch_mode {
                                // Prior epochs settled at their
                                // boundaries; only the current epoch's
                                // inert listens remain.
                                let ch = epoch_channel[node as usize];
                                settle_epoch_inert(
                                    ledger,
                                    &mut rngs[node as usize],
                                    node,
                                    ch,
                                    epoch_inert,
                                    epoch_noisy[ch as usize],
                                    spec.listen_p,
                                )
                                .1
                            } else {
                                settle_inert(
                                    ledger,
                                    &mut rngs[node as usize],
                                    node,
                                    inert_slots,
                                    spec.listen_p,
                                    hop,
                                    channels,
                                )
                            };
                            if telemetry {
                                prof.settled_listens += charged;
                            }
                            if !spec.terminate_on_inform {
                                if let Some(geo) = &relay_geo {
                                    let gap = geo.sample(&mut rngs[node as usize]);
                                    wake.schedule(
                                        node,
                                        slot_idx.saturating_add(1).saturating_add(gap),
                                    );
                                }
                            }
                        }
                    }
                }
            } else {
                inert_slots += 1;
                if epoch_mode {
                    // Track which channels a deferred listener would have
                    // heard noise on: blanket jam, or any transmission
                    // (an inert slot's lone transmissions are exactly the
                    // blanket-jammed ones; ≥ 2 collide).
                    epoch_inert += 1;
                    for c in 0..channels {
                        let ch = ChannelId::new(c);
                        if !load.on(ch).is_empty()
                            || matches!(executed_jam.directive_on(ch), JamDirective::All)
                        {
                            epoch_noisy[c as usize] += 1;
                        }
                    }
                }
            }
        }

        // 4. Full-information feedback to the adaptive adversary.
        adversary.observe(
            slot,
            &SlotObservation {
                correct_sends: correct_sends.as_slice(),
                listeners: listeners.as_slice(),
                jam_executed,
                jammed_channels: jammed_channels.as_slice(),
                delivered: delivered_listeners.as_slice(),
            },
        );

        if config.trace_capacity > 0 {
            trace.push(SlotRecord {
                slot: slot_idx,
                transmissions: load.total().min(u16::MAX as usize) as u16,
                jammed_channels: executed_jam.active_channel_count().min(u16::MAX as usize) as u16,
                listeners: listeners.len() as u32,
                delivered,
            });
        }

        slot_idx += 1;
    };

    // Nodes still dormant at the end settle their deferred listens now,
    // in roster order (epoch mode: only the final partial epoch is
    // outstanding — earlier epochs settled at their boundaries).
    for node in 1..=n as u32 {
        if pool_pos[node as usize] != u32::MAX {
            let charged = if epoch_mode {
                let ch = epoch_channel[node as usize];
                settle_epoch_inert(
                    ledger,
                    &mut rngs[node as usize],
                    node,
                    ch,
                    epoch_inert,
                    epoch_noisy[ch as usize],
                    spec.listen_p,
                )
                .1
            } else {
                settle_inert(
                    ledger,
                    &mut rngs[node as usize],
                    node,
                    inert_slots,
                    spec.listen_p,
                    hop,
                    channels,
                )
            };
            if telemetry {
                prof.settled_listens += charged;
            }
        }
    }

    if telemetry {
        prof.slots = slot_idx;
        // The adversary plans once per simulated slot; inert slots were
        // counted (not simulated) on the listener side.
        prof.adversary_plans = slot_idx;
        prof.inert_slots = inert_slots;
        prof.flush(collector);
    }

    let alice_done = slot_idx > spec.horizon;
    let terminated: Vec<bool> = if spec.terminate_on_inform {
        std::iter::once(alice_done)
            .chain(informed[1..].iter().copied())
            .collect()
    } else {
        vec![alice_done; n + 1]
    };
    let channel_stats = spectrum
        .channels()
        .map(|c| {
            let i = c.index() as usize;
            let correct = ledger.correct_channel_spend()[i];
            let carol = ledger.carol_channel_spend()[i];
            ChannelStats {
                correct_sends: correct.sends,
                correct_listens: correct.listens,
                byz_sends: carol.sends,
                jammed_slots: carol.jams,
                delivered: delivered_by_channel[i],
            }
        })
        .collect();

    RunReport {
        slots_elapsed: slot_idx,
        stop_reason,
        participant_costs: ledger.all_participant_spend(),
        participant_refusals: (0..=n).map(|i| ledger.participant_refusals(i)).collect(),
        carol_cost: ledger.carol_spend(),
        informed: std::mem::take(informed),
        terminated,
        jammed_slots,
        noisy_slots,
        channel_stats,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryMove, SilentAdversary};
    use crate::spectrum::Spectrum;

    fn quiet_spec(n: u64, horizon: u64) -> GossipSpec {
        GossipSpec {
            n,
            horizon,
            alice_send_p: 0.5,
            listen_p: 0.5,
            relay_p: 1.0 / n as f64,
            hop_channels: false,
            terminate_on_inform: false,
            epoch_len: 0,
            payload: Payload::Nack,
        }
    }

    fn run(
        config: &EngineConfig,
        spec: &GossipSpec,
        carol_budget: Budget,
        adversary: &mut dyn Adversary,
        seed: u64,
    ) -> RunReport {
        let budgets = vec![Budget::unlimited(); spec.n as usize + 1];
        run_gossip_soa_in(
            config,
            spec,
            &budgets,
            carol_budget,
            adversary,
            &SeedTree::new(seed),
            &mut |p| matches!(p, Payload::Nack),
            &mut GossipSoaScratch::new(),
        )
    }

    fn cfg(horizon: u64, spectrum: Spectrum, trace_capacity: usize) -> EngineConfig {
        EngineConfig {
            max_slots: horizon + 2,
            trace_capacity,
            spectrum,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn wake_queue_drains_in_node_order_and_respects_horizon() {
        let mut q = WakeQueue::new();
        q.reset(8, 100);
        q.schedule(5, 10);
        q.schedule(2, 10);
        q.schedule(7, 11);
        q.schedule(3, 100); // at horizon: dropped
        assert_eq!(q.next_wake(3), None);
        let mut out = Vec::new();
        q.drain_due(10, &mut out);
        assert_eq!(out, vec![(10, 2), (10, 5)]);
        assert_eq!(q.next_wake(5), None);
        q.drain_due(11, &mut out);
        assert_eq!(out, vec![(11, 7)]);
    }

    #[test]
    fn wake_queue_reschedule_and_cancel_go_stale_lazily() {
        let mut q = WakeQueue::new();
        q.reset(4, 1_000);
        q.schedule(1, 5);
        q.schedule(1, 9); // reschedule: entry at 5 is now stale
        q.schedule(2, 5);
        q.cancel(2);
        let mut out = Vec::new();
        q.drain_due(5, &mut out);
        assert!(out.is_empty(), "stale and cancelled entries must not fire");
        q.drain_due(9, &mut out);
        assert_eq!(out, vec![(9, 1)]);
    }

    #[test]
    fn wake_queue_aliasing_keeps_future_entries() {
        let mut q = WakeQueue::new();
        // 4 buckets: slots 3 and 7 share bucket 3.
        q.reset_with_buckets(4, 1_000, 4);
        q.schedule(0, 3);
        q.schedule(1, 7);
        let mut out = Vec::new();
        q.drain_due(3, &mut out);
        assert_eq!(out, vec![(3, 0)]);
        q.drain_due(7, &mut out);
        assert_eq!(out, vec![(7, 1)]);
    }

    #[test]
    fn quiet_gossip_informs_everyone_and_stops_at_the_horizon() {
        let spec = quiet_spec(32, 4_000);
        let report = run(
            &cfg(4_000, Spectrum::single(), 0),
            &spec,
            Budget::unlimited(),
            &mut SilentAdversary,
            1,
        );
        assert_eq!(report.stop_reason, StopReason::AllTerminated);
        assert_eq!(report.slots_elapsed, 4_001);
        assert!(report.informed.iter().all(|&b| b), "everyone informs");
        assert!(report.terminated.iter().all(|&b| b));
        // Informed nodes stop listening: per-node listens far below the
        // 0.5 × horizon an uninformed node would pay.
        let listens: u64 = report.participant_costs[1..]
            .iter()
            .map(|c| c.listens)
            .sum();
        assert!(listens < 32 * 400, "mean listens too high: {listens}");
        assert!(
            report.participant_costs[0].sends > 1_500,
            "Alice sends ~half the slots"
        );
    }

    #[test]
    fn runs_are_deterministic_by_seed() {
        let spec = quiet_spec(24, 2_000);
        let config = cfg(2_000, Spectrum::new(4), 0);
        let mut hopping = spec.clone();
        hopping.hop_channels = true;
        let a = run(
            &config,
            &hopping,
            Budget::unlimited(),
            &mut SilentAdversary,
            9,
        );
        let b = run(
            &config,
            &hopping,
            Budget::unlimited(),
            &mut SilentAdversary,
            9,
        );
        assert_eq!(a.slots_elapsed, b.slots_elapsed);
        assert_eq!(a.participant_costs, b.participant_costs);
        assert_eq!(a.informed, b.informed);
        assert_eq!(a.channel_stats, b.channel_stats);
        let c = run(
            &config,
            &hopping,
            Budget::unlimited(),
            &mut SilentAdversary,
            10,
        );
        assert_ne!(
            a.participant_costs, c.participant_costs,
            "different seeds should differ"
        );
    }

    /// Jams every channel of the spectrum, every slot.
    struct Blanket(Spectrum);
    impl Adversary for Blanket {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove::jam_spectrum(self.0)
        }
    }

    #[test]
    fn blanket_jamming_defers_listens_but_still_charges_them() {
        // Everything is jammed: no one informs, every listen is settled
        // in bulk at the end, and aggregate listen counts look binomial.
        let n = 64u64;
        let horizon = 2_000u64;
        let spec = quiet_spec(n, horizon);
        let report = run(
            &cfg(horizon, Spectrum::single(), 0),
            &spec,
            Budget::unlimited(),
            &mut Blanket(Spectrum::single()),
            3,
        );
        assert!(report.informed[1..].iter().all(|&b| !b), "no deliveries");
        assert_eq!(report.jammed_slots, horizon + 1);
        let listens: Vec<u64> = report.participant_costs[1..]
            .iter()
            .map(|c| c.listens)
            .collect();
        let mean = listens.iter().sum::<u64>() as f64 / n as f64;
        let expected = horizon as f64 * spec.listen_p;
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean listens {mean} should be ≈ {expected}"
        );
        assert_eq!(report.channel_stats[0].delivered, 0);
    }

    #[test]
    fn naive_mode_informs_in_slot_zero_for_one_listen_each() {
        let spec = GossipSpec {
            n: 16,
            horizon: 50,
            alice_send_p: 1.0,
            listen_p: 1.0,
            relay_p: 0.0,
            hop_channels: false,
            terminate_on_inform: true,
            epoch_len: 0,
            payload: Payload::Nack,
        };
        let report = run(
            &cfg(50, Spectrum::single(), 0),
            &spec,
            Budget::unlimited(),
            &mut SilentAdversary,
            1,
        );
        assert!(report.informed.iter().all(|&b| b));
        assert_eq!(report.stop_reason, StopReason::AllTerminated);
        assert_eq!(report.slots_elapsed, 51, "Alice transmits to her horizon");
        let listens: u64 = report.participant_costs[1..]
            .iter()
            .map(|c| c.listens)
            .sum();
        assert_eq!(listens, 16, "every receiver pays exactly one listen");
        assert_eq!(report.participant_costs[0].sends, 50);
    }

    /// Jams channel 0 with `All` until broke.
    struct JamAll;
    impl Adversary for JamAll {
        fn plan(&mut self, _: Slot, _: &AdversaryCtx) -> AdversaryMove {
            AdversaryMove::jam_all()
        }
    }

    #[test]
    fn naive_mode_uninformed_nodes_listen_past_the_horizon_to_the_cap() {
        // Carol outlasts the horizon: receivers never inform and keep
        // listening until the slot cap, exactly like era 1.
        let spec = GossipSpec {
            n: 4,
            horizon: 30,
            alice_send_p: 1.0,
            listen_p: 1.0,
            relay_p: 0.0,
            hop_channels: false,
            terminate_on_inform: true,
            epoch_len: 0,
            payload: Payload::Nack,
        };
        let report = run(
            &cfg(30, Spectrum::single(), 0),
            &spec,
            Budget::unlimited(),
            &mut JamAll,
            2,
        );
        assert_eq!(report.stop_reason, StopReason::SlotCapReached);
        assert_eq!(report.slots_elapsed, 32);
        assert!(report.informed[1..].iter().all(|&b| !b));
        assert!(report.terminated[0], "Alice terminated at her horizon");
        assert!(report.terminated[1..].iter().all(|&t| !t));
        for cost in &report.participant_costs[1..] {
            assert_eq!(cost.listens, 32, "listens continue through the cap");
        }
    }

    #[test]
    fn traced_runs_materialize_exact_listener_counts() {
        let spec = quiet_spec(16, 500);
        let report = run(
            &cfg(500, Spectrum::single(), 1024),
            &spec,
            Budget::unlimited(),
            &mut SilentAdversary,
            5,
        );
        // With full materialization there is no bulk settlement: the
        // trace's listener counts must reconcile exactly with the
        // ledger's listen charges.
        let traced: u64 = report
            .trace
            .records()
            .iter()
            .map(|r| u64::from(r.listeners))
            .sum();
        let charged: u64 = report.participant_costs[1..]
            .iter()
            .map(|c| c.listens)
            .sum();
        assert_eq!(traced, charged);
        assert!(report.informed.iter().all(|&b| b));
    }

    #[test]
    fn hopping_spreads_settled_listens_across_channels() {
        let mut spec = quiet_spec(32, 3_000);
        spec.hop_channels = true;
        let spectrum = Spectrum::new(4);
        let report = run(
            &cfg(3_000, spectrum, 0),
            &spec,
            Budget::unlimited(),
            &mut Blanket(spectrum),
            7,
        );
        // Blanket jamming defers everything; the multinomial split must
        // land listens on every channel.
        for (i, stats) in report.channel_stats.iter().enumerate() {
            assert!(
                stats.correct_listens > 0,
                "channel {i} never hosted a listener"
            );
        }
        let per_channel: Vec<u64> = report
            .channel_stats
            .iter()
            .map(|s| s.correct_listens)
            .collect();
        let total: u64 = per_channel.iter().sum();
        for (i, &l) in per_channel.iter().enumerate() {
            let share = l as f64 / total as f64;
            assert!(
                (share - 0.25).abs() < 0.05,
                "channel {i} share {share} should be ≈ 1/4"
            );
        }
    }

    #[test]
    fn budget_limited_nodes_are_refused_past_their_cap() {
        let spec = quiet_spec(8, 2_000);
        let mut budgets = vec![Budget::unlimited(); 9];
        budgets[3] = Budget::limited(10);
        let report = run_gossip_soa_in(
            &cfg(2_000, Spectrum::single(), 0),
            &spec,
            &budgets,
            Budget::unlimited(),
            &mut Blanket(Spectrum::single()),
            &SeedTree::new(11),
            &mut |p| matches!(p, Payload::Nack),
            &mut GossipSoaScratch::new(),
        );
        assert_eq!(report.participant_costs[3].total(), 10);
        assert!(report.participant_refusals[3] > 0);
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_runs() {
        let spec = quiet_spec(24, 1_500);
        let config = cfg(1_500, Spectrum::single(), 0);
        let budgets = vec![Budget::unlimited(); 25];
        let mut scratch = GossipSoaScratch::new();
        let mut informs = |p: &Payload| matches!(p, Payload::Nack);
        let first = run_gossip_soa_in(
            &config,
            &spec,
            &budgets,
            Budget::unlimited(),
            &mut SilentAdversary,
            &SeedTree::new(21),
            &mut informs,
            &mut scratch,
        );
        // Run something different through the same scratch, then repeat
        // the first run: reuse must leak nothing.
        let mut other = quiet_spec(8, 300);
        other.hop_channels = true;
        let other_budgets = vec![Budget::unlimited(); 9];
        let _ = run_gossip_soa_in(
            &cfg(300, Spectrum::new(4), 0),
            &other,
            &other_budgets,
            Budget::unlimited(),
            &mut SilentAdversary,
            &SeedTree::new(22),
            &mut informs,
            &mut scratch,
        );
        let again = run_gossip_soa_in(
            &config,
            &spec,
            &budgets,
            Budget::unlimited(),
            &mut SilentAdversary,
            &SeedTree::new(21),
            &mut informs,
            &mut scratch,
        );
        assert_eq!(first.slots_elapsed, again.slots_elapsed);
        assert_eq!(first.participant_costs, again.participant_costs);
        assert_eq!(first.informed, again.informed);
        assert_eq!(first.channel_stats, again.channel_stats);
    }
}
