//! Channel identities and the spectrum configuration.
//!
//! The multi-channel radio model (cf. Chen & Zheng's multi-channel
//! resource-competitive broadcast line of work) generalises the §1.1
//! single channel to `C ≥ 1` orthogonal channels: every send, listen, and
//! jam targets one [`ChannelId`] drawn from a [`Spectrum`]. A jammer must
//! now *split* its budget — blanketing the whole spectrum costs `C` units
//! per slot — which is exactly the lever multi-channel protocols exploit.
//!
//! The single-channel model of the source paper is recovered exactly as
//! [`Spectrum::single`]: with one channel, every operation lands on
//! [`ChannelId::ZERO`] and the engine's behaviour (including its RNG
//! streams) is bit-for-bit identical to the pre-spectrum implementation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A radio channel index, `0 ≤ c < C`.
///
/// Newtype over `u16` so channel arithmetic cannot be confused with slot
/// indices or participant ids.
///
/// # Example
///
/// ```
/// use rcb_radio::{ChannelId, Spectrum};
/// let spectrum = Spectrum::new(4);
/// assert!(spectrum.contains(ChannelId::new(3)));
/// assert!(!spectrum.contains(ChannelId::new(4)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChannelId(u16);

impl ChannelId {
    /// The first channel — the only one in a single-channel spectrum.
    pub const ZERO: ChannelId = ChannelId(0);

    /// Creates a channel id from its index.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        ChannelId(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u16> for ChannelId {
    fn from(v: u16) -> Self {
        ChannelId(v)
    }
}

/// The set of channels available to a simulation: `0..C`.
///
/// A spectrum always has at least one channel; [`Spectrum::single`] (also
/// the `Default`) is the source paper's model and the engine's default.
///
/// # Example
///
/// ```
/// use rcb_radio::{ChannelId, Spectrum};
/// let s = Spectrum::new(8);
/// assert_eq!(s.channel_count(), 8);
/// assert_eq!(s.channels().count(), 8);
/// assert_eq!(Spectrum::default(), Spectrum::single());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Spectrum {
    channels: u16,
}

impl Spectrum {
    /// A spectrum of `channels` orthogonal channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` — a radio needs at least one channel.
    #[must_use]
    pub const fn new(channels: u16) -> Self {
        assert!(channels > 0, "a spectrum needs at least one channel");
        Spectrum { channels }
    }

    /// The single-channel spectrum of the source paper (§1.1).
    #[must_use]
    pub const fn single() -> Self {
        Spectrum { channels: 1 }
    }

    /// Number of channels, `C`.
    #[must_use]
    pub const fn channel_count(self) -> u16 {
        self.channels
    }

    /// Whether this is the single-channel (paper) model.
    #[must_use]
    pub const fn is_single(self) -> bool {
        self.channels == 1
    }

    /// Whether `channel` is within this spectrum.
    #[must_use]
    pub const fn contains(self, channel: ChannelId) -> bool {
        channel.index() < self.channels
    }

    /// Iterates every channel id, ascending.
    pub fn channels(self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels).map(ChannelId::new)
    }
}

impl Default for Spectrum {
    fn default() -> Self {
        Spectrum::single()
    }
}

impl fmt::Display for Spectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} channel(s)", self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_id_roundtrip_and_display() {
        let c = ChannelId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(c.to_string(), "ch5");
        assert_eq!(ChannelId::from(5u16), c);
        assert!(ChannelId::ZERO < c);
    }

    #[test]
    fn spectrum_membership() {
        let s = Spectrum::new(3);
        assert!(s.contains(ChannelId::new(0)));
        assert!(s.contains(ChannelId::new(2)));
        assert!(!s.contains(ChannelId::new(3)));
        assert_eq!(
            s.channels().map(ChannelId::index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn single_is_default() {
        assert_eq!(Spectrum::default(), Spectrum::single());
        assert!(Spectrum::single().is_single());
        assert!(!Spectrum::new(2).is_single());
        assert_eq!(Spectrum::new(2).to_string(), "2 channel(s)");
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = Spectrum::new(0);
    }
}
