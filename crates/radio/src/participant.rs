//! Participants, their per-slot actions, and what they hear.

use std::fmt;

use rcb_rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::message::Payload;
use crate::slot::Slot;

/// Index of a correct participant in a simulation roster.
///
/// By convention (established by `rcb-core`'s orchestration) index 0 is
/// Alice and `1..=n` are the receiver nodes, but the engine itself treats
/// all participants uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParticipantId(u32);

impl ParticipantId {
    /// Creates an id from a roster index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ParticipantId(index)
    }

    /// The roster index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ParticipantId {
    fn from(v: u32) -> Self {
        ParticipantId(v)
    }
}

/// What a device does in one slot.
///
/// The radio is half-duplex: a device cannot send and listen in the same
/// slot, hence a single action — this is also why "p cannot hear its own
/// transmissions" (§2, request phase) holds by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Radio off. Free (sleep power is negligible on sensor motes).
    Sleep,
    /// Transmit one frame. Costs one energy unit.
    Send(Payload),
    /// Receive for the whole slot. Costs one energy unit.
    Listen,
}

impl Action {
    /// Whether this action uses the radio (and therefore costs energy).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, Action::Sleep)
    }
}

/// What a listening device hears in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reception {
    /// No channel activity. Cannot be forged by the adversary.
    Silence,
    /// Collision or jamming — indistinguishable from each other, and any
    /// concurrently transmitted data is lost.
    Noise,
    /// Exactly one un-jammed transmission: the frame is delivered.
    Frame(Payload),
}

impl Reception {
    /// Whether the slot sounded noisy (used by the request-phase counters:
    /// a *noisy* slot is one that is jammed or contains ≥ 1 transmission —
    /// a delivered frame also counts as channel activity).
    #[must_use]
    pub fn is_noisy(&self) -> bool {
        !matches!(self, Reception::Silence)
    }
}

/// A correct participant's protocol logic, driven slot-by-slot by the
/// engine.
///
/// Implementations are state machines: [`act`](NodeProtocol::act) is called
/// exactly once per slot while the participant has not terminated, and
/// [`on_reception`](NodeProtocol::on_reception) is called in the same slot
/// if (and only if) the action was [`Action::Listen`].
pub trait NodeProtocol {
    /// Decides this slot's action. `rng` is the participant's private
    /// deterministic stream.
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action;

    /// The channel this slot's action targets, when the action is
    /// [`Action::Send`] or [`Action::Listen`].
    ///
    /// Called by the engine *after* [`act`](Self::act) in the same slot,
    /// and only for active actions. Channel-hopping protocols draw their
    /// hop inside `act` (where the private RNG is available), store it,
    /// and report it here.
    ///
    /// The default pins every operation to
    /// [`ChannelId::ZERO`](crate::ChannelId::ZERO): existing
    /// single-channel protocols need no changes, consume no extra RNG
    /// draws, and behave bit-for-bit identically on a single-channel
    /// [`Spectrum`](crate::Spectrum) — the `C = 1` equivalence guarantee.
    fn channel(&self, slot: Slot) -> crate::spectrum::ChannelId {
        let _ = slot;
        crate::spectrum::ChannelId::ZERO
    }

    /// Delivers what was heard. Called only for slots where `act` returned
    /// [`Action::Listen`] (and the energy charge succeeded).
    fn on_reception(&mut self, slot: Slot, reception: Reception);

    /// Notifies that the requested action was suppressed because the
    /// participant's energy budget is exhausted. The default keeps the
    /// state machine running (it simply slept instead).
    fn on_budget_exhausted(&mut self, slot: Slot) {
        let _ = slot;
    }

    /// Whether this participant has terminated its protocol. Once true the
    /// engine stops scheduling it; it must stay true.
    fn has_terminated(&self) -> bool;

    /// Whether this participant holds the broadcast message `m`. (For
    /// sender-side participants this is trivially true.)
    fn is_informed(&self) -> bool;
}

/// Delegation through mutable references, so the engine's monomorphized
/// roster loop can be instantiated at `P = &mut dyn NodeProtocol` — the
/// dynamic-dispatch path is just another instantiation of the one slot
/// loop, not a second implementation.
impl<T: NodeProtocol + ?Sized> NodeProtocol for &mut T {
    #[inline]
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        (**self).act(slot, rng)
    }
    #[inline]
    fn channel(&self, slot: Slot) -> crate::spectrum::ChannelId {
        (**self).channel(slot)
    }
    #[inline]
    fn on_reception(&mut self, slot: Slot, reception: Reception) {
        (**self).on_reception(slot, reception)
    }
    #[inline]
    fn on_budget_exhausted(&mut self, slot: Slot) {
        (**self).on_budget_exhausted(slot)
    }
    #[inline]
    fn has_terminated(&self) -> bool {
        (**self).has_terminated()
    }
    #[inline]
    fn is_informed(&self) -> bool {
        (**self).is_informed()
    }
}

/// Delegation through boxes: a `Vec<Box<dyn NodeProtocol>>` roster runs
/// on the engine directly, with no intermediate re-borrowed vector.
impl<T: NodeProtocol + ?Sized> NodeProtocol for Box<T> {
    #[inline]
    fn act(&mut self, slot: Slot, rng: &mut SimRng) -> Action {
        (**self).act(slot, rng)
    }
    #[inline]
    fn channel(&self, slot: Slot) -> crate::spectrum::ChannelId {
        (**self).channel(slot)
    }
    #[inline]
    fn on_reception(&mut self, slot: Slot, reception: Reception) {
        (**self).on_reception(slot, reception)
    }
    #[inline]
    fn on_budget_exhausted(&mut self, slot: Slot) {
        (**self).on_budget_exhausted(slot)
    }
    #[inline]
    fn has_terminated(&self) -> bool {
        (**self).has_terminated()
    }
    #[inline]
    fn is_informed(&self) -> bool {
        (**self).is_informed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_activity() {
        assert!(!Action::Sleep.is_active());
        assert!(Action::Listen.is_active());
        assert!(Action::Send(Payload::Nack).is_active());
    }

    #[test]
    fn reception_noisiness() {
        assert!(!Reception::Silence.is_noisy());
        assert!(Reception::Noise.is_noisy());
        assert!(Reception::Frame(Payload::Decoy).is_noisy());
    }

    #[test]
    fn participant_id_roundtrip() {
        let p = ParticipantId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
        assert_eq!(ParticipantId::from(7u32), p);
    }
}
