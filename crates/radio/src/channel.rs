//! Channel resolution: who hears what, under n-uniform jamming.
//!
//! Resolution is per **(listener, channel)**: each slot's transmissions
//! are grouped by channel into a [`ChannelLoad`], the adversary's
//! [`JamPlan`] names a [`JamDirective`] per channel, and a listener tuned
//! to channel `c` perceives only that channel's traffic and jamming. With
//! a single-channel [`Spectrum`] this degenerates to the original §1.1
//! semantics of [`resolve_for_listener`], exactly.

use std::fmt;

use crate::message::Payload;
use crate::participant::{ParticipantId, Reception};
use crate::spectrum::{ChannelId, Spectrum};

/// A set of participant ids, kept sorted for `O(log n)` membership tests.
///
/// Used to express jam targeting. Construction from an arbitrary iterator
/// deduplicates.
///
/// # Example
///
/// ```
/// use rcb_radio::{IdSet, ParticipantId};
/// let set: IdSet = [3u32, 1, 3].into_iter().map(ParticipantId::new).collect();
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(ParticipantId::new(1)));
/// assert!(!set.contains(ParticipantId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdSet {
    sorted: Vec<ParticipantId>,
}

impl IdSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, id: ParticipantId) -> bool {
        self.sorted.binary_search(&id).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ParticipantId> + '_ {
        self.sorted.iter().copied()
    }
}

impl FromIterator<ParticipantId> for IdSet {
    fn from_iter<I: IntoIterator<Item = ParticipantId>>(iter: I) -> Self {
        let mut sorted: Vec<ParticipantId> = iter.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        Self { sorted }
    }
}

impl Extend<ParticipantId> for IdSet {
    fn extend<I: IntoIterator<Item = ParticipantId>>(&mut self, iter: I) {
        self.sorted.extend(iter);
        self.sorted.sort_unstable();
        self.sorted.dedup();
    }
}

/// Carol's per-slot jamming decision, with n-uniform targeting.
///
/// Any directive other than [`JamDirective::None`] costs one energy unit
/// from Carol's pooled budget — the *choice* of targets is free (she
/// partitions receivers, §1.1), the *transmission* is what costs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JamDirective {
    /// Do not jam.
    #[default]
    None,
    /// Every listener hears noise (the 1-uniform special case).
    All,
    /// Jam all listeners *except* the given ids — the n-uniform power used
    /// by the ε-extraction attack: Carol blocks a propagation phase while
    /// letting a hand-picked subset become informed (§2.3).
    AllExcept(IdSet),
    /// Jam only the given ids.
    Only(IdSet),
}

impl JamDirective {
    /// Whether this directive jams anything at all (and therefore costs).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, JamDirective::None)
    }

    /// Whether a particular listener is jammed under this directive.
    #[must_use]
    pub fn jams(&self, listener: ParticipantId) -> bool {
        match self {
            JamDirective::None => false,
            JamDirective::All => true,
            JamDirective::AllExcept(spared) => !spared.contains(listener),
            JamDirective::Only(targets) => targets.contains(listener),
        }
    }
}

impl fmt::Display for JamDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JamDirective::None => write!(f, "no-jam"),
            JamDirective::All => write!(f, "jam-all"),
            JamDirective::AllExcept(s) => write!(f, "jam-all-except({})", s.len()),
            JamDirective::Only(s) => write!(f, "jam-only({})", s.len()),
        }
    }
}

/// Carol's full per-slot jamming decision across the spectrum: one
/// [`JamDirective`] per targeted channel.
///
/// Each *active* channel entry costs one energy unit when it executes —
/// blanketing a `C`-channel spectrum costs `C` units per slot, which is
/// what forces a jammer to split its budget. Inactive
/// ([`JamDirective::None`]) entries are never stored.
///
/// `From<JamDirective>` places a directive on [`ChannelId::ZERO`], so all
/// single-channel code keeps its shape.
///
/// # Example
///
/// ```
/// use rcb_radio::{ChannelId, JamDirective, JamPlan, ParticipantId, Spectrum};
///
/// let mut plan = JamPlan::none();
/// plan.set(ChannelId::new(2), JamDirective::All);
/// assert_eq!(plan.active_channel_count(), 1);
/// assert!(plan.jams(ChannelId::new(2), ParticipantId::new(0)));
/// assert!(!plan.jams(ChannelId::new(1), ParticipantId::new(0)));
///
/// let blanket = JamPlan::all_channels(Spectrum::new(4));
/// assert_eq!(blanket.active_channel_count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JamPlan {
    repr: PlanRepr,
}

/// Storage for a jam plan. The single-directive case — every
/// single-channel adversary, every slot — is stored inline so the
/// engine's hot path never allocates; only plans targeting two or more
/// channels spill to the heap. Once spilled, the buffer is retained
/// through [`JamPlan::clear`] and entry removals, so a reused plan (the
/// engine's per-slot executed-jam scratch) stops allocating after the
/// first multi-channel slot — which is why `Many` may transiently hold
/// fewer than two entries, and why equality is defined on content, not
/// representation.
#[derive(Debug, Clone, Default)]
enum PlanRepr {
    /// Jams nothing.
    #[default]
    Empty,
    /// One directive on one channel (allocation-free).
    One((ChannelId, JamDirective)),
    /// Directives sorted by channel (retained buffer; may hold any
    /// number of entries).
    Many(Vec<(ChannelId, JamDirective)>),
}

impl PartialEq for JamPlan {
    /// Plans are equal when they name the same directives on the same
    /// channels, regardless of storage representation.
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for JamPlan {}

impl JamPlan {
    /// A plan that jams nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with one directive on one channel.
    #[must_use]
    pub fn on(channel: ChannelId, directive: JamDirective) -> Self {
        let mut plan = Self::default();
        plan.set(channel, directive);
        plan
    }

    /// Blankets every channel of `spectrum` with [`JamDirective::All`] —
    /// the budget-splitting uniform jam (costs `C` units per slot).
    #[must_use]
    pub fn all_channels(spectrum: Spectrum) -> Self {
        let repr = if spectrum.is_single() {
            PlanRepr::One((ChannelId::ZERO, JamDirective::All))
        } else {
            PlanRepr::Many(
                spectrum
                    .channels()
                    .map(|c| (c, JamDirective::All))
                    .collect(),
            )
        };
        Self { repr }
    }

    /// Sets (or clears, for [`JamDirective::None`]) the directive on one
    /// channel.
    pub fn set(&mut self, channel: ChannelId, directive: JamDirective) {
        let active = directive.is_active();
        match &mut self.repr {
            PlanRepr::Empty => {
                if active {
                    self.repr = PlanRepr::One((channel, directive));
                }
            }
            PlanRepr::One((c, d)) => {
                if *c == channel {
                    if active {
                        *d = directive;
                    } else {
                        self.repr = PlanRepr::Empty;
                    }
                } else if active {
                    let mut entries = vec![(*c, d.clone()), (channel, directive)];
                    entries.sort_by_key(|&(c, _)| c);
                    self.repr = PlanRepr::Many(entries);
                }
            }
            PlanRepr::Many(entries) => match entries.binary_search_by_key(&channel, |&(c, _)| c) {
                Ok(i) => {
                    if active {
                        entries[i].1 = directive;
                    } else {
                        entries.remove(i);
                    }
                }
                Err(i) => {
                    if active {
                        entries.insert(i, (channel, directive));
                    }
                }
            },
        }
    }

    /// Removes every directive. A spilled (multi-channel) plan keeps its
    /// buffer, so clearing and refilling per slot — the engine's
    /// executed-jam scratch pattern — stops allocating after the first
    /// multi-channel slot.
    pub fn clear(&mut self) {
        match &mut self.repr {
            PlanRepr::Many(entries) => entries.clear(),
            repr => *repr = PlanRepr::Empty,
        }
    }

    /// The directive targeting `channel` ([`JamDirective::None`] when the
    /// channel is untouched).
    #[must_use]
    pub fn directive_on(&self, channel: ChannelId) -> &JamDirective {
        const NONE: JamDirective = JamDirective::None;
        match &self.repr {
            PlanRepr::Empty => &NONE,
            PlanRepr::One((c, d)) => {
                if *c == channel {
                    d
                } else {
                    &NONE
                }
            }
            PlanRepr::Many(entries) => match entries.binary_search_by_key(&channel, |&(c, _)| c) {
                Ok(i) => &entries[i].1,
                Err(_) => &NONE,
            },
        }
    }

    /// Whether `listener`, tuned to `channel`, is jammed under this plan.
    #[must_use]
    pub fn jams(&self, channel: ChannelId, listener: ParticipantId) -> bool {
        self.directive_on(channel).jams(listener)
    }

    /// Number of channels with an active directive — the plan's energy
    /// cost per slot when it fully executes.
    #[must_use]
    pub fn active_channel_count(&self) -> usize {
        match &self.repr {
            PlanRepr::Empty => 0,
            PlanRepr::One(_) => 1,
            PlanRepr::Many(entries) => entries.len(),
        }
    }

    /// Whether the plan jams anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active_channel_count() > 0
    }

    /// The `(channel, directive)` entries, ascending by channel.
    #[must_use]
    pub fn entries(&self) -> &[(ChannelId, JamDirective)] {
        match &self.repr {
            PlanRepr::Empty => &[],
            PlanRepr::One(pair) => std::slice::from_ref(pair),
            PlanRepr::Many(entries) => entries,
        }
    }
}

/// Consuming iterator over a plan's `(channel, directive)` entries,
/// ascending by channel. Allocation-free for empty and single-channel
/// plans.
#[derive(Debug)]
pub struct JamPlanIntoIter {
    repr: IntoIterRepr,
}

#[derive(Debug)]
enum IntoIterRepr {
    One(Option<(ChannelId, JamDirective)>),
    Many(std::vec::IntoIter<(ChannelId, JamDirective)>),
}

impl Iterator for JamPlanIntoIter {
    type Item = (ChannelId, JamDirective);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.repr {
            IntoIterRepr::One(slot) => slot.take(),
            IntoIterRepr::Many(iter) => iter.next(),
        }
    }
}

impl IntoIterator for JamPlan {
    type Item = (ChannelId, JamDirective);
    type IntoIter = JamPlanIntoIter;

    fn into_iter(self) -> JamPlanIntoIter {
        let repr = match self.repr {
            PlanRepr::Empty => IntoIterRepr::One(None),
            PlanRepr::One(pair) => IntoIterRepr::One(Some(pair)),
            PlanRepr::Many(entries) => IntoIterRepr::Many(entries.into_iter()),
        };
        JamPlanIntoIter { repr }
    }
}

impl From<JamDirective> for JamPlan {
    /// A single-channel plan: the directive lands on [`ChannelId::ZERO`].
    fn from(directive: JamDirective) -> Self {
        JamPlan::on(ChannelId::ZERO, directive)
    }
}

impl fmt::Display for JamPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return write!(f, "no-jam");
        }
        for (i, (channel, directive)) in self.entries().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{channel}:{directive}")?;
        }
        Ok(())
    }
}

/// One slot's transmissions, grouped by channel.
///
/// The engine fills one `ChannelLoad` per slot; resolution for a listener
/// tuned to channel `c` then inspects only bucket `c` — `O(1)` per
/// listener after the `O(transmissions)` grouping pass, instead of
/// `O(transmissions)` per listener.
///
/// # Example
///
/// ```
/// use rcb_radio::{ChannelId, ChannelLoad, Payload, Spectrum};
/// let mut load = ChannelLoad::new(Spectrum::new(2));
/// load.push(ChannelId::new(1), Payload::Nack);
/// assert!(load.on(ChannelId::new(0)).is_empty());
/// assert_eq!(load.on(ChannelId::new(1)).len(), 1);
/// assert_eq!(load.total(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChannelLoad {
    buckets: Vec<Vec<Payload>>,
}

impl ChannelLoad {
    /// An empty load over `spectrum`.
    #[must_use]
    pub fn new(spectrum: Spectrum) -> Self {
        Self {
            buckets: vec![Vec::new(); spectrum.channel_count() as usize],
        }
    }

    /// Re-shapes this load to `spectrum` and empties every bucket,
    /// keeping as many bucket allocations as possible — the engine
    /// scratch path, where one load is reused across runs that may
    /// target different spectra.
    pub fn reset_for(&mut self, spectrum: Spectrum) {
        self.buckets
            .resize_with(spectrum.channel_count() as usize, Vec::new);
        self.clear();
    }

    /// Empties every bucket, keeping allocations (per-slot reuse).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Adds a transmission on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the spectrum this load was built
    /// for.
    pub fn push(&mut self, channel: ChannelId, payload: Payload) {
        self.buckets[channel.index() as usize].push(payload);
    }

    /// The transmissions on `channel`, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the spectrum.
    #[must_use]
    pub fn on(&self, channel: ChannelId) -> &[Payload] {
        &self.buckets[channel.index() as usize]
    }

    /// Total transmissions across all channels.
    #[must_use]
    pub fn total(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether no channel carries any transmission.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Number of channels in the underlying spectrum.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.buckets.len()
    }
}

/// Resolves what one listener tuned to `channel` hears, given the slot's
/// grouped transmissions and the executed jam plan.
///
/// Per-channel semantics are exactly the §1.1 rules of
/// [`resolve_for_listener`], applied to the listener's channel only:
/// traffic and jamming on any other channel are invisible to it. With a
/// single-channel spectrum this is precisely the original function.
#[must_use]
pub fn resolve_for_listener_on(
    listener: ParticipantId,
    channel: ChannelId,
    load: &ChannelLoad,
    jam: &JamPlan,
) -> Reception {
    resolve_for_listener(listener, load.on(channel), jam.directive_on(channel))
}

/// Resolves what one listener hears, given this slot's transmissions and
/// the jam directive.
///
/// Implements the §1.1 semantics:
///
/// * jammed for this listener → [`Reception::Noise`] (data discarded);
/// * 0 transmissions, not jammed → [`Reception::Silence`] (silence is
///   unforgeable — note jamming *adds* noise, so a jammed-but-quiet slot is
///   noise, never fake silence; what cannot happen is an *active* slot
///   sounding silent);
/// * exactly 1 transmission → the frame is delivered;
/// * ≥ 2 transmissions → collision noise.
#[must_use]
pub fn resolve_for_listener(
    listener: ParticipantId,
    transmissions: &[Payload],
    jam: &JamDirective,
) -> Reception {
    if jam.jams(listener) {
        return Reception::Noise;
    }
    match transmissions {
        [] => Reception::Silence,
        [only] => Reception::Frame(only.clone()),
        _ => Reception::Noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ParticipantId {
        ParticipantId::new(i)
    }

    #[test]
    fn idset_dedup_and_membership() {
        let set: IdSet = [5u32, 1, 5, 9].into_iter().map(pid).collect();
        assert_eq!(set.len(), 3);
        assert!(set.contains(pid(5)));
        assert!(!set.contains(pid(2)));
        assert_eq!(
            set.iter().map(ParticipantId::index).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn idset_extend() {
        let mut set: IdSet = [1u32].into_iter().map(pid).collect();
        set.extend([pid(3), pid(1)]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn silence_when_quiet_and_unjammed() {
        assert_eq!(
            resolve_for_listener(pid(0), &[], &JamDirective::None),
            Reception::Silence
        );
    }

    #[test]
    fn single_transmission_delivers() {
        let r = resolve_for_listener(pid(0), &[Payload::Nack], &JamDirective::None);
        assert_eq!(r, Reception::Frame(Payload::Nack));
    }

    #[test]
    fn collision_is_noise() {
        let r = resolve_for_listener(
            pid(0),
            &[Payload::Nack, Payload::Decoy],
            &JamDirective::None,
        );
        assert_eq!(r, Reception::Noise);
    }

    #[test]
    fn jam_all_hits_everyone() {
        for i in 0..5 {
            assert_eq!(
                resolve_for_listener(pid(i), &[Payload::Nack], &JamDirective::All),
                Reception::Noise
            );
        }
    }

    #[test]
    fn jamming_quiet_slot_is_noise_not_silence() {
        // Carol cannot forge silence — but jamming an otherwise silent slot
        // makes it *noisy*, which is allowed (she adds activity).
        assert_eq!(
            resolve_for_listener(pid(0), &[], &JamDirective::All),
            Reception::Noise
        );
    }

    #[test]
    fn n_uniform_all_except_spares_chosen_listeners() {
        let spared: IdSet = [2u32, 4].into_iter().map(pid).collect();
        let jam = JamDirective::AllExcept(spared);
        let tx = [Payload::Nack];
        assert_eq!(
            resolve_for_listener(pid(2), &tx, &jam),
            Reception::Frame(Payload::Nack)
        );
        assert_eq!(resolve_for_listener(pid(3), &tx, &jam), Reception::Noise);
    }

    #[test]
    fn n_uniform_only_targets_chosen_listeners() {
        let targets: IdSet = [7u32].into_iter().map(pid).collect();
        let jam = JamDirective::Only(targets);
        let tx = [Payload::Decoy];
        assert_eq!(resolve_for_listener(pid(7), &tx, &jam), Reception::Noise);
        assert_eq!(
            resolve_for_listener(pid(8), &tx, &jam),
            Reception::Frame(Payload::Decoy)
        );
    }

    #[test]
    fn directive_activity_and_display() {
        assert!(!JamDirective::None.is_active());
        assert!(JamDirective::All.is_active());
        assert_eq!(JamDirective::None.to_string(), "no-jam");
        assert_eq!(JamDirective::All.to_string(), "jam-all");
    }

    #[test]
    fn jam_plan_set_get_and_cost() {
        let mut plan = JamPlan::none();
        assert!(!plan.is_active());
        plan.set(ChannelId::new(3), JamDirective::All);
        plan.set(
            ChannelId::new(1),
            JamDirective::Only([pid(7)].into_iter().collect()),
        );
        assert_eq!(plan.active_channel_count(), 2);
        assert_eq!(
            plan.entries()
                .iter()
                .map(|&(c, _)| c.index())
                .collect::<Vec<_>>(),
            vec![1, 3],
            "entries stay sorted by channel"
        );
        assert!(plan.jams(ChannelId::new(3), pid(0)));
        assert!(plan.jams(ChannelId::new(1), pid(7)));
        assert!(!plan.jams(ChannelId::new(1), pid(8)));
        assert!(!plan.jams(ChannelId::new(0), pid(0)));
        // Setting None clears the entry; overwriting replaces it.
        plan.set(ChannelId::new(3), JamDirective::None);
        assert_eq!(plan.active_channel_count(), 1);
        plan.set(ChannelId::new(1), JamDirective::All);
        assert!(plan.jams(ChannelId::new(1), pid(8)));
        plan.clear();
        assert!(!plan.is_active());
    }

    #[test]
    fn jam_plan_equality_is_content_not_representation() {
        // A cleared-and-refilled (spilled) plan must equal a fresh one:
        // the retained Many buffer is an optimisation, not an observable.
        let mut reused = JamPlan::all_channels(Spectrum::new(3));
        reused.clear();
        assert_eq!(reused, JamPlan::none());
        assert!(!reused.is_active());
        assert!(reused.entries().is_empty());
        reused.set(ChannelId::new(1), JamDirective::All);
        assert_eq!(reused, JamPlan::on(ChannelId::new(1), JamDirective::All));
        assert_eq!(reused.active_channel_count(), 1);
        // Removing down to one entry also matches the inline form.
        let mut shrunk = JamPlan::all_channels(Spectrum::new(2));
        shrunk.set(ChannelId::new(0), JamDirective::None);
        assert_eq!(shrunk, JamPlan::on(ChannelId::new(1), JamDirective::All));
        assert_eq!(
            shrunk.into_iter().collect::<Vec<_>>(),
            vec![(ChannelId::new(1), JamDirective::All)]
        );
    }

    #[test]
    fn jam_plan_from_directive_is_channel_zero() {
        let plan: JamPlan = JamDirective::All.into();
        assert!(plan.jams(ChannelId::ZERO, pid(0)));
        assert!(!plan.jams(ChannelId::new(1), pid(0)));
        let idle: JamPlan = JamDirective::None.into();
        assert!(!idle.is_active());
    }

    #[test]
    fn jam_plan_blanket_and_display() {
        let plan = JamPlan::all_channels(Spectrum::new(3));
        assert_eq!(plan.active_channel_count(), 3);
        for c in Spectrum::new(3).channels() {
            assert!(plan.jams(c, pid(0)));
        }
        assert_eq!(plan.to_string(), "ch0:jam-all, ch1:jam-all, ch2:jam-all");
        assert_eq!(JamPlan::none().to_string(), "no-jam");
    }

    #[test]
    fn channel_load_groups_by_channel() {
        let mut load = ChannelLoad::new(Spectrum::new(3));
        load.push(ChannelId::new(2), Payload::Nack);
        load.push(ChannelId::new(2), Payload::Decoy);
        load.push(ChannelId::new(0), Payload::Garbage(1));
        assert_eq!(load.total(), 3);
        assert!(!load.is_quiet());
        assert_eq!(load.on(ChannelId::new(0)).len(), 1);
        assert!(load.on(ChannelId::new(1)).is_empty());
        assert_eq!(load.on(ChannelId::new(2)).len(), 2);
        load.clear();
        assert!(load.is_quiet());
        assert_eq!(load.channel_count(), 3);
    }

    #[test]
    fn per_channel_resolution_isolates_channels() {
        let mut load = ChannelLoad::new(Spectrum::new(2));
        load.push(ChannelId::new(0), Payload::Nack);
        // Channel 1 jammed, channel 0 clear.
        let jam = JamPlan::on(ChannelId::new(1), JamDirective::All);
        assert_eq!(
            resolve_for_listener_on(pid(0), ChannelId::new(0), &load, &jam),
            Reception::Frame(Payload::Nack)
        );
        assert_eq!(
            resolve_for_listener_on(pid(0), ChannelId::new(1), &load, &jam),
            Reception::Noise
        );
        // A second transmission on channel 1 does not disturb channel 0.
        load.push(ChannelId::new(1), Payload::Decoy);
        assert_eq!(
            resolve_for_listener_on(pid(0), ChannelId::new(0), &load, &jam),
            Reception::Frame(Payload::Nack)
        );
    }
}
