//! Channel resolution: who hears what, under n-uniform jamming.

use std::fmt;

use crate::message::Payload;
use crate::participant::{ParticipantId, Reception};

/// A set of participant ids, kept sorted for `O(log n)` membership tests.
///
/// Used to express jam targeting. Construction from an arbitrary iterator
/// deduplicates.
///
/// # Example
///
/// ```
/// use rcb_radio::{IdSet, ParticipantId};
/// let set: IdSet = [3u32, 1, 3].into_iter().map(ParticipantId::new).collect();
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(ParticipantId::new(1)));
/// assert!(!set.contains(ParticipantId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdSet {
    sorted: Vec<ParticipantId>,
}

impl IdSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, id: ParticipantId) -> bool {
        self.sorted.binary_search(&id).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ParticipantId> + '_ {
        self.sorted.iter().copied()
    }
}

impl FromIterator<ParticipantId> for IdSet {
    fn from_iter<I: IntoIterator<Item = ParticipantId>>(iter: I) -> Self {
        let mut sorted: Vec<ParticipantId> = iter.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        Self { sorted }
    }
}

impl Extend<ParticipantId> for IdSet {
    fn extend<I: IntoIterator<Item = ParticipantId>>(&mut self, iter: I) {
        self.sorted.extend(iter);
        self.sorted.sort_unstable();
        self.sorted.dedup();
    }
}

/// Carol's per-slot jamming decision, with n-uniform targeting.
///
/// Any directive other than [`JamDirective::None`] costs one energy unit
/// from Carol's pooled budget — the *choice* of targets is free (she
/// partitions receivers, §1.1), the *transmission* is what costs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JamDirective {
    /// Do not jam.
    #[default]
    None,
    /// Every listener hears noise (the 1-uniform special case).
    All,
    /// Jam all listeners *except* the given ids — the n-uniform power used
    /// by the ε-extraction attack: Carol blocks a propagation phase while
    /// letting a hand-picked subset become informed (§2.3).
    AllExcept(IdSet),
    /// Jam only the given ids.
    Only(IdSet),
}

impl JamDirective {
    /// Whether this directive jams anything at all (and therefore costs).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, JamDirective::None)
    }

    /// Whether a particular listener is jammed under this directive.
    #[must_use]
    pub fn jams(&self, listener: ParticipantId) -> bool {
        match self {
            JamDirective::None => false,
            JamDirective::All => true,
            JamDirective::AllExcept(spared) => !spared.contains(listener),
            JamDirective::Only(targets) => targets.contains(listener),
        }
    }
}

impl fmt::Display for JamDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JamDirective::None => write!(f, "no-jam"),
            JamDirective::All => write!(f, "jam-all"),
            JamDirective::AllExcept(s) => write!(f, "jam-all-except({})", s.len()),
            JamDirective::Only(s) => write!(f, "jam-only({})", s.len()),
        }
    }
}

/// Resolves what one listener hears, given this slot's transmissions and
/// the jam directive.
///
/// Implements the §1.1 semantics:
///
/// * jammed for this listener → [`Reception::Noise`] (data discarded);
/// * 0 transmissions, not jammed → [`Reception::Silence`] (silence is
///   unforgeable — note jamming *adds* noise, so a jammed-but-quiet slot is
///   noise, never fake silence; what cannot happen is an *active* slot
///   sounding silent);
/// * exactly 1 transmission → the frame is delivered;
/// * ≥ 2 transmissions → collision noise.
#[must_use]
pub fn resolve_for_listener(
    listener: ParticipantId,
    transmissions: &[Payload],
    jam: &JamDirective,
) -> Reception {
    if jam.jams(listener) {
        return Reception::Noise;
    }
    match transmissions {
        [] => Reception::Silence,
        [only] => Reception::Frame(only.clone()),
        _ => Reception::Noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ParticipantId {
        ParticipantId::new(i)
    }

    #[test]
    fn idset_dedup_and_membership() {
        let set: IdSet = [5u32, 1, 5, 9].into_iter().map(pid).collect();
        assert_eq!(set.len(), 3);
        assert!(set.contains(pid(5)));
        assert!(!set.contains(pid(2)));
        assert_eq!(
            set.iter().map(ParticipantId::index).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn idset_extend() {
        let mut set: IdSet = [1u32].into_iter().map(pid).collect();
        set.extend([pid(3), pid(1)]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn silence_when_quiet_and_unjammed() {
        assert_eq!(
            resolve_for_listener(pid(0), &[], &JamDirective::None),
            Reception::Silence
        );
    }

    #[test]
    fn single_transmission_delivers() {
        let r = resolve_for_listener(pid(0), &[Payload::Nack], &JamDirective::None);
        assert_eq!(r, Reception::Frame(Payload::Nack));
    }

    #[test]
    fn collision_is_noise() {
        let r = resolve_for_listener(
            pid(0),
            &[Payload::Nack, Payload::Decoy],
            &JamDirective::None,
        );
        assert_eq!(r, Reception::Noise);
    }

    #[test]
    fn jam_all_hits_everyone() {
        for i in 0..5 {
            assert_eq!(
                resolve_for_listener(pid(i), &[Payload::Nack], &JamDirective::All),
                Reception::Noise
            );
        }
    }

    #[test]
    fn jamming_quiet_slot_is_noise_not_silence() {
        // Carol cannot forge silence — but jamming an otherwise silent slot
        // makes it *noisy*, which is allowed (she adds activity).
        assert_eq!(
            resolve_for_listener(pid(0), &[], &JamDirective::All),
            Reception::Noise
        );
    }

    #[test]
    fn n_uniform_all_except_spares_chosen_listeners() {
        let spared: IdSet = [2u32, 4].into_iter().map(pid).collect();
        let jam = JamDirective::AllExcept(spared);
        let tx = [Payload::Nack];
        assert_eq!(
            resolve_for_listener(pid(2), &tx, &jam),
            Reception::Frame(Payload::Nack)
        );
        assert_eq!(resolve_for_listener(pid(3), &tx, &jam), Reception::Noise);
    }

    #[test]
    fn n_uniform_only_targets_chosen_listeners() {
        let targets: IdSet = [7u32].into_iter().map(pid).collect();
        let jam = JamDirective::Only(targets);
        let tx = [Payload::Decoy];
        assert_eq!(resolve_for_listener(pid(7), &tx, &jam), Reception::Noise);
        assert_eq!(
            resolve_for_listener(pid(8), &tx, &jam),
            Reception::Frame(Payload::Decoy)
        );
    }

    #[test]
    fn directive_activity_and_display() {
        assert!(!JamDirective::None.is_active());
        assert!(JamDirective::All.is_active());
        assert_eq!(JamDirective::None.to_string(), "no-jam");
        assert_eq!(JamDirective::All.to_string(), "jam-all");
    }
}
