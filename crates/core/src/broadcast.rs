//! Shared ε-BROADCAST orchestration pieces: the per-run [`RunConfig`]
//! and the report-condensing accounting used by the exact engine.
//!
//! The execution entry point is
//! [`BroadcastSoaScratch`](crate::BroadcastSoaScratch) in the `era2`
//! module — the sleep-skipping SoA engine. New code should go through
//! `rcb_sim::Scenario`.

use rcb_radio::{Budget, CostBreakdown, RunReport, StopReason};

use crate::outcome::{BroadcastOutcome, EngineKind};
use crate::params::Params;
use crate::schedule::RoundSchedule;

/// Per-run configuration that is not a protocol parameter.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Carol's pooled budget. Use [`Params::carol_budget`] for the paper's
    /// threat model, or [`Budget::unlimited`] to measure pure strategy
    /// shapes.
    pub carol_budget: Budget,
    /// Whether Alice and the nodes are held to their computed budgets
    /// (`true` for the paper's model; `false` to observe unconstrained
    /// costs).
    pub enforce_correct_budgets: bool,
    /// Slot-trace retention (0 disables tracing).
    pub trace_capacity: usize,
    /// Master seed for the run.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            carol_budget: Budget::unlimited(),
            enforce_correct_budgets: true,
            trace_capacity: 0,
            seed: 0,
        }
    }
}

impl RunConfig {
    /// A config with the given seed and defaults elsewhere.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets Carol's budget.
    #[must_use]
    pub fn carol_budget(mut self, budget: Budget) -> Self {
        self.carol_budget = budget;
        self
    }

    /// Enables slot tracing with the given capacity.
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Disables correct-side budget enforcement.
    #[must_use]
    pub fn unconstrained_correct(mut self) -> Self {
        self.enforce_correct_budgets = false;
        self
    }
}

/// Condenses an engine report into a [`BroadcastOutcome`] (roster layout:
/// index 0 = Alice, `1..=n` = nodes).
pub(crate) fn summarize(
    params: &Params,
    schedule: &RoundSchedule,
    report: &RunReport,
) -> BroadcastOutcome {
    let node_costs: Vec<CostBreakdown> = report.participant_costs[1..].to_vec();
    let mut node_total = CostBreakdown::default();
    for c in &node_costs {
        node_total.absorb(c);
    }
    let informed_nodes = report.informed[1..].iter().filter(|&&b| b).count() as u64;
    let terminated_nodes = report.terminated[1..].iter().filter(|&&b| b).count() as u64;
    let uninformed_terminated = report.informed[1..]
        .iter()
        .zip(&report.terminated[1..])
        .filter(|(&inf, &term)| term && !inf)
        .count() as u64;
    let max_node_cost = node_costs.iter().map(CostBreakdown::total).max();
    let rounds_entered = schedule
        .locate(report.slots_elapsed.saturating_sub(1))
        .round;

    BroadcastOutcome {
        n: params.n(),
        informed_nodes,
        uninformed_terminated,
        unterminated_nodes: params.n() - terminated_nodes,
        alice_terminated: report.terminated[0],
        alice_cost: report.participant_costs[0],
        node_total_cost: node_total,
        max_node_cost,
        carol_cost: report.carol_cost,
        slots: report.slots_elapsed,
        rounds_entered,
        engine: EngineKind::Exact,
        node_costs: Some(node_costs),
    }
}

/// Sanity helper used by tests: did the engine stop because everyone
/// finished?
#[must_use]
pub fn stopped_cleanly(report: &RunReport) -> bool {
    report.stop_reason == StopReason::AllTerminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::era2::BroadcastSoaScratch;
    use rcb_radio::{Adversary, SilentAdversary};

    /// Convenience for tests: one-shot scratch run.
    fn run_broadcast(
        params: &Params,
        adversary: &mut dyn Adversary,
        config: &RunConfig,
    ) -> BroadcastOutcome {
        BroadcastSoaScratch::new().run(params, adversary, config).0
    }

    #[test]
    fn scratch_reuse_replays_identically() {
        // A reused scratch must be indistinguishable from a fresh roster:
        // same seed ⇒ bit-identical outcome, across different seeds and
        // even across a parameter change that forces a rebuild.
        let params_a = Params::builder(32)
            .min_termination_round(3)
            .build()
            .unwrap();
        let params_b = Params::builder(16)
            .min_termination_round(2)
            .build()
            .unwrap();
        let mut scratch = BroadcastSoaScratch::new();
        for (params, seed) in [
            (&params_a, 1u64),
            (&params_a, 2),
            (&params_b, 1),
            (&params_a, 1),
        ] {
            let cfg = RunConfig::seeded(seed);
            let (reused, _) = scratch.run(params, &mut SilentAdversary, &cfg);
            let (fresh, _) = BroadcastSoaScratch::new().run(params, &mut SilentAdversary, &cfg);
            assert_eq!(reused.slots, fresh.slots);
            assert_eq!(reused.informed_nodes, fresh.informed_nodes);
            assert_eq!(reused.alice_cost, fresh.alice_cost);
            assert_eq!(reused.node_total_cost, fresh.node_total_cost);
            assert_eq!(reused.node_costs, fresh.node_costs);
        }
    }

    #[test]
    fn silent_adversary_full_delivery() {
        let params = Params::builder(64)
            .min_termination_round(3)
            .build()
            .unwrap();
        let outcome = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(42));
        assert!(
            outcome.informed_fraction() >= 0.95,
            "informed {}/{}",
            outcome.informed_nodes,
            outcome.n
        );
        assert!(outcome.alice_terminated);
        assert_eq!(outcome.unterminated_nodes, 0);
        assert_eq!(outcome.carol_spend(), 0);
        assert_eq!(outcome.engine, EngineKind::Exact);
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let params = Params::builder(32)
            .min_termination_round(3)
            .build()
            .unwrap();
        let outcome = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(1));
        assert_eq!(
            outcome.informed_nodes + outcome.uninformed_terminated + outcome.unterminated_nodes,
            outcome.n,
            "every node is informed xor sacrificed xor unterminated"
        );
        let node_costs = outcome.node_costs.as_ref().unwrap();
        assert_eq!(node_costs.len(), 32);
        let total: u64 = node_costs.iter().map(|c| c.total()).sum();
        assert_eq!(total, outcome.node_total_cost.total());
        assert_eq!(
            outcome.max_node_cost.unwrap(),
            node_costs.iter().map(|c| c.total()).max().unwrap()
        );
    }

    #[test]
    fn runs_are_deterministic_by_seed() {
        let params = Params::builder(32)
            .min_termination_round(3)
            .build()
            .unwrap();
        let a = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(9));
        let b = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(9));
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.informed_nodes, b.informed_nodes);
        assert_eq!(a.alice_cost, b.alice_cost);
        assert_eq!(a.node_total_cost, b.node_total_cost);
        let c = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(10));
        // Different seeds almost surely differ somewhere.
        assert!(
            a.slots != c.slots
                || a.alice_cost != c.alice_cost
                || a.node_total_cost != c.node_total_cost
        );
    }

    #[test]
    fn quiet_run_is_cheap_for_everyone() {
        // Lemma 9: without jamming, costs are polylogarithmic.
        let params = Params::builder(256)
            .min_termination_round(4)
            .build()
            .unwrap();
        let outcome = run_broadcast(&params, &mut SilentAdversary, &RunConfig::seeded(5));
        assert!(outcome.completed());
        // Budgets provision for the worst case n^{1/2}; a quiet run must
        // spend far less.
        assert!(
            outcome.alice_cost.total() < params.alice_budget() / 2,
            "alice spent {} of {}",
            outcome.alice_cost.total(),
            params.alice_budget()
        );
        assert!(
            outcome.max_node_cost.unwrap() < params.node_budget(),
            "max node {} of {}",
            outcome.max_node_cost.unwrap(),
            params.node_budget()
        );
    }

    #[test]
    fn trace_capture_works_through_orchestration() {
        let params = Params::builder(16)
            .min_termination_round(2)
            .build()
            .unwrap();
        let (_, report) = BroadcastSoaScratch::new().run(
            &params,
            &mut SilentAdversary,
            &RunConfig::seeded(2).trace(4096),
        );
        assert!(!report.trace.is_empty());
        assert!(stopped_cleanly(&report));
    }

    #[test]
    fn unconstrained_config_lifts_budgets() {
        let params = Params::builder(16)
            .min_termination_round(2)
            .build()
            .unwrap();
        let cfg = RunConfig::seeded(3).unconstrained_correct();
        let (_, report) = BroadcastSoaScratch::new().run(&params, &mut SilentAdversary, &cfg);
        assert!(report.participant_refusals.iter().all(|&r| r == 0));
    }

    #[test]
    fn single_channel_stats_flow_through_orchestration() {
        let params = Params::builder(16)
            .min_termination_round(2)
            .build()
            .unwrap();
        let (outcome, report) =
            BroadcastSoaScratch::new().run(&params, &mut SilentAdversary, &RunConfig::seeded(5));
        assert_eq!(
            report.channel_stats.len(),
            1,
            "ε-BROADCAST is single-channel"
        );
        let stats = report.channel_stats[0];
        assert_eq!(
            stats.correct_sends,
            outcome.alice_cost.sends + outcome.node_total_cost.sends
        );
        assert_eq!(
            stats.correct_listens,
            outcome.alice_cost.listens + outcome.node_total_cost.listens
        );
        assert_eq!(stats.jammed_slots, 0);
    }
}
