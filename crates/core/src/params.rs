//! Protocol parameters and derived budgets.
//!
//! The paper's protocol is governed by a handful of constants: the budget
//! exponent `k ≥ 2`, the sacrifice fraction `ε′`, the w.h.p. constant `c`,
//! and the budget constant `C` ("large enough to subsume the constants in
//! our protocol", §2, Lemma 11). [`Params`] materialises all of them, with
//! `C` *computed* from the protocol's own per-round cost constants so that
//! default configurations provably cannot run out of energy before the
//! unblockable round `i = lg n + O(1)`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which pseudocode the probabilities follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Figure 1: the `k = 2` presentation (`2 ln n / 2^i` for Alice,
    /// `4e(c+1)/2^i` propagation listening). Only valid with `k = 2`.
    K2Paper,
    /// Figure 2: the general-`k` presentation (`2c ln^k n / 2^i` for Alice,
    /// `2ec/(ε′ 2^i)` propagation listening). Valid for every `k ≥ 2`.
    GeneralK,
}

/// §4.1 decoy-traffic configuration (reactive-adversary hardening).
///
/// Each active correct node transmits a content-free decoy with probability
/// `rate / n` per slot of the inform and propagation phases, so a reactive
/// jammer's RSSI reading cannot distinguish `m`-slots from chaff. Decoys
/// collide with `m` like any transmission, so listen probabilities are
/// boosted by `listen_boost` to compensate (the paper's re-proof of
/// Lemma 1 does the same with its own constants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoyConfig {
    /// Per-slot decoy probability is `rate / n`. The paper uses
    /// `3/(4ε′n)`; with its w.h.p.-proof-sized `ε′` that saturates the
    /// channel, so the default is `rate = 0.75` — decoys then occupy
    /// `1 − e^{−0.75} ≈ 53%` of slots, matching the paper's "half of the
    /// slots contain non-critical traffic" intuition.
    pub rate: f64,
    /// Multiplier on uninformed listen probabilities during inform and
    /// propagation phases, compensating decoy-induced collisions. The
    /// expected collision survival is `e^{−rate}`, so the default is
    /// `2·e^{rate}`.
    pub listen_boost: f64,
}

impl DecoyConfig {
    /// The default hardening: `rate = 0.75`, `listen_boost = 2·e^{0.75}`.
    #[must_use]
    pub fn recommended() -> Self {
        Self {
            rate: 0.75,
            listen_boost: 2.0 * (0.75f64).exp(),
        }
    }
}

/// §4.2: what nodes know about the system size `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeKnowledge {
    /// Nodes know `n` exactly (the baseline model).
    Exact,
    /// Nodes share a constant-factor approximation `n̂` of `n` and use it
    /// wherever `n` or `ln n` appears; costs grow by a constant factor.
    Approximate {
        /// The shared estimate.
        n_hat: u64,
    },
    /// Nodes share only a polynomial overestimate `ν = n^{c′}` and run the
    /// §4.2 `g`-loop: send-probability steps are swept over `2^{−g}` for
    /// `g = 1..⌈lg ν⌉`, multiplying propagation/request cost by a `log`
    /// factor.
    PolynomialOverestimate {
        /// The overestimate `ν ≥ n`.
        nu: u64,
    },
}

/// Validated ε-BROADCAST parameters.
///
/// Build with [`Params::builder`]:
///
/// ```
/// use rcb_core::Params;
/// let params = Params::builder(512).k(2).epsilon_prime(0.05).build()?;
/// assert_eq!(params.n(), 512);
/// assert!(params.node_budget() > 0);
/// # Ok::<(), rcb_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    n: u64,
    k: u32,
    epsilon_prime: f64,
    c: f64,
    variant: Variant,
    start_round: u32,
    min_termination_round: u32,
    max_round_margin: u32,
    decoys: Option<DecoyConfig>,
    size_knowledge: SizeKnowledge,
    budget_scale: f64,
}

impl Params {
    /// Starts building parameters for a network of `n` correct nodes.
    #[must_use]
    pub fn builder(n: u64) -> ParamsBuilder {
        ParamsBuilder::new(n)
    }

    /// Number of correct receiver nodes.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The budget exponent `k ≥ 2`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The sacrifice constant `ε′`.
    #[must_use]
    pub fn epsilon_prime(&self) -> f64 {
        self.epsilon_prime
    }

    /// The w.h.p. constant `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Which pseudocode variant drives the probabilities.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// First executed round index (the paper starts analysis at
    /// `3 lg ln n` but notes nodes "may start with i = 1", §2.3).
    #[must_use]
    pub fn start_round(&self) -> u32 {
        self.start_round
    }

    /// Rounds strictly below this never terminate (the `d lg ln n` floor of
    /// §2.3; without it the request-phase counters have not concentrated).
    #[must_use]
    pub fn min_termination_round(&self) -> u32 {
        self.min_termination_round
    }

    /// Last schedulable round: `⌈lg n⌉ + margin`.
    #[must_use]
    pub fn max_round(&self) -> u32 {
        self.lg_n_ceil() + self.max_round_margin
    }

    /// Decoy hardening, if enabled.
    #[must_use]
    pub fn decoys(&self) -> Option<DecoyConfig> {
        self.decoys
    }

    /// What nodes know about `n`.
    #[must_use]
    pub fn size_knowledge(&self) -> SizeKnowledge {
        self.size_knowledge
    }

    /// `ln n` as used by the protocol — computed from the *known* size
    /// (estimate or overestimate), not the true `n`.
    #[must_use]
    pub fn ln_n(&self) -> f64 {
        (self.known_n() as f64).ln().max(1.0)
    }

    /// The size value nodes plug into probability formulas.
    #[must_use]
    pub fn known_n(&self) -> u64 {
        match self.size_knowledge {
            SizeKnowledge::Exact => self.n,
            SizeKnowledge::Approximate { n_hat } => n_hat,
            SizeKnowledge::PolynomialOverestimate { nu } => nu,
        }
    }

    /// `⌈lg n⌉` over the true population.
    #[must_use]
    pub fn lg_n_ceil(&self) -> u32 {
        64 - (self.n.max(2) - 1).leading_zeros()
    }

    /// The request-phase termination threshold `5 c ln n`.
    #[must_use]
    pub fn termination_threshold(&self) -> u64 {
        (5.0 * self.c * self.ln_n()).ceil() as u64
    }

    /// Number of propagation steps per round (`k − 1`).
    #[must_use]
    pub fn propagation_steps(&self) -> u32 {
        self.k - 1
    }

    /// Worst-case expected spend of a node that stays uninformed for the
    /// *entire* schedule: the exact sum of (clamped) per-slot probabilities
    /// over every phase of every round. This is the constant Lemma 11
    /// calls `d·2^{i/k}` summed, but computed from the executable formulas
    /// so clamping in early rounds is accounted for.
    #[must_use]
    pub fn expected_node_cost_ceiling(&self) -> f64 {
        let schedule = crate::schedule::RoundSchedule::new(self);
        let mut total = 0.0;
        for (round, phase, len) in schedule.phases() {
            let p = crate::probabilities::phase_probabilities(self, round, phase);
            let per_slot = match phase {
                crate::schedule::PhaseKind::Inform
                | crate::schedule::PhaseKind::Propagation { .. } => {
                    p.uninformed_listen + p.decoy_send
                }
                crate::schedule::PhaseKind::Request => p.uninformed_listen + p.uninformed_nack,
            };
            total += len as f64 * per_slot;
        }
        total
    }

    /// Alice's worst-case expected spend over the entire schedule (inform
    /// sends plus request listens), from the executable formulas.
    #[must_use]
    pub fn expected_alice_cost_ceiling(&self) -> f64 {
        let schedule = crate::schedule::RoundSchedule::new(self);
        let mut total = 0.0;
        for (round, phase, len) in schedule.phases() {
            let p = crate::probabilities::phase_probabilities(self, round, phase);
            total += len as f64 * (p.alice_send + p.alice_listen);
        }
        total
    }

    /// A provably sufficient per-node budget (Lemma 11's `C·n^{1/k}` with
    /// `C` computed, not guessed): triple the worst-case expectation, so
    /// Chernoff concentration leaves exhaustion probability negligible.
    #[must_use]
    pub fn node_budget(&self) -> u64 {
        (3.0 * self.expected_node_cost_ceiling() * self.budget_scale).ceil() as u64 + 64
    }

    /// A provably sufficient budget for Alice (same construction).
    #[must_use]
    pub fn alice_budget(&self) -> u64 {
        (3.0 * self.expected_alice_cost_ceiling() * self.budget_scale).ceil() as u64 + 64
    }

    /// The first round Carol cannot block with `carol_budget` units:
    /// blocking round `i` costs at least `phase_len(i)/2 + 1` (more than
    /// half of one phase), so walking rounds in order and deducting the
    /// cheapest block tells us where she necessarily goes broke — the
    /// engine of Lemma 11's termination argument.
    #[must_use]
    pub fn unblockable_round(&self, carol_budget: u64) -> u32 {
        let mut remaining = carol_budget;
        let mut i = self.start_round;
        loop {
            let len = 2f64
                .powf((1.0 + 1.0 / f64::from(self.k)) * f64::from(i))
                .ceil() as u64;
            let need = len / 2 + 1;
            if remaining < need || i >= 60 {
                return i;
            }
            remaining -= need;
            i += 1;
        }
    }

    /// Carol's pooled budget for Byzantine ratio `f`: her `f·n` devices at
    /// one node budget each, plus her personal Alice-sized allowance (the
    /// symmetry concession of §1.1).
    #[must_use]
    pub fn carol_budget(&self, f: f64) -> u64 {
        assert!(f >= 0.0, "byzantine ratio must be nonnegative");
        let devices = (f * self.n as f64).round() as u64;
        devices * self.node_budget() + self.alice_budget()
    }

    /// Returns a copy with decoy hardening enabled.
    #[must_use]
    pub fn with_decoys(mut self, decoys: DecoyConfig) -> Self {
        self.decoys = Some(decoys);
        self
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ε-BROADCAST(n={}, k={}, ε′={}, c={}, rounds {}..={})",
            self.n,
            self.k,
            self.epsilon_prime,
            self.c,
            self.start_round,
            self.max_round()
        )
    }
}

/// Error from [`ParamsBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// `n` was too small for the protocol to be meaningful.
    PopulationTooSmall,
    /// `k` was outside `[2, 8]` (the paper requires constant `k ≥ 2`;
    /// §3.2 shows `k = ω(1)` is infeasible, and beyond 8 the `ln^k n`
    /// factors dwarf any practical `n`).
    InvalidK,
    /// `ε′` was not in `(0, 1)`.
    InvalidEpsilon,
    /// `c` was not positive and finite.
    InvalidC,
    /// The [`Variant::K2Paper`] pseudocode was requested with `k ≠ 2`.
    VariantRequiresK2,
    /// A size estimate was smaller than 2 or wildly inconsistent.
    InvalidSizeKnowledge,
    /// `budget_scale` was not positive and finite.
    InvalidBudgetScale,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ParamsError::PopulationTooSmall => "population n must be at least 8",
            ParamsError::InvalidK => "k must be in [2, 8]",
            ParamsError::InvalidEpsilon => "epsilon prime must be in (0, 1)",
            ParamsError::InvalidC => "c must be positive and finite",
            ParamsError::VariantRequiresK2 => "the Figure-1 variant requires k = 2",
            ParamsError::InvalidSizeKnowledge => "size estimate must be at least 2",
            ParamsError::InvalidBudgetScale => "budget scale must be positive and finite",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamsError {}

/// Builder for [`Params`].
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    n: u64,
    k: u32,
    epsilon_prime: f64,
    c: f64,
    variant: Variant,
    start_round: u32,
    min_termination_round: Option<u32>,
    max_round_margin: u32,
    decoys: Option<DecoyConfig>,
    size_knowledge: SizeKnowledge,
    budget_scale: f64,
}

impl ParamsBuilder {
    fn new(n: u64) -> Self {
        Self {
            n,
            k: 2,
            epsilon_prime: 0.005,
            c: 2.0,
            variant: Variant::GeneralK,
            start_round: 1,
            min_termination_round: None,
            max_round_margin: 2,
            decoys: None,
            size_knowledge: SizeKnowledge::Exact,
            budget_scale: 1.0,
        }
    }

    /// Sets the budget exponent `k` (default 2).
    #[must_use]
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets `ε′` (default 0.005).
    ///
    /// Must be small: the termination margins of Lemmas 4–7 hinge on the
    /// separation between `1 − e^{−4ε′}`, `1 − e^{−64ε′}` and the nack
    /// saturation level — for `ε′ ≳ 0.02` the expected noisy count under
    /// full jamming drops *below* the `5c ln n` threshold and the protocol
    /// mis-terminates (this is the paper's "for `n` sufficiently large /
    /// `ε′` arbitrarily small" fine print made concrete).
    #[must_use]
    pub fn epsilon_prime(mut self, eps: f64) -> Self {
        self.epsilon_prime = eps;
        self
    }

    /// Sets the w.h.p. constant `c` (default 2).
    #[must_use]
    pub fn c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Selects the pseudocode variant (default [`Variant::GeneralK`]).
    #[must_use]
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the first executed round (default 1).
    #[must_use]
    pub fn start_round(mut self, round: u32) -> Self {
        self.start_round = round;
        self
    }

    /// Overrides the earliest round in which termination is allowed
    /// (default `⌈3·lg ln n⌉`).
    #[must_use]
    pub fn min_termination_round(mut self, round: u32) -> Self {
        self.min_termination_round = Some(round);
        self
    }

    /// Extra rounds past `⌈lg n⌉` the schedule provisions (default 2).
    #[must_use]
    pub fn max_round_margin(mut self, margin: u32) -> Self {
        self.max_round_margin = margin;
        self
    }

    /// Enables §4.1 decoy hardening.
    #[must_use]
    pub fn decoys(mut self, decoys: DecoyConfig) -> Self {
        self.decoys = Some(decoys);
        self
    }

    /// Sets what nodes know about `n` (default exact).
    #[must_use]
    pub fn size_knowledge(mut self, knowledge: SizeKnowledge) -> Self {
        self.size_knowledge = knowledge;
        self
    }

    /// Scales the computed budgets (default 1.0; below 1 deliberately
    /// starves participants for failure-injection tests).
    #[must_use]
    pub fn budget_scale(mut self, scale: f64) -> Self {
        self.budget_scale = scale;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the first constraint violated.
    pub fn build(self) -> Result<Params, ParamsError> {
        if self.n < 8 {
            return Err(ParamsError::PopulationTooSmall);
        }
        if !(2..=8).contains(&self.k) {
            return Err(ParamsError::InvalidK);
        }
        if !self.epsilon_prime.is_finite()
            || !(0.0..1.0).contains(&self.epsilon_prime)
            || self.epsilon_prime == 0.0
        {
            return Err(ParamsError::InvalidEpsilon);
        }
        if !self.c.is_finite() || self.c <= 0.0 {
            return Err(ParamsError::InvalidC);
        }
        if self.variant == Variant::K2Paper && self.k != 2 {
            return Err(ParamsError::VariantRequiresK2);
        }
        match self.size_knowledge {
            SizeKnowledge::Exact => {}
            SizeKnowledge::Approximate { n_hat }
            | SizeKnowledge::PolynomialOverestimate { nu: n_hat } => {
                if n_hat < 2 {
                    return Err(ParamsError::InvalidSizeKnowledge);
                }
            }
        }
        if !self.budget_scale.is_finite() || self.budget_scale <= 0.0 {
            return Err(ParamsError::InvalidBudgetScale);
        }
        let ln_ln = ((self.n as f64).ln().max(std::f64::consts::E))
            .ln()
            .max(1.0);
        let default_min_term = (3.0 * ln_ln / 2f64.ln()).ceil() as u32;
        Ok(Params {
            n: self.n,
            k: self.k,
            epsilon_prime: self.epsilon_prime,
            c: self.c,
            variant: self.variant,
            start_round: self.start_round.max(1),
            min_termination_round: self
                .min_termination_round
                .unwrap_or(default_min_term)
                .max(self.start_round),
            max_round_margin: self.max_round_margin,
            decoys: self.decoys,
            size_knowledge: self.size_knowledge,
            budget_scale: self.budget_scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let p = Params::builder(1024).build().unwrap();
        assert_eq!(p.n(), 1024);
        assert_eq!(p.k(), 2);
        assert_eq!(p.lg_n_ceil(), 10);
        assert_eq!(p.propagation_steps(), 1);
        assert!(p.decoys().is_none());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Params::builder(2).build().unwrap_err(),
            ParamsError::PopulationTooSmall
        );
        assert_eq!(
            Params::builder(64).k(1).build().unwrap_err(),
            ParamsError::InvalidK
        );
        assert_eq!(
            Params::builder(64).k(9).build().unwrap_err(),
            ParamsError::InvalidK
        );
        assert_eq!(
            Params::builder(64).epsilon_prime(0.0).build().unwrap_err(),
            ParamsError::InvalidEpsilon
        );
        assert_eq!(
            Params::builder(64).epsilon_prime(1.0).build().unwrap_err(),
            ParamsError::InvalidEpsilon
        );
        assert_eq!(
            Params::builder(64).c(0.0).build().unwrap_err(),
            ParamsError::InvalidC
        );
        assert_eq!(
            Params::builder(64)
                .k(3)
                .variant(Variant::K2Paper)
                .build()
                .unwrap_err(),
            ParamsError::VariantRequiresK2
        );
        assert_eq!(
            Params::builder(64).budget_scale(0.0).build().unwrap_err(),
            ParamsError::InvalidBudgetScale
        );
        assert_eq!(
            Params::builder(64)
                .size_knowledge(SizeKnowledge::Approximate { n_hat: 1 })
                .build()
                .unwrap_err(),
            ParamsError::InvalidSizeKnowledge
        );
    }

    #[test]
    fn lg_n_is_ceiling() {
        assert_eq!(Params::builder(8).build().unwrap().lg_n_ceil(), 3);
        assert_eq!(Params::builder(9).build().unwrap().lg_n_ceil(), 4);
        assert_eq!(Params::builder(1023).build().unwrap().lg_n_ceil(), 10);
        assert_eq!(Params::builder(1024).build().unwrap().lg_n_ceil(), 10);
        assert_eq!(Params::builder(1025).build().unwrap().lg_n_ceil(), 11);
    }

    #[test]
    fn min_termination_round_default_tracks_lg_ln_n() {
        // n = 1024: ln n ≈ 6.93, lg(6.93) ≈ 2.79, ×3 ≈ 8.38 → 9.
        let p = Params::builder(1024).build().unwrap();
        assert_eq!(p.min_termination_round(), 9);
        // Explicit override wins.
        let p = Params::builder(1024)
            .min_termination_round(4)
            .build()
            .unwrap();
        assert_eq!(p.min_termination_round(), 4);
    }

    #[test]
    fn budgets_scale_as_n_to_one_over_k() {
        // Four-fold n should roughly double the k=2 node budget (the
        // clamped early rounds contribute an n-independent floor, so the
        // practical-n ratio sits a bit above the asymptotic 2).
        let b1 = Params::builder(1 << 10).build().unwrap().node_budget();
        let b2 = Params::builder(1 << 12).build().unwrap().node_budget();
        let ratio = b2 as f64 / b1 as f64;
        assert!((1.5..3.4).contains(&ratio), "ratio {ratio}");
        // k = 3: four-fold n → asymptotically 4^{1/3} ≈ 1.59; again the
        // clamp floor inflates small-n ratios.
        let b1 = Params::builder(1 << 10).k(3).build().unwrap().node_budget();
        let b2 = Params::builder(1 << 12).k(3).build().unwrap().node_budget();
        let ratio = b2 as f64 / b1 as f64;
        assert!((1.2..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn budgets_are_positive_and_cover_expectations() {
        let p = Params::builder(4096).build().unwrap();
        assert!(p.node_budget() as f64 >= 3.0 * p.expected_node_cost_ceiling());
        assert!(p.alice_budget() as f64 >= 3.0 * p.expected_alice_cost_ceiling());
        // budget_scale stretches budgets proportionally.
        let stretched = Params::builder(4096).budget_scale(2.0).build().unwrap();
        assert!(stretched.node_budget() > p.node_budget());
    }

    #[test]
    fn unblockable_round_tracks_carol_budget() {
        let p = Params::builder(1024).build().unwrap();
        // Tiny budget: she cannot even block round 1.
        assert_eq!(p.unblockable_round(0), 1);
        // Budgets strictly increase the round she can disrupt.
        let r_small = p.unblockable_round(1_000);
        let r_big = p.unblockable_round(1_000_000);
        assert!(r_big > r_small);
        // Blocking through round r costs ~2^{1.5r}; 10^6 ≈ 2^20 → r ≈ 13.
        assert!((12..=15).contains(&r_big), "round {r_big}");
    }

    #[test]
    fn carol_budget_composition() {
        let p = Params::builder(256).build().unwrap();
        let solo = p.carol_budget(0.0);
        assert_eq!(solo, p.alice_budget());
        let with_devices = p.carol_budget(1.0);
        assert_eq!(with_devices, 256 * p.node_budget() + p.alice_budget());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn carol_budget_rejects_negative_f() {
        let p = Params::builder(256).build().unwrap();
        let _ = p.carol_budget(-0.5);
    }

    #[test]
    fn known_n_respects_size_knowledge() {
        let exact = Params::builder(100).build().unwrap();
        assert_eq!(exact.known_n(), 100);
        let approx = Params::builder(100)
            .size_knowledge(SizeKnowledge::Approximate { n_hat: 180 })
            .build()
            .unwrap();
        assert_eq!(approx.known_n(), 180);
        let over = Params::builder(100)
            .size_knowledge(SizeKnowledge::PolynomialOverestimate { nu: 10_000 })
            .build()
            .unwrap();
        assert_eq!(over.known_n(), 10_000);
        assert!(over.ln_n() > approx.ln_n());
    }

    #[test]
    fn termination_threshold_formula() {
        let p = Params::builder(1024).c(2.0).build().unwrap();
        let expect = (5.0 * 2.0 * (1024f64).ln()).ceil() as u64;
        assert_eq!(p.termination_threshold(), expect);
    }

    #[test]
    fn decoy_config_recommended() {
        let d = DecoyConfig::recommended();
        assert!(d.rate > 0.0 && d.rate < 1.0);
        assert!(d.listen_boost > 1.0);
        let p = Params::builder(128).decoys(d).build().unwrap();
        assert!(p.decoys().is_some());
        // Decoys raise the cost ceiling.
        let plain = Params::builder(128).build().unwrap();
        assert!(p.expected_node_cost_ceiling() > plain.expected_node_cost_ceiling());
    }

    #[test]
    fn display_mentions_shape() {
        let p = Params::builder(64).build().unwrap();
        let s = p.to_string();
        assert!(s.contains("n=64"));
        assert!(s.contains("k=2"));
    }
}
