//! Outcome types shared by the exact and fast simulation paths.

use rcb_radio::CostBreakdown;
use serde::{Deserialize, Serialize};

/// Which simulator produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The slot-by-slot per-node engine (ground truth).
    Exact,
    /// The phase-level aggregated simulator.
    Fast,
    /// The deterministic mean-field fluid-limit engine (no RNG,
    /// O(phases) independent of `n`).
    Fluid,
}

/// Everything an experiment needs to know about one broadcast execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BroadcastOutcome {
    /// Number of correct receiver nodes.
    pub n: u64,
    /// Nodes that hold `m` at the end (Alice excluded).
    pub informed_nodes: u64,
    /// Nodes that terminated *without* `m` (the sacrificed ε-fraction).
    pub uninformed_terminated: u64,
    /// Nodes still running when the simulation stopped (0 in a clean run).
    pub unterminated_nodes: u64,
    /// Whether Alice reached her termination condition.
    pub alice_terminated: bool,
    /// Alice's spend.
    pub alice_cost: CostBreakdown,
    /// Sum of all receiver nodes' spend.
    pub node_total_cost: CostBreakdown,
    /// Largest single node spend, when per-node accounting is available
    /// (always for the exact engine; tagged-sample maximum for the fast
    /// one).
    pub max_node_cost: Option<u64>,
    /// Carol's pooled spend — the `T` of Theorem 1.
    pub carol_cost: CostBreakdown,
    /// Slots elapsed until the run stopped.
    pub slots: u64,
    /// Highest round index entered.
    pub rounds_entered: u32,
    /// Which simulator produced this outcome.
    pub engine: EngineKind,
    /// Per-node spends (exact engine only; `None` for the fast simulator).
    pub node_costs: Option<Vec<CostBreakdown>>,
}

impl BroadcastOutcome {
    /// Fraction of nodes informed, in `[0, 1]`.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        self.informed_nodes as f64 / self.n as f64
    }

    /// Mean per-node spend.
    #[must_use]
    pub fn mean_node_cost(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.node_total_cost.total() as f64 / self.n as f64
    }

    /// Carol's total spend `T`.
    #[must_use]
    pub fn carol_spend(&self) -> u64 {
        self.carol_cost.total()
    }

    /// Whether the run completed cleanly: Alice and every node terminated.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.alice_terminated && self.unterminated_nodes == 0
    }

    /// The resource-competitive ratio from the node side:
    /// `mean node cost / max(T, 1)`.
    #[must_use]
    pub fn node_competitive_ratio(&self) -> f64 {
        self.mean_node_cost() / self.carol_spend().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(n: u64, informed: u64) -> BroadcastOutcome {
        BroadcastOutcome {
            n,
            informed_nodes: informed,
            uninformed_terminated: n - informed,
            unterminated_nodes: 0,
            alice_terminated: true,
            alice_cost: CostBreakdown {
                sends: 10,
                listens: 5,
                jams: 0,
            },
            node_total_cost: CostBreakdown {
                sends: 4,
                listens: 2 * n,
                jams: 0,
            },
            max_node_cost: Some(9),
            carol_cost: CostBreakdown {
                sends: 3,
                listens: 0,
                jams: 97,
            },
            slots: 1000,
            rounds_entered: 7,
            engine: EngineKind::Exact,
            node_costs: None,
        }
    }

    #[test]
    fn fractions_and_means() {
        let o = outcome(100, 95);
        assert!((o.informed_fraction() - 0.95).abs() < 1e-12);
        assert!((o.mean_node_cost() - 2.04).abs() < 1e-12);
        assert_eq!(o.carol_spend(), 100);
        assert!(o.completed());
        assert!((o.node_competitive_ratio() - 0.0204).abs() < 1e-9);
    }

    #[test]
    fn degenerate_population() {
        let o = outcome(0, 0);
        assert_eq!(o.informed_fraction(), 1.0);
        assert_eq!(o.mean_node_cost(), 0.0);
    }

    #[test]
    fn incomplete_runs_detected() {
        let mut o = outcome(10, 10);
        o.unterminated_nodes = 1;
        assert!(!o.completed());
        let mut o2 = outcome(10, 10);
        o2.alice_terminated = false;
        assert!(!o2.completed());
    }
}
