//! Phase-level aggregated simulator.
//!
//! The exact engine costs `O(n · slots)` and the final round alone has
//! `Θ(n^{1+1/k})` slots, so sweeping `n` into the hundreds of thousands
//! needs a different gear. This simulator advances one *phase* at a time
//! using closed-form aggregates:
//!
//! * counts of sends/listens are drawn **exactly** as binomials over
//!   (population × slots) Bernoulli trials — the sum of `u` independent
//!   `Bin(s, p)` variables *is* `Bin(u·s, p)`;
//! * per-phase delivery uses the same structure as the paper's own
//!   analysis (Lemmas 1–3): a node that starts a phase uninformed listens
//!   with the phase-constant probability, and a slot delivers if exactly
//!   one transmission survives jamming and decoy collisions;
//! * request-phase termination uses the exact per-node distribution
//!   `P(Bin(s, q·p_noisy) ≤ 5c ln n)` via log-space binomial CDF.
//!
//! Approximations relative to the exact engine (all validated statistically
//! in `tests/fast_vs_exact.rs`): state changes take effect at phase
//! boundaries (as in the paper's lemmas), jam/transmission slot overlaps
//! are treated as independent thinning, and a node's exclusion of its own
//! transmissions is ignored (an `O(1/n)` effect).
//!
//! The adversary is consulted once per phase through [`PhaseAdversary`] —
//! the phase-level counterpart of `rcb_radio::Adversary`.

use rcb_radio::CostBreakdown;
use rcb_rng::math::binomial_cdf_upto;
use rcb_rng::{Binomial, SeedTree, SimRng};
use rcb_telemetry::{Collector, EngineTier, Event, MetricId, NoopCollector};

use crate::outcome::{BroadcastOutcome, EngineKind};
use crate::params::Params;
use crate::probabilities::phase_probabilities;
use crate::schedule::{PhaseKind, RoundSchedule};

/// Phase-level context handed to the adversary.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCtx {
    /// Round index `i`.
    pub round: u32,
    /// Which phase is about to run.
    pub phase: PhaseKind,
    /// Its length in slots.
    pub phase_len: u64,
    /// Carol's remaining pooled budget (`None` = unlimited).
    pub budget_remaining: Option<u64>,
    /// Number of still-active uninformed nodes (Carol is adaptive: she has
    /// full information about past behaviour, which at phase granularity
    /// is exactly this).
    pub uninformed: u64,
}

/// Carol's plan for one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhasePlan {
    /// Slots jammed (positions uniform over the phase unless `spare` is
    /// set). Costs one unit each; clamped to the remaining budget.
    pub jam_slots: u64,
    /// n-uniform targeting: if `Some(x)`, the jamming is *total* (applies
    /// to every jammed slot for every listener) **except** that `x`
    /// adversary-chosen uninformed nodes are spared and experience no
    /// jamming at all — the ε-extraction attack of §2.3.
    pub spare: Option<u64>,
    /// Byzantine spoofed frames (fake nacks in request phases, garbage in
    /// inform/propagation), each in its own uniformly-random slot. Costs
    /// one unit each.
    pub byz_sends: u64,
}

impl PhasePlan {
    /// A plan that does nothing.
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// Jam `slots` slots uniformly.
    #[must_use]
    pub fn jam(slots: u64) -> Self {
        Self {
            jam_slots: slots,
            ..Self::default()
        }
    }
}

/// Phase-granularity adversary interface (fast-simulator counterpart of
/// `rcb_radio::Adversary`).
pub trait PhaseAdversary {
    /// Decides the plan for the phase described by `ctx`.
    fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan;
}

/// The no-attack phase adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentPhaseAdversary;

impl PhaseAdversary for SilentPhaseAdversary {
    fn plan_phase(&mut self, _ctx: &PhaseCtx) -> PhasePlan {
        PhasePlan::idle()
    }
}

/// Configuration for a fast run.
#[derive(Debug, Clone, Copy)]
pub struct FastConfig {
    /// Carol's pooled budget (`None` = unlimited).
    pub carol_budget: Option<u64>,
    /// Master seed.
    pub seed: u64,
}

impl FastConfig {
    /// Seeded config with unlimited Carol budget.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            carol_budget: None,
            seed,
        }
    }

    /// Caps Carol's budget.
    #[must_use]
    pub fn carol_budget(mut self, budget: u64) -> Self {
        self.carol_budget = Some(budget);
        self
    }
}

/// Runs ε-BROADCAST at phase granularity.
///
/// # Example
///
/// ```
/// use rcb_core::fast::{run_fast, FastConfig, SilentPhaseAdversary};
/// use rcb_core::Params;
///
/// let params = Params::builder(100_000).min_termination_round(6).build()?;
/// let outcome = run_fast(&params, &mut SilentPhaseAdversary, &FastConfig::seeded(3));
/// assert!(outcome.informed_fraction() > 0.95);
/// # Ok::<(), rcb_core::ParamsError>(())
/// ```
#[must_use]
pub fn run_fast(
    params: &Params,
    adversary: &mut dyn PhaseAdversary,
    config: &FastConfig,
) -> BroadcastOutcome {
    run_fast_with(params, adversary, config, &NoopCollector)
}

/// [`run_fast`] with a telemetry collector attached.
///
/// When the collector is enabled, every phase emits one structured
/// [`Event`] (tier `fast`) carrying the quantities the phase-level
/// engine is otherwise opaque about: the rendezvous probability of an
/// uninformed listener, the surviving-slot fraction after jam thinning,
/// and requested-versus-executed jam slots (the difference is Carol's
/// budget fizzle). Telemetry is purely observational — it never draws
/// from the run's RNG stream.
#[must_use]
pub fn run_fast_with<C: Collector + ?Sized>(
    params: &Params,
    adversary: &mut dyn PhaseAdversary,
    config: &FastConfig,
    collector: &C,
) -> BroadcastOutcome {
    let telemetry = collector.enabled();
    let seeds = SeedTree::new(config.seed);
    let mut rng: SimRng = seeds.stream("fast-sim", 0);
    let schedule = RoundSchedule::new(params);
    let n = params.n();
    let threshold = params.termination_threshold();

    let mut state = FastState {
        uninformed: n,
        relay_set: 0,
        informed_done: 0,
        uninformed_terminated: 0,
        alice_terminated: false,
        alice: CostBreakdown::default(),
        nodes: CostBreakdown::default(),
        carol: CostBreakdown::default(),
        carol_budget: config.carol_budget,
        slots: 0,
        rounds_entered: params.start_round(),
    };

    for (phase_idx, (round, phase, phase_len)) in schedule.phases().enumerate() {
        if state.finished() {
            break;
        }
        state.rounds_entered = round;
        let requested = {
            let ctx = PhaseCtx {
                round,
                phase,
                phase_len,
                budget_remaining: state.carol_remaining(),
                uninformed: state.uninformed,
            };
            adversary.plan_phase(&ctx)
        };
        let plan = state.charge_carol(requested, phase_len);
        let probs = phase_probabilities(params, round, phase);

        let digest = match phase {
            PhaseKind::Inform => state.run_seeding_phase(
                params,
                &mut rng,
                phase_len,
                &plan,
                SeedingKind::AliceInform {
                    alice_send: probs.alice_send,
                },
                probs.uninformed_listen,
                probs.decoy_send,
            ),
            PhaseKind::Propagation { step } => {
                let relays = state.relay_set;
                let digest = state.run_seeding_phase(
                    params,
                    &mut rng,
                    phase_len,
                    &plan,
                    SeedingKind::Relays {
                        relays,
                        send_p: probs.informed_send,
                    },
                    probs.uninformed_listen,
                    probs.decoy_send,
                );
                // The old relay set terminates informed at the end of its
                // step; nodes informed in the final step get no duty and
                // terminate when the request phase starts.
                state.informed_done += relays;
                if step == params.propagation_steps() {
                    state.informed_done += state.relay_set;
                    state.relay_set = 0;
                }
                digest
            }
            PhaseKind::Request => {
                state.run_request_phase(params, &mut rng, phase_len, &plan, threshold, round)
            }
        };
        state.slots += phase_len;

        if telemetry {
            collector.add(MetricId::FastPhases, 1);
            collector.add(MetricId::FastInformed, digest.informed);
            collector.add(
                MetricId::FastJamRequested,
                requested.jam_slots.min(phase_len),
            );
            collector.add(MetricId::FastJamExecuted, plan.jam_slots);
            collector.gauge(MetricId::FastRendezvousP, digest.rendezvous_p);
            collector.gauge(MetricId::FastSurviveP, digest.survive_p);
            collector.event(
                Event::new(EngineTier::Fast, "broadcast", "phase", phase_idx as u64)
                    .field("round", f64::from(round))
                    .field("phase_len", phase_len as f64)
                    .field("jam_requested", requested.jam_slots.min(phase_len) as f64)
                    .field("jam_executed", plan.jam_slots as f64)
                    .field("newly_informed", digest.informed as f64)
                    .field("terminated", digest.terminated as f64)
                    .field("rendezvous_p", digest.rendezvous_p)
                    .field("survive_p", digest.survive_p)
                    .field("uninformed", state.uninformed as f64),
            );
        }
    }

    BroadcastOutcome {
        n,
        informed_nodes: state.informed_done + state.relay_set,
        uninformed_terminated: state.uninformed_terminated,
        unterminated_nodes: state.uninformed,
        alice_terminated: state.alice_terminated,
        alice_cost: state.alice,
        node_total_cost: state.nodes,
        max_node_cost: None,
        carol_cost: state.carol,
        slots: state.slots,
        rounds_entered: state.rounds_entered,
        engine: EngineKind::Fast,
        node_costs: None,
    }
}

/// Who is seeding `m` this phase.
enum SeedingKind {
    AliceInform { alice_send: f64 },
    Relays { relays: u64, send_p: f64 },
}

/// Per-phase aggregates surfaced through telemetry events. Computed
/// from values the phase derives anyway, so returning it costs nothing.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseDigest {
    /// Nodes newly informed this phase (seeding phases only).
    informed: u64,
    /// Uninformed nodes that terminated this phase (request phases only).
    terminated: u64,
    /// Probability an uninformed listener rendezvoused with a surviving
    /// `m`-slot (request phases: 0).
    rendezvous_p: f64,
    /// Fraction of `m`-slots surviving jam/spoof/decoy thinning
    /// (request phases: the complement of the noise probability).
    survive_p: f64,
}

struct FastState {
    uninformed: u64,
    relay_set: u64,
    informed_done: u64,
    uninformed_terminated: u64,
    alice_terminated: bool,
    alice: CostBreakdown,
    nodes: CostBreakdown,
    carol: CostBreakdown,
    carol_budget: Option<u64>,
    slots: u64,
    rounds_entered: u32,
}

impl FastState {
    fn finished(&self) -> bool {
        self.uninformed == 0 && self.relay_set == 0 && self.alice_terminated
    }

    fn carol_remaining(&self) -> Option<u64> {
        self.carol_budget
            .map(|cap| cap.saturating_sub(self.carol.total()))
    }

    /// Clamps a plan to Carol's remaining budget and charges it.
    fn charge_carol(&mut self, mut plan: PhasePlan, phase_len: u64) -> PhasePlan {
        plan.jam_slots = plan.jam_slots.min(phase_len);
        plan.byz_sends = plan.byz_sends.min(phase_len);
        if let Some(rem) = self.carol_remaining() {
            plan.jam_slots = plan.jam_slots.min(rem);
            let after_jam = rem - plan.jam_slots;
            plan.byz_sends = plan.byz_sends.min(after_jam);
        }
        self.carol.jams += plan.jam_slots;
        self.carol.sends += plan.byz_sends;
        plan
    }

    /// Inform and propagation phases share one structure: a seeding source
    /// transmits `m`; uninformed nodes listen; jamming/decoys/spoofs thin
    /// the successful slots; listeners of surviving slots become informed.
    #[allow(clippy::too_many_arguments)]
    fn run_seeding_phase(
        &mut self,
        params: &Params,
        rng: &mut SimRng,
        s: u64,
        plan: &PhasePlan,
        seeding: SeedingKind,
        listen_p: f64,
        decoy_p: f64,
    ) -> PhaseDigest {
        let u = self.uninformed;
        // Decoy-noise probability per slot (decoy senders: all active
        // correct nodes ≈ uninformed + relays).
        let active = u + self.relay_set;
        let p_decoy_slot = if decoy_p > 0.0 {
            1.0 - (1.0 - decoy_p).powf(active as f64)
        } else {
            0.0
        };
        // Decoy transmission costs.
        if decoy_p > 0.0 && active > 0 {
            let decoy_sends = sample_bin(rng, active.saturating_mul(s), decoy_p);
            self.nodes.sends += decoy_sends;
        }

        // Slots carrying exactly one copy of m from the seeding source.
        let m_slots = match seeding {
            SeedingKind::AliceInform { alice_send } => {
                let sends = sample_bin(rng, s, alice_send);
                self.alice.sends += sends;
                sends
            }
            SeedingKind::Relays { relays, send_p } => {
                if relays == 0 {
                    self.relay_set = 0;
                    return PhaseDigest::default();
                }
                let total_sends = sample_bin(rng, relays.saturating_mul(s), send_p);
                self.nodes.sends += total_sends;
                // Slots with exactly one relay transmission.
                let p_one = exactly_one_prob(relays, send_p);
                sample_bin(rng, s, p_one)
            }
        };

        // Thinning: survive uniform jamming, byz collisions, decoy
        // collisions.
        let clean_frac = if plan.spare.is_some() {
            1.0 // spared nodes experience no jamming; others get nothing
        } else {
            1.0 - plan.jam_slots as f64 / s as f64
        };
        let byz_frac = 1.0 - plan.byz_sends as f64 / s as f64;
        let survive_p = (clean_frac * byz_frac * (1.0 - p_decoy_slot)).clamp(0.0, 1.0);
        let good_slots = sample_bin(rng, m_slots, survive_p);

        // Listening costs for all uninformed nodes over the phase.
        if u > 0 {
            self.nodes.listens += sample_bin(rng, u.saturating_mul(s), listen_p);
        }

        // Who becomes informed?
        let p_informed = 1.0 - (1.0 - listen_p).powf(good_slots as f64);
        let newly = match plan.spare {
            Some(x) if plan.jam_slots >= s => {
                // Total blockade except x hand-picked nodes.
                sample_bin(rng, x.min(u), p_informed)
            }
            Some(x) => {
                // Partial jam with spared nodes: spared nodes see all
                // m-slots, others see the thinned ones. Conservative model:
                // spared nodes use unjammed success probability.
                let unjammed_good = sample_bin(
                    rng,
                    m_slots,
                    (byz_frac * (1.0 - p_decoy_slot)).clamp(0.0, 1.0),
                );
                let p_spared = 1.0 - (1.0 - listen_p).powf(unjammed_good as f64);
                let spared_informed = sample_bin(rng, x.min(u), p_spared);
                let rest = u - x.min(u);
                spared_informed + sample_bin(rng, rest, p_informed)
            }
            None => sample_bin(rng, u, p_informed),
        };
        self.uninformed -= newly;
        self.relay_set = newly;

        // The paper's lemmas require ε′n active uninformed nodes for the
        // seeding machinery; when u hits 0 everything downstream is a no-op.
        let _ = params;

        PhaseDigest {
            informed: newly,
            terminated: 0,
            rendezvous_p: p_informed,
            survive_p,
        }
    }

    fn run_request_phase(
        &mut self,
        params: &Params,
        rng: &mut SimRng,
        s: u64,
        plan: &PhasePlan,
        threshold: u64,
        round: u32,
    ) -> PhaseDigest {
        let u = self.uninformed;
        let probs = phase_probabilities(params, round, PhaseKind::Request);

        // Per-slot noise probability: a nack from anyone, a byz spoof, or a
        // jam (jams are noise for every listener — spares do not matter to
        // the termination counters Carol wants to *inflate*; she spares no
        // one here).
        let p_nack_slot = 1.0 - (1.0 - probs.uninformed_nack).powf(u as f64);
        let attack_frac = ((plan.jam_slots + plan.byz_sends) as f64 / s as f64).min(1.0);
        let p_noisy = 1.0 - (1.0 - p_nack_slot) * (1.0 - attack_frac);

        // Costs.
        if u > 0 {
            self.nodes.sends += sample_bin(rng, u.saturating_mul(s), probs.uninformed_nack);
            self.nodes.listens += sample_bin(rng, u.saturating_mul(s), probs.uninformed_listen);
        }
        let alice_listens = sample_bin(rng, s, probs.alice_listen);
        self.alice.listens += alice_listens;

        // Alice's termination test.
        if !self.alice_terminated && round >= params.min_termination_round() {
            let noisy_heard = sample_bin_given(rng, alice_listens, p_noisy);
            if noisy_heard <= threshold {
                self.alice_terminated = true;
            }
        }

        // Node termination: each uninformed node's noisy-heard count is
        // Bin(s, listen_p · p_noisy); it terminates iff ≤ threshold.
        let mut terminators = 0;
        if u > 0 && round >= params.min_termination_round() {
            let p_term = binomial_cdf_upto(s, probs.uninformed_listen * p_noisy, threshold);
            terminators = sample_bin(rng, u, p_term);
            self.uninformed -= terminators;
            self.uninformed_terminated += terminators;
        }

        PhaseDigest {
            informed: 0,
            terminated: terminators,
            rendezvous_p: 0.0,
            survive_p: 1.0 - p_noisy,
        }
    }
}

/// `P(exactly one of `relays` senders transmits)` in a slot.
fn exactly_one_prob(relays: u64, p: f64) -> f64 {
    if relays == 0 || p <= 0.0 {
        return 0.0;
    }
    let r = relays as f64;
    (r * p * (1.0 - p).powf(r - 1.0)).clamp(0.0, 1.0)
}

fn sample_bin(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    Binomial::new(n, p.clamp(0.0, 1.0))
        .expect("probability already clamped")
        .sample(rng)
}

/// Binomial over an already-sampled count.
fn sample_bin_given(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    sample_bin(rng, n, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64) -> Params {
        // Default termination floor: the noisy-channel margins of
        // Lemmas 4–7 only hold at or past `3 lg ln n`.
        Params::builder(n).build().unwrap()
    }

    #[test]
    fn silent_run_informs_almost_everyone() {
        let p = params(10_000);
        let o = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(1));
        assert!(o.informed_fraction() > 0.97, "{}", o.informed_fraction());
        assert!(o.alice_terminated);
        assert_eq!(o.engine, EngineKind::Fast);
        assert_eq!(o.carol_spend(), 0);
        assert_eq!(
            o.informed_nodes + o.uninformed_terminated + o.unterminated_nodes,
            o.n
        );
    }

    #[test]
    fn runs_scale_to_large_n_quickly() {
        let p = Params::builder(1 << 17).build().unwrap();
        let o = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(2));
        assert!(o.informed_fraction() > 0.95);
        assert!(o.completed());
    }

    #[test]
    fn deterministic_by_seed() {
        let p = params(5_000);
        let a = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(7));
        let b = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(7));
        assert_eq!(a.informed_nodes, b.informed_nodes);
        assert_eq!(a.alice_cost, b.alice_cost);
        assert_eq!(a.node_total_cost, b.node_total_cost);
        assert_eq!(a.slots, b.slots);
    }

    /// Jams every slot of every phase while budget lasts.
    struct FullJammer;
    impl PhaseAdversary for FullJammer {
        fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
            PhasePlan::jam(ctx.phase_len)
        }
    }

    #[test]
    fn broke_jammer_eventually_loses() {
        let p = params(5_000);
        let budget = 200_000u64;
        let o = run_fast(
            &p,
            &mut FullJammer,
            &FastConfig::seeded(3).carol_budget(budget),
        );
        assert!(o.informed_fraction() > 0.9, "{}", o.informed_fraction());
        assert!(o.carol_spend() <= budget);
        assert!(o.carol_spend() >= budget - 1, "she should spend it all");
        // Delivery happened later than a quiet run would: more slots used.
        let quiet = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(3));
        assert!(o.slots >= quiet.slots);
    }

    #[test]
    fn unlimited_jammer_prevents_delivery_and_termination() {
        let p = params(2_000);
        let o = run_fast(&p, &mut FullJammer, &FastConfig::seeded(4));
        // With jamming in every slot forever, nothing is ever delivered.
        assert_eq!(o.informed_nodes, 0);
        // Nodes cannot terminate either: every listened slot is noisy.
        assert!(!o.completed());
    }

    #[test]
    fn n_uniform_sparing_informs_exactly_the_chosen_few() {
        /// Blocks every propagation phase totally but spares 50 nodes;
        /// leaves other phases alone.
        struct Extractor;
        impl PhaseAdversary for Extractor {
            fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
                match ctx.phase {
                    PhaseKind::Propagation { .. } => PhasePlan {
                        jam_slots: ctx.phase_len,
                        spare: Some(50),
                        byz_sends: 0,
                    },
                    _ => PhasePlan::idle(),
                }
            }
        }
        let p = params(2_000);
        let o = run_fast(&p, &mut Extractor, &FastConfig::seeded(5));
        // Inform phases still seed S_1 directly from Alice, so delivery
        // exceeds 50 — but propagation's mass effect is destroyed, so the
        // informed count stays far below n until very late rounds when
        // the inform phase alone suffices... In practice the run ends with
        // a visible deficit versus the quiet run at equal seeds.
        let quiet = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(5));
        assert!(o.informed_nodes <= quiet.informed_nodes);
        assert!(o.carol_spend() > 0);
    }

    #[test]
    fn request_spoofing_delays_alice() {
        /// Spoofs nacks across the whole request phase.
        struct Spoofer;
        impl PhaseAdversary for Spoofer {
            fn plan_phase(&mut self, ctx: &PhaseCtx) -> PhasePlan {
                match ctx.phase {
                    PhaseKind::Request => PhasePlan {
                        jam_slots: 0,
                        spare: None,
                        byz_sends: ctx.phase_len,
                    },
                    _ => PhasePlan::idle(),
                }
            }
        }
        let p = params(2_000);
        let budget = 300_000u64;
        let spoofed = run_fast(
            &p,
            &mut Spoofer,
            &FastConfig::seeded(6).carol_budget(budget),
        );
        let quiet = run_fast(&p, &mut SilentPhaseAdversary, &FastConfig::seeded(6));
        // Spoofed nacks keep everyone awake longer.
        assert!(spoofed.slots >= quiet.slots);
        assert!(spoofed.alice_cost.total() >= quiet.alice_cost.total());
        // But she still terminates once Carol is broke.
        assert!(spoofed.alice_terminated);
    }

    #[test]
    fn exactly_one_prob_shapes() {
        assert_eq!(exactly_one_prob(0, 0.5), 0.0);
        assert!((exactly_one_prob(1, 0.5) - 0.5).abs() < 1e-12);
        // n·p(1-p)^{n-1} peaks near p = 1/n.
        let peak = exactly_one_prob(1000, 1.0 / 1000.0);
        assert!((peak - (1.0f64 - 1.0 / 1000.0).powf(999.0)).abs() < 1e-9);
        assert!(peak > 0.36 && peak < 0.37); // ≈ 1/e
    }
}
